//! Umbrella crate for the TWPP reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the runnable
//! examples in `examples/` and the integration tests in `tests/` can use a
//! single dependency. Library users should depend on the individual crates
//! ([`twpp`], [`twpp_dataflow`], …) directly.

pub use twpp;
pub use twpp_dataflow;
pub use twpp_ir;
pub use twpp_lang;
pub use twpp_sequitur;
pub use twpp_tracer;
pub use twpp_workloads;
