//! Umbrella crate for the TWPP reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the runnable
//! examples in `examples/` and the integration tests in `tests/` can use a
//! single dependency. Library users should depend on the individual crates
//! ([`twpp`], [`twpp_dataflow`], …) directly.

pub use twpp;
pub use twpp_conformance;
/// The conformance oracle subsystem under its paper-facing name:
/// `twpp_repro::oracle::run_selftest`, `oracle::reference`, ….
pub use twpp_conformance as oracle;
pub use twpp_dataflow;
pub use twpp_ir;
pub use twpp_lang;
pub use twpp_sequitur;
pub use twpp_tracer;
pub use twpp_workloads;
