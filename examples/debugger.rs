//! The paper's debugging workflow (§4.3.2): run to a breakpoint, keep the
//! WPP of the *partial* execution, and answer slice queries on it.
//!
//! ```sh
//! cargo run --example debugger
//! ```

use twpp_repro::twpp::partition;
use twpp_repro::twpp_dataflow::slicing::{Approach, Criterion, Slicer};
use twpp_repro::twpp_ir::{Operand, Stmt};
use twpp_repro::twpp_lang::{compile_with_options, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_to_breakpoint, ExecLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile_with_options(
        programs::FIGURE10,
        LowerOptions {
            stmt_per_block: true,
        },
    )?;
    let main_id = program.main();
    let func = program.func(main_id);

    // Set a breakpoint on the block that prints z inside the loop
    // (statement 10 of the paper's figure), second hit.
    let print_block = func
        .blocks()
        .filter(|(_, b)| {
            b.stmts()
                .iter()
                .any(|s| matches!(s, Stmt::Print(Operand::Var(_))))
        })
        .map(|(id, _)| id)
        .next()
        .expect("loop print exists");
    let (execution, wpp, hit) = run_to_breakpoint(
        &program,
        programs::FIGURE10_INPUT,
        ExecLimits::default(),
        main_id,
        print_block,
        2,
    )?;
    assert!(hit);
    println!(
        "stopped at breakpoint (block {print_block}, 2nd hit) after {} steps",
        execution.steps
    );
    println!("output so far: {:?}", execution.output);

    // The partial WPP still partitions: open activations close implicitly.
    let part = partition(&wpp)?;
    println!(
        "partial WPP: {} events, {} activations",
        wpp.event_count(),
        part.dcg.node_count()
    );

    // Slice the printed variable at the breakpoint instance.
    let trace = wpp.scan_function(main_id).remove(0);
    let slicer = Slicer::new(func, &trace);
    let t = slicer
        .dyn_cfg()
        .node_by_head(print_block)
        .and_then(|i| slicer.dyn_cfg().node(i).ts.last())
        .expect("breakpoint block executed");
    let z = func
        .block(print_block)
        .stmts()
        .iter()
        .find_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .expect("breakpoint prints a variable");
    let criterion = Criterion {
        block: print_block,
        timestamp: t,
        var: z,
    };
    let slice = slicer.slice(criterion, Approach::PreciseInstances);
    let ids: Vec<u32> = slice.iter().map(|b| b.as_u32()).collect();
    println!(
        "\nprecise dynamic slice of the just-printed value ({} blocks): {ids:?}",
        slice.len()
    );
    println!(
        "the slice covers only the second iteration's actual dependences,\n\
         computed from the execution history up to the breakpoint."
    );
    Ok(())
}
