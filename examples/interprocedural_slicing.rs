//! Interprocedural dynamic slicing: following a value across function
//! boundaries using the dynamic call graph — the extension the paper
//! sketches at the end of §4.2.
//!
//! ```sh
//! cargo run --example interprocedural_slicing
//! ```

use twpp_repro::twpp::compact;
use twpp_repro::twpp_dataflow::interslice::{InterCriterion, InterSlicer};
use twpp_repro::twpp_ir::{Operand, Stmt};
use twpp_repro::twpp_lang::{compile_with_options, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits};

const SRC: &str = "
fn scale(x) { return x * 10; }
fn offset(x) { return x + 3; }
fn noise() { print(0 - 1); }
fn main() {
    let a = input();        // feeds the final value
    let b = input();        // does not
    noise();
    let v = scale(a);       // v = a * 10
    let w = offset(b);      // unrelated
    print(w);
    print(v);               // <- slice the value printed here
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile_with_options(
        SRC,
        LowerOptions {
            stmt_per_block: true,
        },
    )?;
    let (execution, wpp) = run_traced(&program, &[4, 100], ExecLimits::default())?;
    println!("program output: {:?}", execution.output);

    let compacted = compact(&wpp)?;
    let mut slicer = InterSlicer::new(&program, &compacted);

    // Criterion: the variable of the last print in main, at main's final
    // timestamp.
    let root = compacted.dcg.root();
    let main_fb = compacted.function(program.main()).expect("main ran");
    let trace = &main_fb.expanded_traces()[0];
    let func = program.func(program.main());
    let var = func
        .blocks()
        .flat_map(|(_, b)| b.stmts())
        .filter_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .last()
        .expect("main prints a variable");
    let criterion = InterCriterion {
        activation: root,
        timestamp: trace.len() as u32,
        var,
    };

    let slice = slicer.slice(criterion);
    println!("\ninterprocedural slice ({} points):", slice.len());
    for (f, b) in &slice {
        println!("  {:>8} {}", program.func(*f).name(), b);
    }

    let in_slice = |name: &str| {
        let (id, _) = program.func_by_name(name).expect("function exists");
        slice.iter().any(|&(f, _)| f == id)
    };
    println!();
    println!("scale (feeds the value)      in slice: {}", in_slice("scale"));
    println!("offset (feeds only w)        in slice: {}", in_slice("offset"));
    println!("noise (no data flow at all)  in slice: {}", in_slice("noise"));
    assert!(in_slice("scale") && !in_slice("offset") && !in_slice("noise"));
    Ok(())
}
