//! Hot-path analysis on a synthetic `gcc`-like workload: generate a WPP,
//! compact it, and inspect which functions dominate the execution and
//! which paths they actually take — the profile-guided-optimization
//! workflow the paper's representation is designed for.
//!
//! ```sh
//! cargo run --release --example hot_paths
//! ```

use twpp_repro::twpp::{compact_with_stats, TwppArchive};
use twpp_repro::twpp_workloads::{generate, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Profile::Gcc.spec().scaled(0.1);
    println!("generating {} workload...", spec.name);
    let workload = generate(&spec);
    println!(
        "WPP: {} events ({} bytes)",
        workload.wpp.event_count(),
        workload.wpp.byte_len()
    );

    let (compacted, stats) = compact_with_stats(&workload.wpp)?;
    println!(
        "compacted to {} bytes (x{:.1})",
        stats.total_compacted_bytes(),
        stats.overall_factor()
    );

    // The archive orders functions most-called first: the hot functions.
    let archive = TwppArchive::from_compacted(&compacted);
    println!("\nhottest functions:");
    println!(
        "{:>10} {:>10} {:>13} {:>12}",
        "function", "calls", "unique paths", "reuse"
    );
    for func in archive.function_ids().into_iter().take(8) {
        let record = archive.read_function(func)?;
        let name = workload.program.func(func).name().to_owned();
        let reuse = record.call_count as f64 / record.traces.len().max(1) as f64;
        println!(
            "{:>10} {:>10} {:>13} {:>11.1}x",
            name,
            record.call_count,
            record.traces.len(),
            reuse
        );
    }

    // Drill into the hottest function: its dominant path is the clone /
    // specialization candidate.
    let hottest = archive.function_ids()[0];
    let record = archive.read_function(hottest)?;
    let traces = record.expanded_traces();
    println!(
        "\nhottest paths of {} (by execution frequency):",
        workload.program.func(hottest).name()
    );
    for (idx, freq) in compacted.hot_paths(hottest).into_iter().take(5) {
        println!(
            "  unique path {idx}: executed {freq} times, {} blocks",
            traces[idx as usize].len()
        );
    }

    // Figure 8's takeaway, computed live: most calls concentrate on few
    // unique paths.
    for n in [1, 5, 25] {
        println!(
            "calls to functions with <= {n} unique paths: {:.0}%",
            stats.redundancy.percent_calls_with_at_most(n)
        );
    }
    Ok(())
}
