//! Figure 12: dynamic currency determination — debugging optimized code
//! with a timestamped WPP.
//!
//! Partial dead code elimination sinks an assignment from a dominator
//! block into one branch. Whether the variable's value at a breakpoint
//! still matches what the unoptimized program would show depends on the
//! executed path, which the WPP records.
//!
//! ```sh
//! cargo run --example currency
//! ```

use twpp_repro::twpp_dataflow::currency::{currency_of, AssignTags, Currency};
use twpp_repro::twpp_ir::{
    single_function_program, BlockId, Operand, Program, Rvalue, Stmt, Terminator, Var,
};

/// Builds the Figure 12 CFG: `1 -> {2, 4} -> 3` with the second assignment
/// to `x` either in block 1 (unoptimized) or sunk into block 2 (optimized).
fn build(moved: bool) -> Program {
    single_function_program(|fb| {
        let b1 = fb.entry();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let b4 = fb.new_block();
        let x = fb.new_var();
        fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(10))));
        if moved {
            fb.push(b2, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
        } else {
            fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
        }
        fb.push(b2, Stmt::Print(Operand::Var(x)));
        fb.terminate(
            b1,
            Terminator::Branch {
                cond: Operand::Var(x),
                then_dest: b2,
                else_dest: b4,
            },
        );
        fb.terminate(b2, Terminator::Jump(b3));
        fb.terminate(b4, Terminator::Jump(b3));
        fb.push(b3, Stmt::Print(Operand::Var(x)));
        fb.terminate(b3, Terminator::Return(None));
    })
    .expect("figure 12 CFG is well-formed")
}

fn main() {
    let b = BlockId::new;
    let unopt = build(false);
    let opt = build(true);

    // Source identity of each assignment to x, per version: partial dead
    // code elimination moved assignment #2 from block 1 into block 2.
    let mut unopt_tags = AssignTags::new();
    unopt_tags.insert((b(1), 0), 1);
    unopt_tags.insert((b(1), 1), 2);
    let mut opt_tags = AssignTags::new();
    opt_tags.insert((b(1), 0), 1);
    opt_tags.insert((b(2), 0), 2);
    let x = Var::from_index(0);

    println!("breakpoint in block 3; the user asks for the value of x\n");
    for (label, trace) in [
        ("execution took 1 -> 2 -> 3", vec![b(1), b(2), b(3)]),
        ("execution took 1 -> 4 -> 3", vec![b(1), b(4), b(3)]),
    ] {
        let verdict = currency_of(
            unopt.func(unopt.main()),
            opt.func(opt.main()),
            &unopt_tags,
            &opt_tags,
            &trace,
            3,
            x,
        );
        match verdict {
            Currency::Current => {
                println!("{label}: x is CURRENT — the debugger may display it");
            }
            Currency::NonCurrent { actual, expected } => {
                println!(
                    "{label}: x is NON-CURRENT — it holds the value of assignment \
                     {actual:?}, but the source-level debugger user expects \
                     assignment {expected:?}"
                );
            }
        }
    }
}
