//! Quickstart: compile a program, collect its whole program path, compact
//! it into a TWPP archive, and query one function's traces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use twpp_repro::twpp::{compact_with_stats, TwppArchive};
use twpp_repro::twpp_lang;
use twpp_repro::twpp_tracer::{run_traced, ExecLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile a program in the mini language.
    let program = twpp_lang::compile(
        "
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() {
            let i = 1;
            while (i <= 12) {
                print(fib(i));
                i = i + 1;
            }
        }
        ",
    )?;

    // 2. Execute it with tracing: the complete control flow trace (WPP).
    let (execution, wpp) = run_traced(&program, &[], ExecLimits::default())?;
    println!("program output : {:?}...", &execution.output[..5]);
    println!("WPP events     : {}", wpp.event_count());
    println!("WPP bytes      : {}", wpp.byte_len());

    // 3. Compact: partition into per-call path traces + dynamic call
    //    graph, eliminate redundant traces, build DBB dictionaries, and
    //    timestamp (Zhang & Gupta, PLDI 2001).
    let (compacted, stats) = compact_with_stats(&wpp)?;
    println!("\ncompaction stages (bytes):");
    println!("  original traces    : {}", stats.owpp_trace_bytes);
    println!(
        "  after dedup        : {} (x{:.2})",
        stats.after_dedup_bytes,
        stats.dedup_factor()
    );
    println!(
        "  after dictionaries : {} (x{:.2})",
        stats.after_dict_bytes,
        stats.dict_factor()
    );
    println!(
        "  compacted TWPP     : {} (x{:.2})",
        stats.ctwpp_trace_bytes,
        stats.twpp_factor()
    );
    println!("  overall factor     : x{:.1}", stats.overall_factor());

    // 4. Store as an archive and query a single function — without
    //    touching the rest of the trace.
    let archive = TwppArchive::from_compacted(&compacted);
    let (fib, _) = program.func_by_name("fib").expect("fib exists");
    let record = archive.read_function(fib)?;
    println!(
        "\nfib: {} calls, {} unique path traces",
        record.call_count,
        record.traces.len()
    );
    for trace in record.expanded_traces().iter().take(3) {
        println!("  path: {trace}");
    }

    // 5. The representation is lossless: reconstruct the original WPP.
    assert_eq!(compacted.reconstruct(), wpp);
    println!("\nreconstruction check: OK (pipeline is lossless)");
    Ok(())
}
