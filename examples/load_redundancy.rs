//! Figure 9: measuring the dynamic redundancy of a load instruction with a
//! demand-driven, profile-limited data flow query.
//!
//! Edge or path profiles can only bound how often a load re-fetches a
//! value that is already available; the timestamped WPP answers exactly.
//!
//! ```sh
//! cargo run --example load_redundancy
//! ```

use twpp_repro::twpp::compact;
use twpp_repro::twpp_dataflow::dyncfg::DynCfg;
use twpp_repro::twpp_dataflow::optimize::all_redundant_load_candidates;
use twpp_repro::twpp_dataflow::redundancy::{load_redundancy, loads_in};
use twpp_repro::twpp_lang::{compile_with_options, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's loop: 100 iterations; 60 take the load path, 40 the
    // store path.
    let program = compile_with_options(
        programs::FIGURE9,
        LowerOptions {
            stmt_per_block: true,
        },
    )?;
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
    let main_id = program.main();
    let func = program.func(main_id);

    // Build the timestamp-annotated dynamic CFG of main's execution.
    let trace = wpp.scan_function(main_id).remove(0);
    let dcfg = DynCfg::from_block_sequence(&trace);
    println!(
        "dynamic CFG: {} nodes, {} edges, trace length {}",
        dcfg.node_count(),
        dcfg.edge_count(),
        dcfg.len()
    );

    for (node, addr) in loads_in(&dcfg, func) {
        let report = load_redundancy(&dcfg, func, node).expect("node contains a load");
        println!(
            "\nload({addr}) in block {} (timestamps {}):",
            dcfg.node(node).head,
            dcfg.node(node).ts
        );
        println!("  executions : {}", report.total);
        println!("  redundant  : {}", report.redundant);
        println!("  degree     : {:.1}%", report.degree_percent());
        if report.result.always_holds() {
            println!("  -> always redundant: the optimizer can reuse the register");
        }
    }

    // The same analysis as an optimizer pass: ranked specialization
    // candidates across the whole execution.
    let compacted = compact(&wpp)?;
    println!("\noptimizer candidates (>= 90% redundant):");
    for c in all_redundant_load_candidates(&program, &compacted, 90.0) {
        println!(
            "  {} block {:>3}: {:>5.1}% redundant, {} removable load executions",
            program.func(c.func).name(),
            c.block.as_u32(),
            c.degree_percent(),
            c.removable()
        );
    }
    Ok(())
}
