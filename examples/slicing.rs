//! Figures 10 & 11: dynamic program slicing with the three Agrawal–Horgan
//! algorithms, all running on one timestamped dynamic CFG.
//!
//! ```sh
//! cargo run --example slicing
//! ```

use twpp_repro::twpp_dataflow::slicing::{Approach, Criterion, Slicer};
use twpp_repro::twpp_ir::{Operand, Stmt};
use twpp_repro::twpp_lang::{compile_with_options, programs, LowerOptions};
use twpp_repro::twpp_tracer::{run_traced, ExecLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example program, run on its input N=3, X=-4,3,-2.
    let program = compile_with_options(
        programs::FIGURE10,
        LowerOptions {
            stmt_per_block: true,
        },
    )?;
    let (execution, wpp) = run_traced(
        &program,
        programs::FIGURE10_INPUT,
        ExecLimits::default(),
    )?;
    println!("program output: {:?}", execution.output);

    let main_id = program.main();
    let func = program.func(main_id);
    let trace = wpp.scan_function(main_id).remove(0);
    let slicer = Slicer::new(func, &trace);

    // Criterion: the value of z at the breakpoint (the final print).
    let breakpoint = *trace.last().expect("non-empty trace");
    let z = func
        .blocks()
        .flat_map(|(_, b)| b.stmts())
        .filter_map(|s| match s {
            Stmt::Print(Operand::Var(v)) => Some(*v),
            _ => None,
        })
        .last()
        .expect("breakpoint prints z");
    let criterion = Criterion {
        block: breakpoint,
        timestamp: slicer.dyn_cfg().len(),
        var: z,
    };
    println!(
        "criterion: slice for {z} at block {breakpoint}, timestamp {}",
        criterion.timestamp
    );

    for (name, approach) in [
        ("approach 1: executed nodes   ", Approach::ExecutedNodes),
        ("approach 2: executed edges   ", Approach::ExecutedEdges),
        ("approach 3: precise instances", Approach::PreciseInstances),
    ] {
        let slice = slicer.slice(criterion, approach);
        let ids: Vec<u32> = slice.iter().map(|b| b.as_u32()).collect();
        println!("{name}: {} blocks {ids:?}", slice.len());
    }
    println!(
        "\nEach approach refines the previous one; approach 3 tracks the exact\n\
         statement *instances* (block, timestamp) that influenced the value."
    );
    Ok(())
}
