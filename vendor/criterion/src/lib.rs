//! Minimal, dependency-free workalike of the `criterion` benchmarking API
//! used by this workspace.
//!
//! The build environment has no crates.io registry access, so this vendored
//! shim provides the same surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `criterion_group!`, `criterion_main!`) with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.
//!
//! Under `cargo test` (bench targets use `harness = false`, so cargo runs
//! them with `--test`) every routine executes exactly once as a smoke test
//! — benches stay fast in CI while `cargo bench` still prints timings.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup on every iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` during
        // `cargo test`; also honour an env override.
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SHIM_TEST_MODE").is_some();
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Accepted for compatibility with real criterion's generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            report: None,
        };
        f(&mut b);
        if let Some(ns) = b.report {
            println!("bench: {name:<40} {:>12.1} ns/iter", ns);
        } else if self.test_mode {
            println!("bench: {name:<40} ok (test mode)");
        }
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    test_mode: bool,
    report: Option<f64>,
}

/// Per-routine wall-clock budget when actually benchmarking.
const BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Times `routine`, keeping its result alive via `black_box`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && start.elapsed() < BUDGET {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.report = Some(total.as_nanos() as f64 / iters.max(1) as f64);
    }

    /// Times `routine` with per-iteration inputs built by `setup`
    /// (setup time excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < MAX_ITERS && start.elapsed() < BUDGET {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.report = Some(measured.as_nanos() as f64 / iters.max(1) as f64);
    }
}

/// Declares a group-runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
