//! Deterministic seedable PRNG presenting the `rand_chacha::ChaCha8Rng`
//! API used by this workspace.
//!
//! NOT the real ChaCha stream cipher — the build environment has no
//! registry access, so this vendored shim provides a deterministic
//! xoshiro256**-style generator behind the same type name. Workload
//! generation only needs determinism per seed, not ChaCha's exact output.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let mut c = ChaCha8Rng::seed_from_u64(124);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn no_trivial_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = rng.next_u64();
        for _ in 0..1000 {
            assert_ne!(rng.next_u64(), first, "suspiciously short cycle");
        }
    }
}
