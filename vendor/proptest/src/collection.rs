//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.max - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generates vectors of `elem` values with length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Bounded attempts: if the element domain is smaller than the
        // requested size we accept a smaller set (same as real proptest's
        // behaviour of treating the size as a goal under a retry budget).
        let mut attempts = 0usize;
        let budget = target.saturating_mul(10) + 16;
        while out.len() < target && attempts < budget {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates ordered sets of `elem` values with target size in `size`.
pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}
