//! Minimal, dependency-free workalike of the `proptest` crate API surface
//! used by this workspace.
//!
//! The build environment has no crates.io registry access, so the workspace
//! vendors the thin slice of proptest it actually uses: `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_recursive`/`boxed`, integer-range and
//! tuple strategies, `Just`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::{vec, btree_set}`, the `proptest!` macro (block and
//! closure forms) and `prop_assert*!`.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its deterministic case index
//!   and panics with the original assertion message.
//! - **Deterministic generation.** Case `i` of every test always sees the
//!   same inputs (splitmix64 stream keyed by the case index), which makes
//!   CI failures reproducible by construction.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` namespace from `proptest::prelude` (`prop::collection::…`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of a deterministic run.
    pub fn for_case(case: u64) -> Self {
        // Fixed golden key so case streams are decorrelated.
        TestRng {
            state: case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Non-fatal property assertion (no shrinking here, so it just asserts).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Union of strategies, uniform (or weighted) choice per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The main proptest entry macro. Supports the block form (with optional
/// `#![proptest_config(..)]` inner attribute and `#[test]` fns whose
/// arguments are `name in strategy` bindings) and the closure form
/// `proptest!(config, |(a in strat, ...)| { .. })`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($cfg:expr, |($($arg:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg = $cfg;
        $crate::test_runner::run(&__cfg, |__rng| {
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
            $body
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(&__cfg, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
