//! `any::<T>()` support for primitive types.

use crate::strategy::{Ph, Strategy};
use crate::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20 + rng.below(0x5F)) as u8 as char
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(Ph<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(Ph::default())
}
