//! Strategy trait and combinators (generation only — no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::TestRng;

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and uses it to pick a second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a deeper one. `depth` bounds nesting;
    /// the other parameters are accepted for API compatibility and used
    /// only as rough guides.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Bias toward leaves so sizes stay moderate.
            strat = Union::new_weighted(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform union.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted union.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union with zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Marker so `PhantomData`-based strategies in `arbitrary` can live here.
pub(crate) type Ph<T> = PhantomData<T>;
