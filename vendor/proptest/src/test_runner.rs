//! Deterministic case runner.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::TestRng;

/// Runner configuration (subset of real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Runs `body` once per case with a deterministic per-case RNG. On panic,
/// reports the failing case index (inputs are reproducible from it) and
/// re-raises.
pub fn run(config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(u64::from(case));
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest (vendored shim): property failed at deterministic case {case} of {}",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}
