//! Minimal, dependency-free workalike of the `rand` crate API surface used
//! by this workspace (seeded deterministic generation only).
//!
//! This is *not* the real `rand` crate: the build environment has no access
//! to a crates.io registry, so the workspace vendors the thin API slice it
//! needs. All generators here are deterministic and seedable; statistical
//! quality is "good enough for test-input generation", nothing more.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation trait: everything is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from a `u64` (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can describe a sampleable range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension trait (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Common re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
