//! Classic static reaching-definitions analysis at basic-block granularity.
//!
//! Used by dynamic slicing approach 1, which restricts the *static*
//! program dependence graph to executed nodes, and as the static
//! comparison point for the profile-limited analyses.

use std::collections::HashSet;

use twpp_ir::cfg::Cfg;
use twpp_ir::{BlockId, Function, Var};

/// A definition site: the defining block (a block defining `v` several
/// times contributes one site — the last assignment wins downstream).
pub type DefSite = (BlockId, Var);

/// Block-level reaching definitions for one function.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    reach_in: Vec<HashSet<DefSite>>,
    defs: Vec<Vec<Var>>,
    uses: Vec<Vec<Var>>,
}

impl ReachingDefs {
    /// Runs the analysis to a fixed point.
    pub fn new(func: &Function) -> ReachingDefs {
        let cfg = Cfg::new(func);
        let n = func.block_count();
        let defs: Vec<Vec<Var>> = func
            .block_ids()
            .map(|b| block_defs(func, b))
            .collect();
        let uses: Vec<Vec<Var>> = func
            .block_ids()
            .map(|b| upward_exposed_uses(func, b))
            .collect();

        let gen: Vec<HashSet<DefSite>> = (0..n)
            .map(|i| {
                defs[i]
                    .iter()
                    .map(|&v| (BlockId::from_index(i), v))
                    .collect()
            })
            .collect();
        let mut reach_in: Vec<HashSet<DefSite>> = vec![HashSet::new(); n];
        let mut reach_out: Vec<HashSet<DefSite>> = gen.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let b = BlockId::from_index(i);
                let mut inset: HashSet<DefSite> = HashSet::new();
                for &p in cfg.preds(b) {
                    inset.extend(reach_out[p.index()].iter().copied());
                }
                if inset != reach_in[i] {
                    reach_in[i] = inset.clone();
                    changed = true;
                }
                // OUT = GEN ∪ (IN − KILL): a block defining v kills every
                // other definition of v.
                let mut outset = gen[i].clone();
                for &(src, v) in &inset {
                    if !defs[i].contains(&v) {
                        outset.insert((src, v));
                    }
                }
                if outset != reach_out[i] {
                    reach_out[i] = outset;
                    changed = true;
                }
            }
        }
        ReachingDefs {
            reach_in,
            defs,
            uses,
        }
    }

    /// Definitions reaching the entry of `block`.
    pub fn reaching(&self, block: BlockId) -> &HashSet<DefSite> {
        &self.reach_in[block.index()]
    }

    /// Variables defined (assigned) by `block`.
    pub fn defs_of(&self, block: BlockId) -> &[Var] {
        &self.defs[block.index()]
    }

    /// Upward-exposed uses of `block`: variables read before any local
    /// (re)definition, including the terminator's reads.
    pub fn uses_of(&self, block: BlockId) -> &[Var] {
        &self.uses[block.index()]
    }

    /// Static data-dependence predecessors of `block`: blocks whose
    /// definition of one of `block`'s upward-exposed uses reaches it.
    pub fn dep_sources(&self, block: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &u in self.uses_of(block) {
            for &(src, v) in self.reaching(block) {
                if v == u && !out.contains(&src) {
                    out.push(src);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Variables assigned by a block, in first-assignment order.
pub fn block_defs(func: &Function, block: BlockId) -> Vec<Var> {
    let mut out = Vec::new();
    for s in func.block(block).stmts() {
        if let Some(v) = s.defined_var() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// Upward-exposed uses of a block (reads not preceded by a local write).
pub fn upward_exposed_uses(func: &Function, block: BlockId) -> Vec<Var> {
    let mut defined: HashSet<Var> = HashSet::new();
    let mut out = Vec::new();
    let bb = func.block(block);
    for s in bb.stmts() {
        for u in s.used_vars() {
            if !defined.contains(&u) && !out.contains(&u) {
                out.push(u);
            }
        }
        if let Some(d) = s.defined_var() {
            defined.insert(d);
        }
    }
    for u in bb.terminator().used_vars() {
        if !defined.contains(&u) && !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::{single_function_program, BinOp, Operand, Rvalue, Stmt, Terminator};

    #[test]
    fn defs_and_upward_exposed_uses() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let a = fb.new_var();
            let b = fb.new_var();
            // a = b + 1 ; b = a  — b is upward exposed, a is not.
            fb.push(
                e,
                Stmt::assign(
                    a,
                    Rvalue::Binary(BinOp::Add, Operand::Var(b), Operand::Const(1)),
                ),
            );
            fb.push(e, Stmt::assign(b, Rvalue::Use(Operand::Var(a))));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        let rd = ReachingDefs::new(f);
        let entry = BlockId::new(1);
        assert_eq!(rd.defs_of(entry).len(), 2);
        assert_eq!(rd.uses_of(entry), &[Var::from_index(1)]);
    }

    #[test]
    fn reaching_through_a_diamond() {
        // b1: x=1 -> {b2: x=2, b3: (no def)} -> b4: use x.
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let x = fb.new_var();
            fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(1))));
            fb.push(b2, Stmt::assign(x, Rvalue::Use(Operand::Const(2))));
            fb.push(b4, Stmt::Print(Operand::Var(x)));
            let c = Operand::Const(1);
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: c,
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b2, Terminator::Jump(b4));
            fb.terminate(b3, Terminator::Jump(b4));
            fb.terminate(b4, Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        let rd = ReachingDefs::new(f);
        let b4 = BlockId::new(4);
        // Both defs reach the use.
        let sources = rd.dep_sources(b4);
        assert_eq!(sources, vec![BlockId::new(1), BlockId::new(2)]);
        // b2's def kills b1's along its own path.
        let reach_b4 = rd.reaching(b4);
        assert!(reach_b4.contains(&(BlockId::new(1), Var::from_index(0))));
        assert!(reach_b4.contains(&(BlockId::new(2), Var::from_index(0))));
        let reach_b2_exit_via_b4 = rd.reaching(BlockId::new(2));
        assert!(reach_b2_exit_via_b4.contains(&(BlockId::new(1), Var::from_index(0))));
    }

    #[test]
    fn loop_defs_reach_around_the_back_edge() {
        // b1: i=0 -> b2: i=i+1 -> b2 (loop) | b3.
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let i = fb.new_var();
            fb.push(b1, Stmt::assign(i, Rvalue::Use(Operand::Const(0))));
            fb.push(
                b2,
                Stmt::assign(
                    i,
                    Rvalue::Binary(BinOp::Add, Operand::Var(i), Operand::Const(1)),
                ),
            );
            fb.terminate(b1, Terminator::Jump(b2));
            fb.terminate(
                b2,
                Terminator::Branch {
                    cond: Operand::Var(i),
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b3, Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        let rd = ReachingDefs::new(f);
        let b2 = BlockId::new(2);
        // Both the initial def and the loop def reach b2's entry.
        assert!(rd.reaching(b2).contains(&(BlockId::new(1), Var::from_index(0))));
        assert!(rd.reaching(b2).contains(&(BlockId::new(2), Var::from_index(0))));
        assert_eq!(rd.dep_sources(b2), vec![BlockId::new(1), BlockId::new(2)]);
    }
}
