//! Dynamic currency determination for debugging optimized code — the
//! application of §4.3.2 / Figure 12.
//!
//! After an optimization moves an assignment (e.g. partial dead code
//! elimination sinks `x = …` from a dominator block into one branch), the
//! value of `x` observed at a breakpoint may or may not correspond to what
//! the unoptimized program would have shown — and which of the two it is
//! depends on the *path taken*, which the WPP records. The variable is
//! **current** at the breakpoint exactly when the source assignment that
//! provided its value in the optimized execution is the same source
//! assignment that would have provided it in the unoptimized execution of
//! the same path.

use std::collections::HashMap;

use twpp_ir::{BlockId, Function, Var};

use crate::dyncfg::DynCfg;

/// Identity of a source-level assignment, stable across program versions.
pub type AssignTag = u32;

/// Maps every assignment of the inspected variable to its source-level
/// identity, for one program version: `(block, statement index) -> tag`.
pub type AssignTags = HashMap<(BlockId, usize), AssignTag>;

/// The verdict of a currency query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Currency {
    /// The displayed value equals what the unoptimized program would show.
    Current,
    /// The displayed value differs: the debugger must warn the user.
    NonCurrent {
        /// The assignment whose value is actually in the variable.
        actual: Option<AssignTag>,
        /// The assignment whose value the user expects to see.
        expected: Option<AssignTag>,
    },
}

/// Determines whether `var` is current at the breakpoint.
///
/// Both program versions must share the same CFG shape (code motion moves
/// statements between blocks but keeps the graph), so one executed block
/// sequence `trace` describes both. `breakpoint` is the 1-based timestamp
/// of the breakpoint instance in that trace.
///
/// # Panics
///
/// Panics if an executed assignment to `var` has no tag in the maps, or if
/// the breakpoint timestamp is out of range.
pub fn currency_of(
    unopt: &Function,
    opt: &Function,
    unopt_tags: &AssignTags,
    opt_tags: &AssignTags,
    trace: &[BlockId],
    breakpoint: u32,
    var: Var,
) -> Currency {
    assert!(
        breakpoint >= 1 && (breakpoint as usize) <= trace.len(),
        "breakpoint timestamp out of range"
    );
    let dcfg = DynCfg::from_block_sequence(trace);
    let actual = reaching_tag(opt, opt_tags, &dcfg, breakpoint, var);
    let expected = reaching_tag(unopt, unopt_tags, &dcfg, breakpoint, var);
    if actual == expected {
        Currency::Current
    } else {
        Currency::NonCurrent { actual, expected }
    }
}

/// The tag of the assignment to `var` whose value is live at `t` (searching
/// positions `< t` plus the statements of position `t`'s own block before
/// the breakpoint is taken to be at the *top* of its block, i.e. only
/// strictly earlier positions count).
fn reaching_tag(
    func: &Function,
    tags: &AssignTags,
    dcfg: &DynCfg,
    t: u32,
    var: Var,
) -> Option<AssignTag> {
    // Find the latest position < t whose block (in this version) assigns
    // `var`, using the timestamp annotations.
    let mut best: Option<(u32, BlockId)> = None;
    for node in dcfg.nodes() {
        let head = node.head;
        let assigns = func
            .block(head)
            .stmts()
            .iter()
            .any(|s| s.defined_var() == Some(var));
        if !assigns {
            continue;
        }
        if let Some(ts) = node.ts.max_lt(t) {
            if best.map(|(bt, _)| ts > bt).unwrap_or(true) {
                best = Some((ts, head));
            }
        }
    }
    let (_, block) = best?;
    // The last assignment to `var` within that block provides the value.
    let idx = func
        .block(block)
        .stmts()
        .iter()
        .rposition(|s| s.defined_var() == Some(var))
        .expect("block found by scanning for assignments");
    Some(*tags.get(&(block, idx)).unwrap_or_else(|| {
        panic!("assignment to {var} at {block}[{idx}] has no source tag")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::{single_function_program, Operand, Program, Rvalue, Stmt, Terminator};

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    /// Figure 12: CFG 1 -> {2, 4} -> 3, breakpoint in block 3.
    ///
    /// Unoptimized block 1 holds both assignments to x (tags 1 then 2);
    /// partial dead code elimination moves the second into block 2.
    fn figure12() -> (Program, Program, AssignTags, AssignTags, Var) {
        let x_index = 0;
        let build = |second_assign_in_b2: bool| {
            single_function_program(|fb| {
                let b1 = fb.entry();
                let b2 = fb.new_block();
                let b3 = fb.new_block();
                let b4 = fb.new_block();
                let x = fb.new_var();
                fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(10))));
                if second_assign_in_b2 {
                    fb.push(b2, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
                } else {
                    fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(20))));
                }
                // block 2 uses x (the last use before the sink point).
                fb.push(b2, Stmt::Print(Operand::Var(x)));
                fb.terminate(
                    b1,
                    Terminator::Branch {
                        cond: Operand::Var(x),
                        then_dest: b2,
                        else_dest: b4,
                    },
                );
                fb.terminate(b2, Terminator::Jump(b3));
                fb.terminate(b4, Terminator::Jump(b3));
                fb.push(b3, Stmt::Print(Operand::Var(x)));
                fb.terminate(b3, Terminator::Return(None));
            })
            .unwrap()
        };
        let unopt = build(false);
        let opt = build(true);
        let mut unopt_tags = AssignTags::new();
        unopt_tags.insert((b(1), 0), 1);
        unopt_tags.insert((b(1), 1), 2);
        let mut opt_tags = AssignTags::new();
        opt_tags.insert((b(1), 0), 1);
        opt_tags.insert((b(2), 0), 2);
        (unopt, opt, unopt_tags, opt_tags, Var::from_index(x_index))
    }

    #[test]
    fn path_through_moved_assignment_is_current() {
        let (unopt, opt, ut, ot, x) = figure12();
        let trace = [b(1), b(2), b(3)];
        let verdict = currency_of(
            unopt.func(unopt.main()),
            opt.func(opt.main()),
            &ut,
            &ot,
            &trace,
            3,
            x,
        );
        assert_eq!(verdict, Currency::Current);
    }

    #[test]
    fn path_avoiding_moved_assignment_is_non_current() {
        let (unopt, opt, ut, ot, x) = figure12();
        let trace = [b(1), b(4), b(3)];
        let verdict = currency_of(
            unopt.func(unopt.main()),
            opt.func(opt.main()),
            &ut,
            &ot,
            &trace,
            3,
            x,
        );
        // Optimized execution still holds tag 1's value; the user expects
        // tag 2's.
        assert_eq!(
            verdict,
            Currency::NonCurrent {
                actual: Some(1),
                expected: Some(2),
            }
        );
    }

    #[test]
    fn never_assigned_variable_is_trivially_current() {
        let (unopt, opt, ut, ot, _) = figure12();
        let trace = [b(1), b(4), b(3)];
        let never_assigned = Var::from_index(9);
        let verdict = currency_of(
            unopt.func(unopt.main()),
            opt.func(opt.main()),
            &ut,
            &ot,
            &trace,
            3,
            never_assigned,
        );
        assert_eq!(verdict, Currency::Current);
    }
}
