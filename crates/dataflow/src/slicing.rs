//! Dynamic program slicing over the timestamped dynamic CFG — the three
//! Agrawal–Horgan algorithms of §4.3.2 (Figures 10 and 11), implemented on
//! **one common representation** instead of three specialized dependence
//! graphs.
//!
//! * [`Approach::ExecutedNodes`] — traverse the static program dependence
//!   graph restricted to nodes that executed (non-empty timestamp sets).
//! * [`Approach::ExecutedEdges`] — traverse only dependence edges that were
//!   exercised at some timestamp; once a dependence is found, all
//!   timestamps of the source node are explored.
//! * [`Approach::PreciseInstances`] — track individual statement instances
//!   `(node, timestamp)`; only the defining/controlling *instance* of each
//!   dependence is explored, yielding the precise dynamic slice.
//!
//! Slices are computed at basic-block granularity; compile the subject
//! program with `twpp_lang::LowerOptions::stmt_per_block` to make blocks
//! coincide with source statements as in the paper's figures.

use std::collections::{BTreeSet, HashSet};

use twpp::gov::{Budget, StopReason};
use twpp_ir::dom::ControlDeps;
use twpp_ir::{BlockId, Function, Var};

use crate::dyncfg::DynCfg;
use crate::reachdefs::ReachingDefs;

/// Which Agrawal–Horgan algorithm to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Approach {
    /// Approach 1: static PDG restricted to executed nodes.
    ExecutedNodes,
    /// Approach 2: only dependence edges exercised during execution.
    ExecutedEdges,
    /// Approach 3: precise per-instance dependences.
    PreciseInstances,
}

/// A slicing criterion: a variable at a particular execution instance of a
/// block.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Criterion {
    /// The block (statement) at which the slice is requested.
    pub block: BlockId,
    /// The timestamp of the execution instance (ignored by approach 1).
    pub timestamp: u32,
    /// The variable whose value is being explained.
    pub var: Var,
}

/// The outcome of a governed slice: complete, or cut short by the budget.
///
/// A partial slice is an *under-approximation*: every block it contains
/// genuinely influences the criterion, but blocks may be missing.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SliceOutcome {
    /// The worklist drained: the slice is exact for the chosen approach.
    Complete(BTreeSet<BlockId>),
    /// The budget stopped traversal; the slice is a sound subset.
    Partial {
        /// The blocks discovered before the stop.
        slice: BTreeSet<BlockId>,
        /// Worklist items processed before the stop.
        visited: u64,
        /// Why traversal stopped.
        reason: StopReason,
    },
}

impl SliceOutcome {
    /// The discovered blocks, complete or not.
    pub fn slice(&self) -> &BTreeSet<BlockId> {
        match self {
            SliceOutcome::Complete(s) => s,
            SliceOutcome::Partial { slice, .. } => slice,
        }
    }

    /// Whether the traversal ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, SliceOutcome::Complete(_))
    }
}

/// A dynamic slicer for one function's execution trace.
pub struct Slicer<'f> {
    func: &'f Function,
    dcfg: DynCfg,
    rd: ReachingDefs,
    cds: ControlDeps,
}

impl<'f> Slicer<'f> {
    /// Builds a slicer from the executed block sequence of `func`.
    pub fn new(func: &'f Function, trace: &[BlockId]) -> Slicer<'f> {
        Slicer {
            func,
            dcfg: DynCfg::from_block_sequence(trace),
            rd: ReachingDefs::new(func),
            cds: ControlDeps::new(func),
        }
    }

    /// The underlying dynamic CFG.
    pub fn dyn_cfg(&self) -> &DynCfg {
        &self.dcfg
    }

    /// The sliced function.
    pub fn function(&self) -> &Function {
        self.func
    }

    /// Computes the slice: the set of blocks (statements) whose execution
    /// influenced the criterion under the chosen approach.
    pub fn slice(&self, criterion: Criterion, approach: Approach) -> BTreeSet<BlockId> {
        match self.slice_governed(criterion, approach, &Budget::unlimited()) {
            SliceOutcome::Complete(s) | SliceOutcome::Partial { slice: s, .. } => s,
        }
    }

    /// Budget-governed variant of [`Slicer::slice`]: charges one step per
    /// worklist item, so a deadline or step cap interrupts the traversal
    /// within one dependence hop and returns the blocks found so far.
    pub fn slice_governed(
        &self,
        criterion: Criterion,
        approach: Approach,
        budget: &Budget,
    ) -> SliceOutcome {
        self.slice_observed(criterion, approach, budget, &twpp::obs::Obs::noop())
    }

    /// Observed variant of [`Slicer::slice_governed`]: additionally
    /// records the `twpp_dataflow_slice_*` counters (slices computed,
    /// worklist items visited, partial slices) into `obs`. The outcome
    /// is identical.
    pub fn slice_observed(
        &self,
        criterion: Criterion,
        approach: Approach,
        budget: &Budget,
        obs: &twpp::obs::Obs,
    ) -> SliceOutcome {
        let (slice, visited, stopped) = match approach {
            Approach::ExecutedNodes => self.slice_executed_nodes(criterion, budget),
            Approach::ExecutedEdges => self.slice_executed_edges(criterion, budget),
            Approach::PreciseInstances => self.slice_precise(criterion, budget),
        };
        if obs.is_enabled() {
            obs.counter(
                "twpp_dataflow_slice_total",
                "Dynamic slices computed",
            )
            .inc();
            obs.counter(
                "twpp_dataflow_slice_visited_total",
                "Worklist items visited by dynamic slicing",
            )
            .add(visited);
            if stopped.is_some() {
                obs.counter(
                    "twpp_dataflow_slice_partial_total",
                    "Slices stopped early by a budget",
                )
                .inc();
            }
        }
        match stopped {
            None => SliceOutcome::Complete(slice),
            Some(reason) => SliceOutcome::Partial {
                slice,
                visited,
                reason,
            },
        }
    }

    fn executed(&self, block: BlockId) -> bool {
        self.dcfg.node_by_head(block).is_some()
    }

    /// The latest execution `(block, timestamp)` of a definition of `v`
    /// strictly before `t`.
    fn last_def(&self, v: Var, t: u32) -> Option<(BlockId, u32)> {
        let mut best: Option<(BlockId, u32)> = None;
        for node in self.dcfg.nodes() {
            let head = node.head;
            if !self.rd.defs_of(head).contains(&v) {
                continue;
            }
            if let Some(ts) = node.ts.max_lt(t) {
                if best.map(|(_, bt)| ts > bt).unwrap_or(true) {
                    best = Some((head, ts));
                }
            }
        }
        best
    }

    // --- Approach 1 ----------------------------------------------------

    fn slice_executed_nodes(
        &self,
        criterion: Criterion,
        budget: &Budget,
    ) -> (BTreeSet<BlockId>, u64, Option<StopReason>) {
        let mut slice = BTreeSet::new();
        let mut visited: u64 = 0;
        if !self.executed(criterion.block) {
            return (slice, visited, None);
        }
        let mut work = vec![criterion.block];
        slice.insert(criterion.block);
        // Also seed with the static defs of the criterion variable that
        // executed and reach the criterion.
        for &(src, v) in self.rd.reaching(criterion.block) {
            if v == criterion.var && self.executed(src) && slice.insert(src) {
                work.push(src);
            }
        }
        while let Some(n) = work.pop() {
            if let Err(reason) = budget.charge_step() {
                return (slice, visited, Some(reason));
            }
            visited += 1;
            for src in self.rd.dep_sources(n) {
                if self.executed(src) && slice.insert(src) {
                    work.push(src);
                }
            }
            for &c in self.cds.deps_of(n) {
                if self.executed(c) && slice.insert(c) {
                    work.push(c);
                }
            }
        }
        (slice, visited, None)
    }

    // --- Approach 2 ----------------------------------------------------

    fn slice_executed_edges(
        &self,
        criterion: Criterion,
        budget: &Budget,
    ) -> (BTreeSet<BlockId>, u64, Option<StopReason>) {
        let mut slice = BTreeSet::new();
        let mut popped: u64 = 0;
        if !self.executed(criterion.block) {
            return (slice, popped, None);
        }
        let mut visited: HashSet<BlockId> = HashSet::new();
        let mut work: Vec<BlockId> = Vec::new();
        slice.insert(criterion.block);
        visited.insert(criterion.block);
        // Seed: the exercised definition of the criterion variable at the
        // criterion instance (all instances once found, per approach 2).
        if let Some((src, _)) = self.last_def(criterion.var, criterion.timestamp) {
            if visited.insert(src) {
                slice.insert(src);
                work.push(src);
            }
        }
        // Process the criterion node's own dependences too.
        work.push(criterion.block);
        while let Some(n) = work.pop() {
            if let Err(reason) = budget.charge_step() {
                return (slice, popped, Some(reason));
            }
            popped += 1;
            let Some(node_idx) = self.dcfg.node_by_head(n) else {
                continue;
            };
            let node_ts = &self.dcfg.node(node_idx).ts;
            // Data dependences exercised at any execution of n.
            for &u in self.rd.uses_of(n) {
                let mut sources: BTreeSet<BlockId> = BTreeSet::new();
                for t in node_ts.iter() {
                    if let Some((src, _)) = self.last_def(u, t) {
                        sources.insert(src);
                    }
                }
                for src in sources {
                    if visited.insert(src) {
                        slice.insert(src);
                        work.push(src);
                    }
                }
            }
            // Control dependences exercised: the controlling predicate
            // executed before some execution of n.
            for &c in self.cds.deps_of(n) {
                let Some(c_idx) = self.dcfg.node_by_head(c) else {
                    continue;
                };
                let exercised = node_ts
                    .iter()
                    .any(|t| self.dcfg.node(c_idx).ts.max_lt(t).is_some());
                if exercised && visited.insert(c) {
                    slice.insert(c);
                    work.push(c);
                }
            }
        }
        (slice, popped, None)
    }

    // --- Approach 3 ----------------------------------------------------

    fn slice_precise(
        &self,
        criterion: Criterion,
        budget: &Budget,
    ) -> (BTreeSet<BlockId>, u64, Option<StopReason>) {
        let mut slice = BTreeSet::new();
        let mut popped: u64 = 0;
        if !self.executed(criterion.block) {
            return (slice, popped, None);
        }
        let mut visited: HashSet<(BlockId, u32)> = HashSet::new();
        let mut work: Vec<(BlockId, u32)> = Vec::new();
        slice.insert(criterion.block);
        work.push((criterion.block, criterion.timestamp));
        // Seed the reaching definition instance of the criterion variable.
        if let Some((src, ts)) = self.last_def(criterion.var, criterion.timestamp) {
            slice.insert(src);
            work.push((src, ts));
        }
        while let Some((n, t)) = work.pop() {
            if !visited.insert((n, t)) {
                continue;
            }
            if let Err(reason) = budget.charge_step() {
                return (slice, popped, Some(reason));
            }
            popped += 1;
            for &u in self.rd.uses_of(n) {
                if let Some((src, ts)) = self.last_def(u, t) {
                    slice.insert(src);
                    work.push((src, ts));
                }
            }
            for &c in self.cds.deps_of(n) {
                let Some(c_idx) = self.dcfg.node_by_head(c) else {
                    continue;
                };
                if let Some(tc) = self.dcfg.node(c_idx).ts.max_lt(t) {
                    slice.insert(c);
                    work.push((c, tc));
                }
            }
        }
        (slice, popped, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::{single_function_program, Operand, Program, Rvalue, Stmt, Terminator};

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    /// b1: a=input -> b2: branch a -> {b3: x=1 | b4: x=2} -> b5: y=x
    /// -> b6: print y.
    fn diamond_program() -> Program {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let b5 = fb.new_block();
            let b6 = fb.new_block();
            let a = fb.new_var();
            let x = fb.new_var();
            let y = fb.new_var();
            fb.push(b1, Stmt::assign(a, Rvalue::Input));
            fb.terminate(b1, Terminator::Jump(b2));
            fb.terminate(
                b2,
                Terminator::Branch {
                    cond: Operand::Var(a),
                    then_dest: b3,
                    else_dest: b4,
                },
            );
            fb.push(b3, Stmt::assign(x, Rvalue::Use(Operand::Const(1))));
            fb.terminate(b3, Terminator::Jump(b5));
            fb.push(b4, Stmt::assign(x, Rvalue::Use(Operand::Const(2))));
            fb.terminate(b4, Terminator::Jump(b5));
            fb.push(b5, Stmt::assign(y, Rvalue::Use(Operand::Var(x))));
            fb.terminate(b5, Terminator::Jump(b6));
            fb.push(b6, Stmt::Print(Operand::Var(y)));
            fb.terminate(b6, Terminator::Return(None));
        })
        .unwrap()
    }

    #[test]
    fn precision_ordering_on_diamond() {
        let p = diamond_program();
        let f = p.func(p.main());
        // Execution took the then-branch: b1 b2 b3 b5 b6.
        let trace = [b(1), b(2), b(3), b(5), b(6)];
        let slicer = Slicer::new(f, &trace);
        let y = Var::from_index(2);
        let criterion = Criterion {
            block: b(6),
            timestamp: 5,
            var: y,
        };
        let s1 = slicer.slice(criterion, Approach::ExecutedNodes);
        let s2 = slicer.slice(criterion, Approach::ExecutedEdges);
        let s3 = slicer.slice(criterion, Approach::PreciseInstances);
        assert!(s3.is_subset(&s2), "{s3:?} ⊄ {s2:?}");
        assert!(s2.is_subset(&s1), "{s2:?} ⊄ {s1:?}");
        // b4 never executed: in no slice.
        for s in [&s1, &s2, &s3] {
            assert!(!s.contains(&b(4)));
        }
        // The executed definition b3, its controlling branch b2, and the
        // branch's input b1 are all relevant.
        for needed in [b(1), b(2), b(3), b(5), b(6)] {
            assert!(s3.contains(&needed), "missing {needed}");
        }
    }

    #[test]
    fn precise_slice_picks_the_right_instance_in_loops() {
        // b1: x=1 -> b2: x=2 (loop twice) -> b3: y=x.
        // The value of y comes from the LAST iteration of b2.
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let x = fb.new_var();
            let y = fb.new_var();
            fb.push(b1, Stmt::assign(x, Rvalue::Use(Operand::Const(1))));
            fb.terminate(b1, Terminator::Jump(b2));
            fb.push(b2, Stmt::assign(x, Rvalue::Use(Operand::Const(2))));
            fb.terminate(
                b2,
                Terminator::Branch {
                    cond: Operand::Var(x),
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.push(b3, Stmt::assign(y, Rvalue::Use(Operand::Var(x))));
            fb.terminate(b3, Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        let trace = [b(1), b(2), b(2), b(3)];
        let slicer = Slicer::new(f, &trace);
        let y = Var::from_index(1);
        let s3 = slicer.slice(
            Criterion {
                block: b(3),
                timestamp: 4,
                var: y,
            },
            Approach::PreciseInstances,
        );
        // x's reaching def is b2 (last iteration); b1's x=1 is dead here.
        assert!(s3.contains(&b(2)));
        assert!(!s3.contains(&b(1)));
    }

    #[test]
    fn governed_slice_matches_ungoverned_and_degrades_soundly() {
        let p = diamond_program();
        let f = p.func(p.main());
        let trace = [b(1), b(2), b(3), b(5), b(6)];
        let slicer = Slicer::new(f, &trace);
        let criterion = Criterion {
            block: b(6),
            timestamp: 5,
            var: Var::from_index(2),
        };
        for approach in [
            Approach::ExecutedNodes,
            Approach::ExecutedEdges,
            Approach::PreciseInstances,
        ] {
            let full = slicer.slice(criterion, approach);
            let out = slicer.slice_governed(criterion, approach, &Budget::unlimited());
            assert!(out.is_complete());
            assert_eq!(out.slice(), &full);
            // A 1-step cap yields a sound subset and a StepLimit stop.
            let budget = twpp::gov::Limits::new().max_steps(1).start();
            let capped = slicer.slice_governed(criterion, approach, &budget);
            match &capped {
                SliceOutcome::Partial { slice, reason, .. } => {
                    assert_eq!(*reason, StopReason::StepLimit);
                    assert!(slice.is_subset(&full));
                }
                SliceOutcome::Complete(s) => assert_eq!(s, &full),
            }
            assert!(capped.slice().is_subset(&full));
        }
    }

    #[test]
    fn unexecuted_criterion_yields_empty_slice() {
        let p = diamond_program();
        let f = p.func(p.main());
        let slicer = Slicer::new(f, &[b(1), b(2), b(4), b(5), b(6)]);
        let s = slicer.slice(
            Criterion {
                block: b(3),
                timestamp: 3,
                var: Var::from_index(1),
            },
            Approach::PreciseInstances,
        );
        assert!(s.is_empty());
    }
}
