//! The timestamp-annotated dynamic control flow graph (§4.1 of the paper).
//!
//! For one unique path trace of a function, the dynamic CFG has one node
//! per dynamic basic block (DBB), each annotated with the ordered set of
//! timestamps at which it executed. A timestamp/node pair `(t, n)` names a
//! unique point in the path trace; the preceding point is `(t-1, m)` where
//! `m` is the predecessor whose timestamp set contains `t-1` — which is
//! what makes efficient backward and forward traversal (and the
//! simultaneous traversal of many subpaths via compacted timestamp
//! vectors) possible.

use std::collections::HashMap;

use twpp::{DbbDictionary, TimestampedTrace, TsSet};
use twpp_ir::cfg::FlowgraphSize;
use twpp_ir::{BlockId, Function};

/// One node of a dynamic CFG: a dynamic basic block with its timestamps.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynNode {
    /// The DBB head (its id in the compacted trace).
    pub head: BlockId,
    /// The static blocks the DBB expands to (`[head]` when uncompacted).
    pub blocks: Vec<BlockId>,
    /// The ordered timestamps at which this DBB executed.
    pub ts: TsSet,
}

/// The timestamp-annotated dynamic control flow graph of one path trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynCfg {
    nodes: Vec<DynNode>,
    node_of: HashMap<BlockId, usize>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    len: u32,
}

impl DynCfg {
    /// Builds the dynamic CFG of a timestamped trace, expanding DBB heads
    /// through `dict`.
    pub fn new(tt: &TimestampedTrace, dict: &DbbDictionary) -> DynCfg {
        let mut nodes: Vec<DynNode> = Vec::new();
        let mut node_of = HashMap::new();
        for (head, ts) in tt.iter() {
            let blocks = dict
                .chain(head)
                .map(<[BlockId]>::to_vec)
                .unwrap_or_else(|| vec![head]);
            node_of.insert(head, nodes.len());
            nodes.push(DynNode {
                head,
                blocks,
                ts: ts.clone(),
            });
        }
        // Edges from consecutive positions of the compacted trace.
        let path = tt.to_path_trace();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for w in path.blocks().windows(2) {
            let a = node_of[&w[0]];
            let b = node_of[&w[1]];
            if !succs[a].contains(&b) {
                succs[a].push(b);
                preds[b].push(a);
            }
        }
        DynCfg {
            nodes,
            node_of,
            preds,
            succs,
            len: tt.len(),
        }
    }

    /// Convenience: the dynamic CFG of an (uncompacted) block sequence.
    pub fn from_block_sequence(blocks: &[BlockId]) -> DynCfg {
        let trace: twpp::PathTrace = blocks.to_vec().into();
        let tt = TimestampedTrace::from_path_trace(&trace);
        DynCfg::new(&tt, &DbbDictionary::new())
    }

    /// Number of dynamic nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dynamic edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The trace length (timestamps run `1..=len`).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The node with the given DBB head, if present.
    pub fn node_by_head(&self, head: BlockId) -> Option<usize> {
        self.node_of.get(&head).copied()
    }

    /// Node payload by index.
    pub fn node(&self, i: usize) -> &DynNode {
        &self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[DynNode] {
        &self.nodes
    }

    /// Predecessor node indices of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successor node indices of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// The node executing at timestamp `t`.
    pub fn node_at(&self, t: u32) -> Option<usize> {
        self.nodes.iter().position(|n| n.ts.contains(t))
    }

    /// One simultaneous **backward** traversal step (§4.1): all traversal
    /// points `ts` at node `node` move to their preceding trace positions,
    /// routed to the predecessors whose timestamp sets contain them.
    /// Returns `(predecessor node, its points)` pairs; points at the very
    /// start of the trace are dropped.
    pub fn step_backward(&self, node: usize, ts: &TsSet) -> Vec<(usize, TsSet)> {
        let shifted = ts.intersect(&self.nodes[node].ts).shift(-1);
        self.route(shifted, self.preds(node))
    }

    /// One simultaneous **forward** traversal step: the dual of
    /// [`DynCfg::step_backward`]; points at the end of the trace are
    /// dropped.
    pub fn step_forward(&self, node: usize, ts: &TsSet) -> Vec<(usize, TsSet)> {
        let shifted = ts.intersect(&self.nodes[node].ts).shift(1);
        self.route(shifted, self.succs(node))
    }

    fn route(&self, shifted: TsSet, neighbours: &[usize]) -> Vec<(usize, TsSet)> {
        let mut out = Vec::new();
        for &m in neighbours {
            let to_m = shifted.intersect(&self.nodes[m].ts);
            if !to_m.is_empty() {
                out.push((m, to_m));
            }
        }
        out
    }

    /// Dynamic flowgraph size (one row contribution of Table 6).
    pub fn flowgraph_size(&self) -> FlowgraphSize {
        FlowgraphSize {
            nodes: self.node_count(),
            edges: self.edge_count(),
        }
    }

    /// Average timestamp-vector length per node, `(compacted entries,
    /// uncompacted timestamps)` — Table 6's last column.
    pub fn avg_timestamp_vector(&self) -> (f64, f64) {
        if self.nodes.is_empty() {
            return (0.0, 0.0);
        }
        let entries: usize = self.nodes.iter().map(|n| n.ts.entry_count()).sum();
        let raw: u64 = self.nodes.iter().map(|n| n.ts.len()).sum();
        (
            entries as f64 / self.nodes.len() as f64,
            raw as f64 / self.nodes.len() as f64,
        )
    }
}

/// Builds dynamic CFGs for every unique trace of `func` from a compacted
/// TWPP function block.
pub fn dyn_cfgs_of(block: &twpp::pipeline::FunctionBlock) -> Vec<DynCfg> {
    block
        .traces
        .iter()
        .map(|(dict_idx, tt)| DynCfg::new(tt, &block.dicts[*dict_idx as usize]))
        .collect()
}

/// Statement-level view helpers shared by the analyses.
pub(crate) fn stmts_of_node<'f>(
    func: &'f Function,
    node: &DynNode,
) -> impl Iterator<Item = &'f twpp_ir::Stmt> {
    let blocks = node.blocks.clone();
    blocks
        .into_iter()
        .flat_map(move |b| func.block(b).stmts().iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp::trace::trace_of;

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn nodes_edges_and_timestamps() {
        // Compacted trace 1.2.2.2.10 (the paper's f after DBB compaction).
        let tt = TimestampedTrace::from_path_trace(&trace_of(&[1, 2, 2, 2, 10]));
        let dict = DbbDictionary::from_chains(vec![vec![b(2), b(3), b(4), b(5), b(6)]]);
        let g = DynCfg::new(&tt, &dict);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3); // 1->2, 2->2, 2->10
        let n2 = g.node_by_head(b(2)).unwrap();
        assert_eq!(g.node(n2).blocks.len(), 5);
        assert_eq!(g.node(n2).ts.to_string(), "{2:4}");
        assert!(g.succs(n2).contains(&n2)); // self loop
        assert_eq!(g.node_at(1), g.node_by_head(b(1)));
        assert_eq!(g.node_at(5), g.node_by_head(b(10)));
        assert_eq!(g.node_at(9), None);
    }

    #[test]
    fn traversal_via_timestamps() {
        let g = DynCfg::from_block_sequence(&[b(1), b(2), b(3), b(2), b(3), b(4)]);
        // Point (4, block 2): preceding point is (3, block 3).
        let n2 = g.node_by_head(b(2)).unwrap();
        let shifted = g.node(n2).ts.shift(-1);
        let n3 = g.node_by_head(b(3)).unwrap();
        // block 2 executes at {2, 4}; predecessors at {1, 3}: 1 is block 1,
        // 3 is block 3.
        assert_eq!(shifted.intersect(&g.node(n3).ts).to_vec(), vec![3]);
    }

    #[test]
    fn traversal_steps_route_points_to_neighbours() {
        // Trace 1.2.3.2.3.4: block 2 at {2,4}, block 3 at {3,5}.
        let g = DynCfg::from_block_sequence(&[b(1), b(2), b(3), b(2), b(3), b(4)]);
        let n2 = g.node_by_head(b(2)).unwrap();
        let n3 = g.node_by_head(b(3)).unwrap();
        let n1 = g.node_by_head(b(1)).unwrap();
        let n4 = g.node_by_head(b(4)).unwrap();

        // Backward from both executions of block 2: {2,4} -> {1,3}; 1 is
        // block 1, 3 is block 3.
        let back = g.step_backward(n2, &g.node(n2).ts);
        assert_eq!(back.len(), 2);
        let find = |steps: &[(usize, TsSet)], n: usize| {
            steps.iter().find(|(m, _)| *m == n).map(|(_, t)| t.to_vec())
        };
        assert_eq!(find(&back, n1), Some(vec![1]));
        assert_eq!(find(&back, n3), Some(vec![3]));

        // Forward from both executions of block 3: {3,5} -> {4,6}; 4 is
        // block 2 again, 6 is block 4.
        let fwd = g.step_forward(n3, &g.node(n3).ts);
        assert_eq!(find(&fwd, n2), Some(vec![4]));
        assert_eq!(find(&fwd, n4), Some(vec![6]));

        // Trace boundaries drop points.
        assert!(g.step_backward(n1, &g.node(n1).ts).is_empty());
        assert!(g.step_forward(n4, &g.node(n4).ts).is_empty());
    }

    #[test]
    fn repeated_traversal_replays_the_trace() {
        // Following forward steps from the entry reconstructs the block
        // order of the trace.
        let seq = [b(1), b(2), b(2), b(3), b(2), b(4)];
        let g = DynCfg::from_block_sequence(&seq);
        let mut replayed = vec![seq[0]];
        let mut state = vec![(g.node_at(1).unwrap(), TsSet::from_sorted(&[1]))];
        while let Some((n, ts)) = state.pop() {
            let next = g.step_forward(n, &ts);
            assert!(next.len() <= 1, "single point follows a single path");
            if let Some((m, ts)) = next.into_iter().next() {
                replayed.push(g.node(m).head);
                state.push((m, ts));
            }
        }
        assert_eq!(replayed, seq);
    }

    #[test]
    fn table6_metrics() {
        let mut seq = vec![b(1)];
        for _ in 0..500 {
            seq.push(b(2));
        }
        seq.push(b(3));
        let g = DynCfg::from_block_sequence(&seq);
        let size = g.flowgraph_size();
        assert_eq!(size.nodes, 3);
        assert_eq!(size.edges, 3);
        let (compact, raw) = g.avg_timestamp_vector();
        assert!(raw > 100.0);
        assert!(compact < 2.0);
    }

    #[test]
    fn empty_trace() {
        let g = DynCfg::from_block_sequence(&[]);
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
    }
}
