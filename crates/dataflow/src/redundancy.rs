//! Dynamic load-redundancy analysis — the profile-guided-optimization
//! application of §4.3.1 (Figure 9).
//!
//! A load is *redundant* at an execution instance when the loaded value is
//! already available (from an earlier load or store of the same address
//! that no intervening store killed). Edge or path profiles can only bound
//! this; the WPP gives the exact count, and the timestamped representation
//! computes it with a single backward propagation of a compacted
//! timestamp vector.

use twpp_ir::{Function, Operand, Rvalue, Stmt};

use crate::dyncfg::{stmts_of_node, DynCfg};
use crate::facts::AvailableLoad;
use crate::query::{solve_backward, QueryResult};

/// The outcome of a load-redundancy query.
#[derive(Clone, PartialEq, Debug)]
pub struct RedundancyReport {
    /// Executions of the load at which the loaded value was available.
    pub redundant: u64,
    /// Total executions of the load.
    pub total: u64,
    /// The per-timestamp resolution.
    pub result: QueryResult,
}

impl RedundancyReport {
    /// Degree of redundancy in percent (the paper reports 100% for
    /// Figure 9).
    pub fn degree_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.redundant as f64 * 100.0 / self.total as f64
        }
    }
}

/// Measures the degree of redundancy of the load contained in dynamic node
/// `node` (its first load statement). Returns `None` if the node contains
/// no load.
pub fn load_redundancy(dcfg: &DynCfg, func: &Function, node: usize) -> Option<RedundancyReport> {
    let addr = stmts_of_node(func, dcfg.node(node)).find_map(|s| match s {
        Stmt::Assign {
            rvalue: Rvalue::Load(a),
            ..
        } => Some(*a),
        _ => None,
    })?;
    Some(load_redundancy_for(dcfg, func, node, addr))
}

/// Measures the redundancy of loading `addr` at the executions of `node`.
pub fn load_redundancy_for(
    dcfg: &DynCfg,
    func: &Function,
    node: usize,
    addr: Operand,
) -> RedundancyReport {
    let fact = AvailableLoad { addr };
    let ts = dcfg.node(node).ts.clone();
    let total = ts.len();
    let result = solve_backward(dcfg, func, &fact, node, &ts);
    RedundancyReport {
        redundant: result.holds.len(),
        total,
        result,
    }
}

/// Finds every dynamic node containing a load, with its address — helper
/// for locating candidate loads to query.
pub fn loads_in(dcfg: &DynCfg, func: &Function) -> Vec<(usize, Operand)> {
    let mut out = Vec::new();
    for i in 0..dcfg.node_count() {
        for s in stmts_of_node(func, dcfg.node(i)) {
            if let Stmt::Assign {
                rvalue: Rvalue::Load(a),
                ..
            } = s
            {
                out.push((i, *a));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::BlockId;
    use twpp_lang::{compile_with_options, programs, LowerOptions};
    use twpp_tracer::{run_traced, ExecLimits};

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn figure9_degree_is_100_percent() {
        let program = compile_with_options(
            programs::FIGURE9,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).unwrap();
        let main_id = program.main();
        let func = program.func(main_id);
        let trace = &wpp.scan_function(main_id)[0];
        let dcfg = DynCfg::from_block_sequence(trace);

        // Two loads of address 100: the loop-header load (100 executions)
        // and the frequent-branch load (60 executions).
        let loads = loads_in(&dcfg, func);
        assert_eq!(loads.len(), 2);
        let (hot_load, _) = loads
            .iter()
            .copied()
            .find(|(n, _)| dcfg.node(*n).ts.len() == 60)
            .expect("the 60-execution load");

        let report = load_redundancy(&dcfg, func, hot_load).unwrap();
        assert_eq!(report.total, 60);
        assert_eq!(report.redundant, 60);
        assert!((report.degree_percent() - 100.0).abs() < 1e-9);
        assert!(report.result.always_holds());
    }

    #[test]
    fn header_load_is_killed_by_the_store_path() {
        let program = compile_with_options(
            programs::FIGURE9,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).unwrap();
        let main_id = program.main();
        let func = program.func(main_id);
        let trace = &wpp.scan_function(main_id)[0];
        let dcfg = DynCfg::from_block_sequence(trace);

        let loads = loads_in(&dcfg, func);
        let (header_load, _) = loads
            .iter()
            .copied()
            .find(|(n, _)| dcfg.node(*n).ts.len() == 100)
            .expect("the 100-execution load");
        let report = load_redundancy(&dcfg, func, header_load).unwrap();
        assert_eq!(report.total, 100);
        // The first iteration has nothing before it; iterations after a
        // store-path iteration are killed... but the store is to the SAME
        // address (100), which re-generates availability. So only the very
        // first execution is non-redundant.
        assert_eq!(report.redundant, 99);
    }

    #[test]
    fn no_load_yields_none() {
        let p = twpp_ir::single_function_program(|fb| {
            let e = fb.entry();
            fb.push(e, twpp_ir::Stmt::Print(Operand::Const(1)));
            fb.terminate(e, twpp_ir::Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        let dcfg = DynCfg::from_block_sequence(&[b(1)]);
        assert!(load_redundancy(&dcfg, f, 0).is_none());
    }
}
