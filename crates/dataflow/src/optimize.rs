//! Profile-guided optimization candidates — §4.3.1 as a reusable pass.
//!
//! "A profile-guided optimizer identifies data flow facts that are observed
//! to hold for hot regions of the code and exploits them." This module
//! scans a function's executed traces for load instructions, computes each
//! load's dynamic redundancy degree with the demand-driven query engine,
//! and reports the candidates whose degree crosses a threshold — the
//! *hot data flow facts* an optimizer would specialize on (e.g. with code
//! motion or restructuring, per the paper's references).

use std::collections::HashMap;

use twpp::pipeline::CompactedTwpp;
use twpp_ir::{FuncId, Function, Operand, Program};

use crate::dyncfg::{dyn_cfgs_of, DynCfg};
use crate::facts::{Effect, GenKillFact};
use crate::interproc::{CallSummaries, WithCallEffects};
use crate::query::solve_backward;
use crate::AvailableLoad;

/// One optimization candidate: a load that is dynamically redundant often
/// enough to be worth specializing.
#[derive(Clone, PartialEq, Debug)]
pub struct LoadCandidate {
    /// The function containing the load.
    pub func: FuncId,
    /// The dynamic-CFG head block containing the load (per unique trace).
    pub block: twpp_ir::BlockId,
    /// Which unique trace of the function this was measured on.
    pub trace_idx: u32,
    /// The load's syntactic address.
    pub addr: Operand,
    /// Executions of the load in this trace's activations.
    pub executions: u64,
    /// Executions at which the loaded value was already available.
    pub redundant: u64,
    /// How many times this unique trace ran (the candidate's weight).
    pub frequency: u64,
}

impl LoadCandidate {
    /// Degree of redundancy in percent.
    pub fn degree_percent(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.redundant as f64 * 100.0 / self.executions as f64
        }
    }

    /// Total dynamically removable load executions if the trace's
    /// activations were specialized: `redundant * frequency`.
    pub fn removable(&self) -> u64 {
        self.redundant * self.frequency
    }
}

/// Scans every unique trace of `func` and returns the loads whose dynamic
/// redundancy degree is at least `min_degree_percent`, hottest (most
/// removable executions) first. Call effects are summarized from the
/// compacted TWPP so loads across calls are classified safely.
pub fn redundant_load_candidates(
    program: &Program,
    compacted: &CompactedTwpp,
    func: FuncId,
    min_degree_percent: f64,
) -> Vec<LoadCandidate> {
    let Some(fb) = compacted.function(func) else {
        return Vec::new();
    };
    let function = program.func(func);
    let freqs = compacted.trace_frequencies(func);
    // Call-effect summaries depend only on the queried address: compute
    // each once, not once per load.
    let mut summaries: HashMap<Operand, CallSummaries> = HashMap::new();
    let mut out = Vec::new();
    for (trace_idx, dcfg) in dyn_cfgs_of(fb).into_iter().enumerate() {
        let frequency = freqs[trace_idx];
        for candidate in candidates_in_trace(
            program,
            compacted,
            function,
            func,
            &dcfg,
            trace_idx as u32,
            &mut summaries,
        ) {
            let candidate = LoadCandidate {
                frequency,
                ..candidate
            };
            if candidate.degree_percent() >= min_degree_percent {
                out.push(candidate);
            }
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.removable()));
    out
}

#[allow(clippy::too_many_arguments)]
fn candidates_in_trace(
    program: &Program,
    compacted: &CompactedTwpp,
    function: &Function,
    func: FuncId,
    dcfg: &DynCfg,
    trace_idx: u32,
    summaries: &mut HashMap<Operand, CallSummaries>,
) -> Vec<LoadCandidate> {
    let mut out = Vec::new();
    for node in 0..dcfg.node_count() {
        // Walk the node's statements (a DBB may span several blocks) so
        // loads made redundant by earlier statements *within* the node are
        // classified too.
        let mut flat: Vec<&twpp_ir::Stmt> = Vec::new();
        for &b in &dcfg.node(node).blocks {
            flat.extend(function.block(b).stmts());
        }
        for (idx, stmt) in flat.iter().enumerate() {
            let twpp_ir::Stmt::Assign {
                rvalue: twpp_ir::Rvalue::Load(addr),
                ..
            } = stmt
            else {
                continue;
            };
            let addr = *addr;
            let fact = AvailableLoad { addr };
            let summary = summaries
                .entry(addr)
                .or_insert_with(|| CallSummaries::compute(program, compacted, &fact));
            let with_calls = WithCallEffects::new(&fact, summary);
            // Effect of the node's statements before this load.
            let mut prefix = Effect::Transparent;
            for s in &flat[..idx] {
                if let Some(callee) = s.callee() {
                    match with_calls.effect_of_call(callee) {
                        Effect::Transparent => {}
                        e => prefix = e,
                    }
                }
                match with_calls.effect_of(s) {
                    Effect::Transparent => {}
                    e => prefix = e,
                }
            }
            let ts = dcfg.node(node).ts.clone();
            let executions = ts.len();
            let redundant = match prefix {
                Effect::Gen => executions,
                Effect::Kill => 0,
                Effect::Transparent => {
                    solve_backward(dcfg, function, &with_calls, node, &ts)
                        .holds
                        .len()
                }
            };
            out.push(LoadCandidate {
                func,
                block: dcfg.node(node).head,
                trace_idx,
                addr,
                executions,
                redundant,
                frequency: 0,
            });
        }
    }
    out
}

/// Convenience: candidates across *all* functions of the execution, ranked
/// by removable executions.
pub fn all_redundant_load_candidates(
    program: &Program,
    compacted: &CompactedTwpp,
    min_degree_percent: f64,
) -> Vec<LoadCandidate> {
    let mut out = Vec::new();
    for fb in &compacted.functions {
        out.extend(redundant_load_candidates(
            program,
            compacted,
            fb.func,
            min_degree_percent,
        ));
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.removable()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp::compact;
    use twpp_lang::{compile_with_options, LowerOptions};
    use twpp_tracer::{run_traced, ExecLimits};

    fn setup(src: &str) -> (Program, CompactedTwpp) {
        let program = compile_with_options(
            src,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).unwrap();
        let compacted = compact(&wpp).unwrap();
        (program, compacted)
    }

    #[test]
    fn figure9_load_is_the_top_candidate() {
        let (program, compacted) = setup(twpp_lang::programs::FIGURE9);
        let candidates =
            redundant_load_candidates(&program, &compacted, program.main(), 99.5);
        // Only the fully redundant 60-execution load clears 99.5%.
        assert_eq!(candidates.len(), 1);
        let c = &candidates[0];
        assert_eq!(c.executions, 60);
        assert_eq!(c.redundant, 60);
        assert!((c.degree_percent() - 100.0).abs() < 1e-9);
        // main ran once, so removable = redundant.
        assert_eq!(c.frequency, 1);
        assert_eq!(c.removable(), 60);
        // Lowering the threshold also surfaces the 99% header load.
        let candidates =
            redundant_load_candidates(&program, &compacted, program.main(), 50.0);
        assert_eq!(candidates.len(), 2);
        assert!(candidates[0].removable() >= candidates[1].removable());
    }

    #[test]
    fn hot_functions_weight_candidates_by_frequency() {
        // f is called 10 times; its redundant load is worth 10x its
        // per-activation count.
        let src = "
            fn f() {
                let a = load(5);
                let b = load(5);
                print(a + b);
            }
            fn main() {
                let i = 0;
                while (i < 10) { f(); i = i + 1; }
            }";
        let (program, compacted) = setup(src);
        let (f_id, _) = program.func_by_name("f").unwrap();
        let candidates = redundant_load_candidates(&program, &compacted, f_id, 99.0);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].frequency, 10);
        assert_eq!(candidates[0].removable(), 10);
    }

    #[test]
    fn calls_that_clobber_lower_the_degree() {
        let src = "
            fn clobber() { store(9, 1); }
            fn main() {
                let a = load(5);
                clobber();
                let b = load(5);
                print(a + b);
            }";
        let (program, compacted) = setup(src);
        let candidates =
            all_redundant_load_candidates(&program, &compacted, 0.0);
        // Two loads, both seen; the second has 0% degree because clobber()
        // may alias.
        let degrees: Vec<f64> = candidates.iter().map(LoadCandidate::degree_percent).collect();
        assert_eq!(candidates.len(), 2);
        assert!(degrees.iter().all(|&d| d == 0.0), "{degrees:?}");
        // With a 1% threshold, nothing qualifies.
        assert!(all_redundant_load_candidates(&program, &compacted, 1.0).is_empty());
    }

    #[test]
    fn unknown_function_yields_no_candidates() {
        let (program, compacted) = setup(twpp_lang::programs::FIGURE9);
        assert!(redundant_load_candidates(
            &program,
            &compacted,
            FuncId::from_index(7),
            0.0
        )
        .is_empty());
    }
}
