//! Interprocedural dynamic slicing — the extension the paper sketches in
//! §4.2: "our techniques can be easily extended to handle interprocedural
//! paths by analyzing path traces of multiple functions in concert and
//! propagating queries along interprocedural paths".
//!
//! The dynamic call graph gives the per-activation structure: each DCG node
//! knows its function, its (shared) unique path trace and the position of
//! its call inside the parent's trace. A slice query therefore moves in
//! three directions:
//!
//! * **within** an activation — precise-instance slicing over that
//!   activation's timestamp-annotated dynamic CFG, as in approach 3;
//! * **down** into a callee — when the value flows out of a call's return,
//!   the query continues at the callee activation's return expression;
//! * **up** into the caller — when the sliced variable is a parameter whose
//!   value entered with the call, the query continues at the call site's
//!   argument expressions.
//!
//! The result is a set of `(function, block)` pairs spanning every
//! activation the value actually flowed through in this execution.

use std::collections::{BTreeSet, HashMap, HashSet};

use twpp::gov::{Budget, StopReason};
use twpp::pipeline::CompactedTwpp;
use twpp::{DcgNodeId, TsSet};
use twpp_ir::dom::ControlDeps;
use twpp_ir::{BlockId, FuncId, Operand, Program, Rvalue, Stmt, Terminator, Var};

use crate::dyncfg::DynCfg;
use crate::reachdefs::ReachingDefs;

/// A point in an interprocedural slice.
pub type SlicePoint = (FuncId, BlockId);

/// The outcome of a governed interprocedural slice.
///
/// A partial slice is a sound under-approximation: every `(func, block)`
/// pair it contains influenced the criterion, but pairs may be missing.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum InterSliceOutcome {
    /// The worklist drained: the slice is exact.
    Complete(BTreeSet<SlicePoint>),
    /// The budget stopped the activation walk early.
    Partial {
        /// The points discovered before the stop.
        slice: BTreeSet<SlicePoint>,
        /// Worklist instances processed before the stop.
        visited: u64,
        /// Why the walk stopped.
        reason: StopReason,
    },
}

impl InterSliceOutcome {
    /// The discovered slice points, complete or not.
    pub fn slice(&self) -> &BTreeSet<SlicePoint> {
        match self {
            InterSliceOutcome::Complete(s) => s,
            InterSliceOutcome::Partial { slice, .. } => slice,
        }
    }

    /// Whether the walk ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, InterSliceOutcome::Complete(_))
    }
}

/// The slicing criterion: a variable at an execution instance *within a
/// particular activation*.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InterCriterion {
    /// The activation (DCG node) containing the instance.
    pub activation: DcgNodeId,
    /// The 1-based timestamp within that activation's own path trace.
    pub timestamp: u32,
    /// The variable whose value is being explained.
    pub var: Var,
}

/// Interprocedural precise-instance dynamic slicer.
pub struct InterSlicer<'p> {
    program: &'p Program,
    compacted: &'p CompactedTwpp,
    /// Lazily built per (func, unique-trace): uncompacted dynamic CFG.
    dyncfgs: HashMap<(FuncId, u32), DynCfg>,
    /// Per function: static block defs/uses and control dependence.
    analyses: HashMap<FuncId, (ReachingDefs, ControlDeps)>,
    /// Parent of each DCG node.
    parents: HashMap<DcgNodeId, DcgNodeId>,
    /// Children of each DCG node grouped by call offset, in call order.
    children_at: HashMap<(DcgNodeId, u32), Vec<DcgNodeId>>,
}

impl<'p> InterSlicer<'p> {
    /// Builds a slicer over one execution's compacted TWPP.
    pub fn new(program: &'p Program, compacted: &'p CompactedTwpp) -> InterSlicer<'p> {
        let mut parents = HashMap::new();
        let mut children_at: HashMap<(DcgNodeId, u32), Vec<DcgNodeId>> = HashMap::new();
        for (id, node) in compacted.dcg.iter() {
            for &child in &node.children {
                parents.insert(child, id);
                let offset = compacted.dcg.node(child).offset_in_parent;
                children_at.entry((id, offset)).or_default().push(child);
            }
        }
        InterSlicer {
            program,
            compacted,
            dyncfgs: HashMap::new(),
            analyses: HashMap::new(),
            parents,
            children_at,
        }
    }

    /// Computes the interprocedural precise dynamic slice.
    pub fn slice(&mut self, criterion: InterCriterion) -> BTreeSet<SlicePoint> {
        match self.slice_governed(criterion, &Budget::unlimited()) {
            InterSliceOutcome::Complete(s) | InterSliceOutcome::Partial { slice: s, .. } => s,
        }
    }

    /// Budget-governed variant of [`InterSlicer::slice`]: charges one
    /// step per statement instance popped from the worklist, so a
    /// deadline or step cap interrupts the activation walk within one
    /// dependence hop and returns the points found so far.
    pub fn slice_governed(
        &mut self,
        criterion: InterCriterion,
        budget: &Budget,
    ) -> InterSliceOutcome {
        self.slice_observed(criterion, budget, &twpp::obs::Obs::noop())
    }

    /// Observed variant of [`InterSlicer::slice_governed`]: additionally
    /// records the `twpp_dataflow_interslice_*` counters — activation
    /// walks started, worklist instances processed, and walks stopped
    /// short by the budget. The slice is identical.
    pub fn slice_observed(
        &mut self,
        criterion: InterCriterion,
        budget: &Budget,
        obs: &twpp::obs::Obs,
    ) -> InterSliceOutcome {
        obs.counter(
            "twpp_dataflow_interslice_total",
            "Interprocedural slices computed",
        )
        .inc();
        let mut slice: BTreeSet<SlicePoint> = BTreeSet::new();
        let mut visited: HashSet<(DcgNodeId, u32)> = HashSet::new();
        let mut work: Vec<(DcgNodeId, u32, Option<Var>)> = Vec::new();
        let mut popped: u64 = 0;
        // The criterion instance itself is in the slice; explaining `var`
        // starts from its reaching definition.
        work.push((criterion.activation, criterion.timestamp, Some(criterion.var)));
        let visited_counter = obs.counter(
            "twpp_dataflow_interslice_visited_total",
            "Worklist instances processed by interprocedural slicing",
        );
        let partial_counter = obs.counter(
            "twpp_dataflow_interslice_partial_total",
            "Interprocedural slices stopped short by the budget",
        );
        while let Some((activation, t, seed_var)) = work.pop() {
            if let Err(reason) = budget.charge_step() {
                visited_counter.add(popped);
                partial_counter.inc();
                return InterSliceOutcome::Partial {
                    slice,
                    visited: popped,
                    reason,
                };
            }
            popped += 1;
            self.process_instance(activation, t, seed_var, &mut slice, &mut visited, &mut work);
        }
        visited_counter.add(popped);
        InterSliceOutcome::Complete(slice)
    }

    /// Handles one statement instance `(activation, t)`. When `seed_var`
    /// is set, the instance is a *query point* for that variable (its own
    /// uses are not traced); otherwise the instance's block joins the slice
    /// and all its dependences are traced.
    #[allow(clippy::too_many_arguments)]
    fn process_instance(
        &mut self,
        activation: DcgNodeId,
        t: u32,
        seed_var: Option<Var>,
        slice: &mut BTreeSet<SlicePoint>,
        visited: &mut HashSet<(DcgNodeId, u32)>,
        work: &mut Vec<(DcgNodeId, u32, Option<Var>)>,
    ) {
        let func = self.compacted.dcg.node(activation).func;
        let block = match self.block_at(activation, t) {
            Some(b) => b,
            None => return,
        };
        slice.insert((func, block));
        if let Some(v) = seed_var {
            // Trace only the seed variable's definition.
            self.trace_var(activation, t, v, true, slice, visited, work);
            // Still honour control context of the query point itself.
            self.trace_control(activation, t, block, slice, work);
            return;
        }
        if !visited.insert((activation, t)) {
            return;
        }
        self.ensure_analyses(func);
        let uses: Vec<Var> = self.analyses[&func].0.uses_of(block).to_vec();
        for u in uses {
            self.trace_var(activation, t, u, false, slice, visited, work);
        }
        self.trace_control(activation, t, block, slice, work);
    }

    /// Finds and enqueues the defining instance of `v` before `t`; descends
    /// into callees for call-assigned values and ascends to the caller for
    /// undefined parameters. `inclusive` searches up to and including `t`
    /// (used for seed queries at the instance itself).
    #[allow(clippy::too_many_arguments)]
    fn trace_var(
        &mut self,
        activation: DcgNodeId,
        t: u32,
        v: Var,
        inclusive: bool,
        slice: &mut BTreeSet<SlicePoint>,
        visited: &mut HashSet<(DcgNodeId, u32)>,
        work: &mut Vec<(DcgNodeId, u32, Option<Var>)>,
    ) {
        let func = self.compacted.dcg.node(activation).func;
        let limit = if inclusive { t + 1 } else { t };
        match self.last_def(activation, v, limit) {
            Some((def_block, def_t)) => {
                slice.insert((func, def_block));
                // The value may flow (through block-local temporaries) out
                // of one or more calls made by the defining block: descend
                // into each feeding callee's return expression.
                for call_order in self.calls_feeding(func, def_block, v) {
                    let Some(children) = self.children_at.get(&(activation, def_t)) else {
                        continue;
                    };
                    let Some(&callee_act) = children.get(call_order) else {
                        continue;
                    };
                    let callee_func = self.compacted.dcg.node(callee_act).func;
                    if let Some((ret_block, ret_vars, last_t)) = self.return_info(callee_act) {
                        slice.insert((callee_func, ret_block));
                        for rv in ret_vars {
                            work.push((callee_act, last_t, Some(rv)));
                        }
                    }
                }
                work.push((activation, def_t, None));
                let _ = visited;
            }
            None => {
                // Undefined before t: a parameter value entering with the
                // call, or the variable's zero initialisation.
                let function = self.program.func(func);
                if v.index() < function.param_count() {
                    self.ascend_to_argument(activation, v, slice, work);
                }
            }
        }
    }

    /// Adds the controlling predicate instances of `(activation, t)`.
    fn trace_control(
        &mut self,
        activation: DcgNodeId,
        t: u32,
        block: BlockId,
        slice: &mut BTreeSet<SlicePoint>,
        work: &mut Vec<(DcgNodeId, u32, Option<Var>)>,
    ) {
        let func = self.compacted.dcg.node(activation).func;
        self.ensure_analyses(func);
        let deps: Vec<BlockId> = self.analyses[&func].1.deps_of(block).to_vec();
        let dcfg = self.dyncfg(activation);
        let mut found: Vec<(BlockId, u32)> = Vec::new();
        for c in deps {
            if let Some(idx) = dcfg.node_by_head(c) {
                if let Some(tc) = dcfg.node(idx).ts.max_lt(t) {
                    found.push((c, tc));
                }
            }
        }
        for (c, tc) in found {
            slice.insert((func, c));
            work.push((activation, tc, None));
        }
        // The activation itself exists because of its call site: include
        // the caller's call instance (interprocedural control dependence).
        if let Some(&parent) = self.parents.get(&activation) {
            let call_t = self.compacted.dcg.node(activation).offset_in_parent;
            if call_t >= 1 {
                let pf = self.compacted.dcg.node(parent).func;
                if let Some(call_block) = self.block_at(parent, call_t) {
                    if slice.insert((pf, call_block)) {
                        work.push((parent, call_t, None));
                    }
                }
            }
        }
    }

    /// Call statements (by in-block call order) whose results flow —
    /// possibly through block-local temporaries — into the final value of
    /// `v` in `block`. A backward walk over the block's statements tracks
    /// the set of relevant variables.
    fn calls_feeding(&self, func: FuncId, block: BlockId, v: Var) -> Vec<usize> {
        let function = self.program.func(func);
        let stmts = function.block(block).stmts();
        let mut relevant: HashSet<Var> = HashSet::new();
        relevant.insert(v);
        let mut found = Vec::new();
        for (idx, s) in stmts.iter().enumerate().rev() {
            if let Some(d) = s.defined_var() {
                if relevant.remove(&d) {
                    if matches!(
                        s,
                        Stmt::Assign {
                            rvalue: Rvalue::Call { .. },
                            ..
                        }
                    ) {
                        let order = stmts[..idx]
                            .iter()
                            .filter(|x| x.callee().is_some())
                            .count();
                        found.push(order);
                    }
                    for u in s.used_vars() {
                        relevant.insert(u);
                    }
                }
            }
        }
        found
    }

    /// The callee activation's final block, the vars its return reads, and
    /// its last timestamp.
    fn return_info(&mut self, activation: DcgNodeId) -> Option<(BlockId, Vec<Var>, u32)> {
        let func = self.compacted.dcg.node(activation).func;
        let trace = self.trace_of(activation);
        let last_t = trace.len() as u32;
        let last_block = *trace.last()?;
        let function = self.program.func(func);
        let vars = match function.block(last_block).terminator() {
            Terminator::Return(Some(Operand::Var(v))) => vec![*v],
            _ => Vec::new(),
        };
        Some((last_block, vars, last_t))
    }

    /// The caller's argument operand feeding parameter `v`: enqueue slicing
    /// of the argument variables at the call instance.
    fn ascend_to_argument(
        &mut self,
        activation: DcgNodeId,
        v: Var,
        slice: &mut BTreeSet<SlicePoint>,
        work: &mut Vec<(DcgNodeId, u32, Option<Var>)>,
    ) {
        let Some(&parent) = self.parents.get(&activation) else {
            return;
        };
        let node = self.compacted.dcg.node(activation);
        let callee_func = node.func;
        let call_t = node.offset_in_parent;
        let parent_func = self.compacted.dcg.node(parent).func;
        let Some(call_block) = self.block_at(parent, call_t) else {
            return;
        };
        // Find the call statement in the caller's block targeting us with
        // the right call order.
        let my_order = self
            .children_at
            .get(&(parent, call_t))
            .and_then(|cs| cs.iter().position(|&c| c == activation))
            .unwrap_or(0);
        let function = self.program.func(parent_func);
        let call_stmt = function
            .block(call_block)
            .stmts()
            .iter()
            .filter(|s| s.callee().is_some())
            .nth(my_order);
        let args: Vec<Operand> = match call_stmt {
            Some(Stmt::Call { args, .. }) => args.clone(),
            Some(Stmt::Assign {
                rvalue: Rvalue::Call { args, .. },
                ..
            }) => args.clone(),
            _ => return,
        };
        let _ = callee_func;
        slice.insert((parent_func, call_block));
        if let Some(Operand::Var(arg)) = args.get(v.index()) {
            work.push((parent, call_t, Some(*arg)));
        }
        // The call instance's own context matters too.
        work.push((parent, call_t, None));
    }

    // ----- per-activation trace helpers --------------------------------

    fn trace_key(&self, activation: DcgNodeId) -> (FuncId, u32) {
        let node = self.compacted.dcg.node(activation);
        (node.func, node.trace_idx)
    }

    fn trace_of(&mut self, activation: DcgNodeId) -> Vec<BlockId> {
        let key = self.trace_key(activation);
        self.ensure_dyncfg(key);
        // Recover the block sequence from the dyncfg via timestamps.
        let dcfg = &self.dyncfgs[&key];
        (1..=dcfg.len())
            .map(|t| {
                let idx = dcfg.node_at(t).expect("timestamps are dense");
                dcfg.node(idx).head
            })
            .collect()
    }

    fn block_at(&mut self, activation: DcgNodeId, t: u32) -> Option<BlockId> {
        let key = self.trace_key(activation);
        self.ensure_dyncfg(key);
        let dcfg = &self.dyncfgs[&key];
        dcfg.node_at(t).map(|i| dcfg.node(i).head)
    }

    fn dyncfg(&mut self, activation: DcgNodeId) -> &DynCfg {
        let key = self.trace_key(activation);
        self.ensure_dyncfg(key);
        &self.dyncfgs[&key]
    }

    fn ensure_dyncfg(&mut self, key: (FuncId, u32)) {
        if self.dyncfgs.contains_key(&key) {
            return;
        }
        let fb = self
            .compacted
            .function(key.0)
            .expect("activation function present in compacted TWPP");
        let trace = fb.expanded_traces()[key.1 as usize].clone();
        self.dyncfgs
            .insert(key, DynCfg::from_block_sequence(trace.blocks()));
    }

    fn ensure_analyses(&mut self, func: FuncId) {
        if self.analyses.contains_key(&func) {
            return;
        }
        let function = self.program.func(func);
        self.analyses.insert(
            func,
            (ReachingDefs::new(function), ControlDeps::new(function)),
        );
    }

    /// Latest definition of `v` strictly before timestamp `limit` within
    /// one activation.
    fn last_def(&mut self, activation: DcgNodeId, v: Var, limit: u32) -> Option<(BlockId, u32)> {
        let func = self.compacted.dcg.node(activation).func;
        self.ensure_analyses(func);
        let key = self.trace_key(activation);
        self.ensure_dyncfg(key);
        let dcfg = &self.dyncfgs[&key];
        let rd = &self.analyses[&func].0;
        let mut best: Option<(BlockId, u32)> = None;
        for node in dcfg.nodes() {
            if !rd.defs_of(node.head).contains(&v) {
                continue;
            }
            if let Some(ts) = node.ts.max_lt(limit) {
                if best.map(|(_, bt)| ts > bt).unwrap_or(true) {
                    best = Some((node.head, ts));
                }
            }
        }
        best
    }

    /// The timestamps of `block` within an activation (diagnostics/tests).
    pub fn timestamps_of(&mut self, activation: DcgNodeId, block: BlockId) -> TsSet {
        let key = self.trace_key(activation);
        self.ensure_dyncfg(key);
        let dcfg = &self.dyncfgs[&key];
        dcfg.node_by_head(block)
            .map(|i| dcfg.node(i).ts.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp::compact;
    use twpp_lang::{compile_with_options, LowerOptions};
    use twpp_tracer::{run_traced, ExecLimits};

    fn setup(src: &str, input: &[i64]) -> (twpp_ir::Program, CompactedTwpp) {
        let program = compile_with_options(
            src,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, input, ExecLimits::default()).unwrap();
        let compacted = compact(&wpp).unwrap();
        (program, compacted)
    }

    /// Finds the activation of `main` (the DCG root).
    fn criterion_at_end(
        program: &twpp_ir::Program,
        compacted: &CompactedTwpp,
        var_of_last_print: bool,
    ) -> InterCriterion {
        let root = compacted.dcg.root();
        let main_fb = compacted.function(program.main()).unwrap();
        let trace = &main_fb.expanded_traces()[compacted.dcg.node(root).trace_idx as usize];
        let func = program.func(program.main());
        let var = if var_of_last_print {
            func.blocks()
                .flat_map(|(_, b)| b.stmts())
                .filter_map(|s| match s {
                    Stmt::Print(Operand::Var(v)) => Some(*v),
                    _ => None,
                })
                .last()
                .expect("program prints a variable")
        } else {
            Var::from_index(0)
        };
        InterCriterion {
            activation: root,
            timestamp: trace.len() as u32,
            var,
        }
    }

    #[test]
    fn slice_descends_into_the_returning_callee() {
        let src = "
            fn pick(x) {
                if (x > 0) { return 111; }
                return 222;
            }
            fn irrelevant() { print(9); }
            fn main() {
                irrelevant();
                let r = pick(5);
                print(r);
            }";
        let (program, compacted) = setup(src, &[]);
        let mut slicer = InterSlicer::new(&program, &compacted);
        let criterion = criterion_at_end(&program, &compacted, true);
        let slice = slicer.slice(criterion);

        let (pick_id, _) = program.func_by_name("pick").unwrap();
        let (irr_id, _) = program.func_by_name("irrelevant").unwrap();
        // pick's taken branch is in the slice.
        assert!(
            slice.iter().any(|&(f, _)| f == pick_id),
            "slice must descend into pick: {slice:?}"
        );
        // irrelevant's body is not.
        assert!(
            !slice.iter().any(|&(f, _)| f == irr_id),
            "irrelevant must stay out: {slice:?}"
        );
    }

    #[test]
    fn slice_ascends_to_the_argument_source() {
        let src = "
            fn id(x) { return x; }
            fn main() {
                let a = input();
                let dead = input();
                let r = id(a);
                print(r);
            }";
        let (program, compacted) = setup(src, &[5, 6]);
        let mut slicer = InterSlicer::new(&program, &compacted);
        let criterion = criterion_at_end(&program, &compacted, true);
        let slice = slicer.slice(criterion);

        // The block defining `a` (the first input) must appear; find it by
        // checking the main function blocks containing Input assignments.
        let main_func = program.func(program.main());
        let input_blocks: Vec<BlockId> = main_func
            .blocks()
            .filter(|(_, b)| {
                b.stmts()
                    .iter()
                    .any(|s| matches!(s, Stmt::Assign { rvalue: Rvalue::Input, .. }))
            })
            .map(|(id, _)| id)
            .collect();
        assert_eq!(input_blocks.len(), 2);
        let main_id = program.main();
        assert!(
            slice.contains(&(main_id, input_blocks[0])),
            "the argument's source must be in the slice: {slice:?}"
        );
        assert!(
            !slice.contains(&(main_id, input_blocks[1])),
            "the dead input must not be: {slice:?}"
        );
        // id's return is in the slice.
        let (id_fn, _) = program.func_by_name("id").unwrap();
        assert!(slice.iter().any(|&(f, _)| f == id_fn));
    }

    #[test]
    fn figure10_interprocedural_slice_tracks_the_last_iteration() {
        use twpp_lang::programs;
        let (program, compacted) = setup(programs::FIGURE10, programs::FIGURE10_INPUT);
        let mut slicer = InterSlicer::new(&program, &compacted);
        let criterion = criterion_at_end(&program, &compacted, true);
        let slice = slicer.slice(criterion);

        // The final z came via f3(f1(x)): both callees' bodies join the
        // slice; f2 executed but did not feed the final value.
        let (f1, _) = program.func_by_name("f1").unwrap();
        let (f2, _) = program.func_by_name("f2").unwrap();
        let (f3, _) = program.func_by_name("f3").unwrap();
        assert!(slice.iter().any(|&(f, _)| f == f3), "{slice:?}");
        assert!(slice.iter().any(|&(f, _)| f == f1), "{slice:?}");
        assert!(
            !slice.iter().any(|&(f, _)| f == f2),
            "f2 did not produce the sliced value: {slice:?}"
        );
    }

    #[test]
    fn governed_interslice_degrades_to_a_sound_subset() {
        let src = "
            fn id(x) { return x; }
            fn main() {
                let a = input();
                let r = id(a);
                print(r);
            }";
        let (program, compacted) = setup(src, &[5]);
        let mut slicer = InterSlicer::new(&program, &compacted);
        let criterion = criterion_at_end(&program, &compacted, true);
        let full = slicer.slice(criterion);
        // Unlimited governed run is complete and identical.
        let out = slicer.slice_governed(criterion, &twpp::Budget::unlimited());
        assert!(out.is_complete());
        assert_eq!(out.slice(), &full);
        // A 1-step cap returns a sound subset with the stop reason.
        let budget = twpp::gov::Limits::new().max_steps(1).start();
        match slicer.slice_governed(criterion, &budget) {
            InterSliceOutcome::Partial { slice, reason, .. } => {
                assert_eq!(reason, twpp::StopReason::StepLimit);
                assert!(slice.is_subset(&full));
            }
            InterSliceOutcome::Complete(s) => assert_eq!(s, full),
        }
    }

    #[test]
    fn recursion_is_sliced_through_activations() {
        let src = "
            fn fact(n) {
                if (n < 2) { return 1; }
                return n * fact(n - 1);
            }
            fn main() { print(fact(4)); }";
        let (program, compacted) = setup(src, &[]);
        let mut slicer = InterSlicer::new(&program, &compacted);
        let criterion = criterion_at_end(&program, &compacted, true);
        let slice = slicer.slice(criterion);
        let (fact_id, _) = program.func_by_name("fact").unwrap();
        // The slice spans fact's recursive structure.
        assert!(slice.iter().any(|&(f, _)| f == fact_id));
        // And terminates (no infinite activation walk).
        assert!(slice.len() < 64);
    }
}
