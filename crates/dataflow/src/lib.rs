//! **twpp-dataflow** — profile-limited data flow analysis over timestamped
//! whole program paths (§4 of the paper).
//!
//! Provides:
//!
//! * [`DynCfg`] — the timestamp-annotated dynamic control flow graph
//!   (§4.1), the representation all analyses run on;
//! * [`query`] — demand-driven backward GEN-KILL query propagation with
//!   compacted timestamp vectors (§4.2), plus a naive replay oracle;
//! * [`reachdefs`] — classic static reaching definitions (the static side
//!   of Table 6's comparison and the PDG for slicing approach 1);
//! * [`redundancy`] — dynamic load-redundancy degrees for profile-guided
//!   optimization (Figure 9);
//! * [`interproc`] — per-callee `GEN_f`/`KILL_f` effect summaries derived
//!   from the compacted TWPP, so queries account for calls;
//! * [`interslice`] — interprocedural precise dynamic slicing across the
//!   dynamic call graph (the extension §4.2 sketches);
//! * [`optimize`] — the §4.3.1 optimizer driver: ranked redundant-load
//!   candidates weighted by hot-path frequencies;
//! * [`slicing`] — the three Agrawal–Horgan dynamic slicing algorithms on
//!   one common representation (Figures 10 and 11);
//! * [`currency`] — dynamic currency determination for debugging optimized
//!   code (Figure 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod currency;
pub mod dyncfg;
pub mod facts;
pub mod interproc;
pub mod interslice;
pub mod optimize;
pub mod query;
pub mod reach;
pub mod reachdefs;
pub mod redundancy;
pub mod slicing;

pub use currency::{currency_of, AssignTag, AssignTags, Currency};
pub use dyncfg::{dyn_cfgs_of, DynCfg, DynNode};
pub use facts::{AvailableLoad, Defined, Effect, GenKillFact};
pub use interproc::{CallSummaries, WithCallEffects};
pub use interslice::{InterCriterion, InterSliceOutcome, InterSlicer, SlicePoint};
pub use optimize::{all_redundant_load_candidates, redundant_load_candidates, LoadCandidate};
pub use query::{
    node_effects, solve_backward, solve_backward_effects_governed, solve_backward_governed,
    solve_by_replay, solve_by_replay_effects_governed, solve_by_replay_governed, QueryOutcome,
    QueryResult,
};
pub use reach::{backward_reach_governed, block_effects, ReachOutcome};
pub use reachdefs::ReachingDefs;
pub use redundancy::{load_redundancy, load_redundancy_for, loads_in, RedundancyReport};
pub use slicing::{Approach, Criterion, SliceOutcome, Slicer};
