//! Demand-driven, profile-limited GEN-KILL query propagation (§4.2).
//!
//! A query `<T, n>_d` asks: *does fact `d` hold immediately before each of
//! node `n`'s executions at timestamps `T`?* The engine propagates a
//! compacted timestamp vector backwards through the timestamp-annotated
//! dynamic CFG: at every step all traversal points decrement together
//! (one [`TsSet::shift`] per entry, not per timestamp), are routed to the
//! predecessors whose timestamp sets contain them, and are resolved where
//! the predecessor's `DGEN`/`DKILL` answers the query.
//!
//! Solving `<T(n), n>_d` yields the *frequency* with which `d` holds — the
//! paper's hot-data-flow-fact primitive for profile-guided optimization.

use twpp::gov::{Budget, StopReason};
use twpp::obs::Obs;
use twpp::TsSet;
use twpp_ir::Function;

use crate::dyncfg::{stmts_of_node, DynCfg};
use crate::facts::{effect_of_stmts, Effect, GenKillFact};

/// The resolution of a query, in the query's original timestamps.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QueryResult {
    /// Timestamps for which the fact holds on entry to the queried node.
    pub holds: TsSet,
    /// Timestamps for which it does not.
    pub not_holds: TsSet,
}

impl QueryResult {
    /// Fraction of queried executions for which the fact holds, in
    /// `[0, 1]`. Returns 1.0 for empty queries.
    pub fn frequency(&self) -> f64 {
        let h = self.holds.len() as f64;
        let n = h + self.not_holds.len() as f64;
        if n == 0.0 {
            1.0
        } else {
            h / n
        }
    }

    /// `true` if the fact holds for every queried execution.
    pub fn always_holds(&self) -> bool {
        self.not_holds.is_empty()
    }

    /// `true` if the fact holds for no queried execution.
    pub fn never_holds(&self) -> bool {
        self.holds.is_empty()
    }
}

/// The outcome of a governed query: either every queried timestamp was
/// resolved, or the budget ran out first and the answer covers only a
/// fraction of them.
///
/// A `Partial` answer is still *sound*: every timestamp in
/// `result.holds`/`result.not_holds` was fully propagated. The unresolved
/// timestamps are simply absent from both sets.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum QueryOutcome {
    /// Every queried timestamp was resolved.
    Complete(QueryResult),
    /// The budget stopped propagation before every timestamp resolved.
    Partial {
        /// The resolved portion of the answer (sound, possibly empty).
        result: QueryResult,
        /// Fraction of the queried timestamps that were resolved, in
        /// `[0, 1]`.
        coverage: f64,
        /// Worklist nodes visited before the stop.
        visited: u64,
        /// Why propagation stopped.
        reason: StopReason,
    },
}

impl QueryOutcome {
    /// The resolved portion of the answer, complete or not.
    pub fn result(&self) -> &QueryResult {
        match self {
            QueryOutcome::Complete(r) => r,
            QueryOutcome::Partial { result, .. } => result,
        }
    }

    /// Whether every queried timestamp was resolved.
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryOutcome::Complete(_))
    }

    /// Fraction of queried timestamps resolved (1.0 when complete).
    pub fn coverage(&self) -> f64 {
        match self {
            QueryOutcome::Complete(_) => 1.0,
            QueryOutcome::Partial { coverage, .. } => *coverage,
        }
    }
}

/// Solves the query `<ts, node>` for `fact` over one dynamic CFG.
///
/// `func` supplies the statements of the static blocks each dynamic node
/// expands to. Timestamps in `ts` that are not in `node`'s timestamp set
/// are ignored.
///
/// # Examples
///
/// Querying all executions of a node computes the *frequency* of a fact:
///
/// ```
/// use twpp_dataflow::{solve_backward, AvailableLoad};
/// use twpp_dataflow::dyncfg::DynCfg;
/// use twpp_dataflow::redundancy::loads_in;
/// use twpp_ir::Operand;
/// use twpp_lang::{compile_with_options, LowerOptions};
/// use twpp_tracer::{run_traced, ExecLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = compile_with_options(
///     "fn main() {
///          let a = load(7);
///          let b = load(7);  // always redundant
///          print(a + b);
///      }",
///     LowerOptions { stmt_per_block: true },
/// )?;
/// let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
/// let func = program.func(program.main());
/// let trace = wpp.scan_function(program.main()).remove(0);
/// let dcfg = DynCfg::from_block_sequence(&trace);
/// let (second_load, addr) = loads_in(&dcfg, func)[1];
/// let fact = AvailableLoad { addr };
/// let ts = dcfg.node(second_load).ts.clone();
/// let result = solve_backward(&dcfg, func, &fact, second_load, &ts);
/// assert!(result.always_holds());
/// # Ok(())
/// # }
/// ```
pub fn solve_backward<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
) -> QueryResult {
    match solve_backward_governed(dcfg, func, fact, node, ts, &Budget::unlimited()) {
        QueryOutcome::Complete(r) | QueryOutcome::Partial { result: r, .. } => r,
    }
}

/// Budget-governed variant of [`solve_backward`].
///
/// The budget is charged one step per worklist pop and checked at the
/// same cadence, so a deadline or step cap stops propagation within one
/// node visit. On a stop the already-resolved timestamps are returned as
/// [`QueryOutcome::Partial`]; coverage is deterministic for a given step
/// cap because the worklist order is deterministic.
pub fn solve_backward_governed<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
    budget: &Budget,
) -> QueryOutcome {
    solve_backward_observed(dcfg, func, fact, node, ts, budget, &Obs::noop())
}

/// Observed variant of [`solve_backward_governed`]: additionally records
/// the `twpp_dataflow_query_*` counters (queries issued, worklist nodes
/// visited, partial answers) into `obs`. The outcome is identical.
pub fn solve_backward_observed<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
    budget: &Budget,
    obs: &Obs,
) -> QueryOutcome {
    let effects = node_effects(dcfg, func, fact);
    let (outcome, visited) = solve_backward_effects_impl(dcfg, &effects, node, ts, budget);
    if obs.is_enabled() {
        obs.counter(
            "twpp_dataflow_query_total",
            "Backward GEN-KILL queries issued",
        )
        .inc();
        obs.counter(
            "twpp_dataflow_query_nodes_visited_total",
            "Worklist nodes visited by backward query propagation",
        )
        .add(visited);
        if !outcome.is_complete() {
            obs.counter(
                "twpp_dataflow_query_partial_total",
                "Backward queries stopped early by a budget",
            )
            .inc();
        }
    }
    outcome
}

/// Pre-computes each dynamic node's DGEN/DKILL summary for `fact` —
/// the per-node [`Effect`] vector the propagation engine consumes.
pub fn node_effects<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
) -> Vec<Effect> {
    dcfg.nodes()
        .iter()
        .map(|n| effect_of_stmts(fact, stmts_of_node(func, n)))
        .collect()
}

/// Core of [`solve_backward_governed`], parameterized by a per-node
/// [`Effect`] vector instead of IR — so a caller holding only archive
/// data (a fleet server answering block-level queries, where effects
/// come from block identities rather than statements) can run the same
/// engine. `effects[i]` is node `i`'s summary; its length must equal
/// `dcfg.nodes().len()`.
pub fn solve_backward_effects_governed(
    dcfg: &DynCfg,
    effects: &[Effect],
    node: usize,
    ts: &TsSet,
    budget: &Budget,
) -> QueryOutcome {
    assert_eq!(effects.len(), dcfg.nodes().len(), "one effect per dynamic node");
    solve_backward_effects_impl(dcfg, effects, node, ts, budget).0
}

fn solve_backward_effects_impl(
    dcfg: &DynCfg,
    effects: &[Effect],
    node: usize,
    ts: &TsSet,
    budget: &Budget,
) -> (QueryOutcome, u64) {
    let mut result = QueryResult::default();
    let initial = ts.intersect(&dcfg.node(node).ts);
    if initial.is_empty() {
        return (QueryOutcome::Complete(result), 0);
    }
    let total = initial.len() as f64;
    let mut visited: u64 = 0;
    // Worklist of propagation states: (node, positions, depth). A position
    // `v` at depth `k` stands for original query timestamp `v + k`.
    let mut work: Vec<(usize, TsSet, u32)> = vec![(node, initial, 0)];
    while let Some((n, positions, depth)) = work.pop() {
        if let Err(reason) = budget.charge_step() {
            let coverage =
                (result.holds.len() as f64 + result.not_holds.len() as f64) / total;
            return (
                QueryOutcome::Partial {
                    result,
                    coverage,
                    visited,
                    reason,
                },
                visited,
            );
        }
        visited += 1;
        let shifted = positions.shift(-1);
        // Positions that fell off the front of the trace reached the
        // function entry unresolved: the fact does not hold there.
        let mut routed = TsSet::new();
        for &m in dcfg.preds(n) {
            let to_m = shifted.intersect(&dcfg.node(m).ts);
            if to_m.is_empty() {
                continue;
            }
            routed = routed.union(&to_m);
            match effects[m] {
                Effect::Gen => {
                    result.holds = result.holds.union(&to_m.shift(i64::from(depth) + 1));
                }
                Effect::Kill => {
                    result.not_holds = result.not_holds.union(&to_m.shift(i64::from(depth) + 1));
                }
                Effect::Transparent => work.push((m, to_m, depth + 1)),
            }
        }
        let lost = shifted.subtract(&routed);
        if !lost.is_empty() {
            result.not_holds = result
                .not_holds
                .union(&lost.shift(i64::from(depth) + 1));
        }
        // Positions at timestamp 1 vanish in the shift: they are at the
        // very start of the trace, so nothing precedes them.
        let at_entry = positions.len() - shifted.len();
        if at_entry > 0 {
            if let Some(first) = positions.first() {
                debug_assert_eq!(first, 1);
                result.not_holds = result
                    .not_holds
                    .union(&TsSet::from_sorted(&[first + depth]));
            }
        }
    }
    (QueryOutcome::Complete(result), visited)
}

/// Naive oracle: answers the same query by replaying the full block
/// sequence (used to validate the propagation engine in tests and as the
/// baseline in the ablation benchmarks).
pub fn solve_by_replay<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
) -> QueryResult {
    match solve_by_replay_governed(dcfg, func, fact, node, ts, &Budget::unlimited()) {
        QueryOutcome::Complete(r) | QueryOutcome::Partial { result: r, .. } => r,
    }
}

/// Budget-governed variant of [`solve_by_replay`]: charges one step per
/// queried timestamp (each costs a full prefix replay) and stops between
/// timestamps when the budget runs out.
pub fn solve_by_replay_governed<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
    budget: &Budget,
) -> QueryOutcome {
    let effects = node_effects(dcfg, func, fact);
    solve_by_replay_effects_governed(dcfg, &effects, node, ts, budget)
}

/// Core of [`solve_by_replay_governed`], parameterized by a per-node
/// [`Effect`] vector — the replay oracle for effect-level queries, used
/// to validate [`solve_backward_effects_governed`] differentially.
pub fn solve_by_replay_effects_governed(
    dcfg: &DynCfg,
    effects: &[Effect],
    node: usize,
    ts: &TsSet,
    budget: &Budget,
) -> QueryOutcome {
    assert_eq!(effects.len(), dcfg.nodes().len(), "one effect per dynamic node");
    // Effect at each trace position.
    let len = dcfg.len();
    let mut effect_at = vec![Effect::Transparent; (len + 1) as usize];
    for (i, n) in dcfg.nodes().iter().enumerate() {
        let e = effects[i];
        for t in n.ts.iter() {
            effect_at[t as usize] = e;
        }
    }
    let mut result = QueryResult::default();
    let mut holds = Vec::new();
    let mut not_holds = Vec::new();
    let queried = ts.intersect(&dcfg.node(node).ts);
    let total = queried.len() as f64;
    let mut visited: u64 = 0;
    let mut stopped: Option<StopReason> = None;
    for t in queried.iter() {
        if let Err(reason) = budget.charge_step() {
            stopped = Some(reason);
            break;
        }
        visited += 1;
        let mut state = false;
        for v in 1..t {
            match effect_at[v as usize] {
                Effect::Gen => state = true,
                Effect::Kill => state = false,
                Effect::Transparent => {}
            }
        }
        if state {
            holds.push(t);
        } else {
            not_holds.push(t);
        }
    }
    result.holds = TsSet::from_sorted(&holds);
    result.not_holds = TsSet::from_sorted(&not_holds);
    match stopped {
        None => QueryOutcome::Complete(result),
        Some(reason) => {
            let coverage = if total == 0.0 {
                1.0
            } else {
                (result.holds.len() as f64 + result.not_holds.len() as f64) / total
            };
            QueryOutcome::Partial {
                result,
                coverage,
                visited,
                reason,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyncfg::DynCfg;
    use crate::facts::AvailableLoad;
    use twpp_ir::{
        single_function_program, Operand, Program, Rvalue, Stmt, Terminator,
    };

    /// A 4-block function: 1 loads addr, 2 is neutral, 3 stores elsewhere
    /// (kill), 4 loads addr again (the queried node).
    fn program() -> Program {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let v = fb.new_var();
            fb.push(b1, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
            fb.push(b2, Stmt::Print(Operand::Var(v)));
            fb.push(
                b3,
                Stmt::Store {
                    addr: Operand::Const(200),
                    value: Operand::Const(1),
                },
            );
            fb.push(b4, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
            let c = Operand::Const(1);
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: c,
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b2, Terminator::Jump(b4));
            fb.terminate(b3, Terminator::Jump(b4));
            fb.terminate(
                b4,
                Terminator::Branch {
                    cond: c,
                    then_dest: b1,
                    else_dest: b1,
                },
            );
        })
        .unwrap()
    }

    fn b(i: u32) -> twpp_ir::BlockId {
        twpp_ir::BlockId::new(i)
    }

    #[test]
    fn resolves_gen_and_kill_paths() {
        let p = program();
        let func = p.func(p.main());
        // Trace: 1.2.4 | 1.3.4 | 1.2.4 — block 4's loads at t=3,6,9.
        let seq = [1u32, 2, 4, 1, 3, 4, 1, 2, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n4, &dcfg.node(n4).ts);
        // t=3 and t=9 came via block 2 (transparent) from block 1 (gen);
        // t=6 came via block 3 (kill).
        assert_eq!(result.holds.to_vec(), vec![3, 9]);
        assert_eq!(result.not_holds.to_vec(), vec![6]);
        assert!((result.frequency() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn entry_positions_resolve_to_not_holds() {
        let p = program();
        let func = p.func(p.main());
        // Query block 1's first execution: nothing precedes it.
        let dcfg = DynCfg::from_block_sequence(&[b(1), b(2), b(4)]);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n1 = dcfg.node_by_head(b(1)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n1, &dcfg.node(n1).ts);
        assert!(result.holds.is_empty());
        assert_eq!(result.not_holds.to_vec(), vec![1]);
    }

    #[test]
    fn empty_query_frequency_is_one_not_nan() {
        // The divide-by-zero convention: a query over zero executions
        // vacuously holds — frequency 1.0, never NaN.
        let empty = QueryResult::default();
        assert_eq!(empty.frequency(), 1.0);
        assert!(!empty.frequency().is_nan());
        assert!(empty.always_holds());
        assert!(empty.never_holds());
        // Querying a node with an empty timestamp vector takes the same
        // path end to end.
        let p = program();
        let func = p.func(p.main());
        let dcfg = DynCfg::from_block_sequence(&[b(1), b(2), b(4)]);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::default());
        assert!(result.holds.is_empty());
        assert!(result.not_holds.is_empty());
        assert_eq!(result.frequency(), 1.0);
    }

    #[test]
    fn propagation_agrees_with_replay_oracle() {
        let p = program();
        let func = p.func(p.main());
        // A longer pseudo-random interleaving of the two loop paths.
        let mut seq = Vec::new();
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            seq.push(b(1));
            seq.push(if (x >> 33).is_multiple_of(3) { b(3) } else { b(2) });
            seq.push(b(4));
        }
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        for head in [1u32, 2, 3, 4] {
            let Some(n) = dcfg.node_by_head(b(head)) else {
                continue;
            };
            let fast = solve_backward(&dcfg, func, &fact, n, &dcfg.node(n).ts);
            let slow = solve_by_replay(&dcfg, func, &fact, n, &dcfg.node(n).ts);
            assert_eq!(fast, slow, "disagreement at block {head}");
        }
    }

    #[test]
    fn governed_complete_matches_ungoverned() {
        let p = program();
        let func = p.func(p.main());
        let seq = [1u32, 2, 4, 1, 3, 4, 1, 2, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let plain = solve_backward(&dcfg, func, &fact, n4, &dcfg.node(n4).ts);
        let governed = solve_backward_governed(
            &dcfg,
            func,
            &fact,
            n4,
            &dcfg.node(n4).ts,
            &Budget::unlimited(),
        );
        assert!(governed.is_complete());
        assert_eq!(governed.result(), &plain);
        assert_eq!(governed.coverage(), 1.0);
    }

    #[test]
    fn step_cap_yields_partial_with_monotone_coverage() {
        let p = program();
        let func = p.func(p.main());
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.extend([b(1), b(2), b(4)]);
        }
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let full = solve_backward(&dcfg, func, &fact, n4, &dcfg.node(n4).ts);
        let mut prev = -1.0f64;
        let mut saw_partial = false;
        for cap in [1u64, 2, 4, 8, 1_000_000] {
            let budget = twpp::gov::Limits::new().max_steps(cap).start();
            let out = solve_backward_governed(
                &dcfg,
                func,
                &fact,
                n4,
                &dcfg.node(n4).ts,
                &budget,
            );
            let cov = out.coverage();
            assert!(cov >= prev, "coverage must be monotone in the step cap");
            assert!((0.0..=1.0).contains(&cov));
            prev = cov;
            match &out {
                QueryOutcome::Complete(r) => assert_eq!(r, &full),
                QueryOutcome::Partial {
                    result,
                    visited,
                    reason,
                    ..
                } => {
                    saw_partial = true;
                    assert_eq!(*reason, StopReason::StepLimit);
                    assert!(*visited <= cap);
                    // Sound: resolved timestamps agree with the full answer.
                    assert_eq!(
                        result.holds.intersect(&full.holds).to_vec(),
                        result.holds.to_vec()
                    );
                    assert_eq!(
                        result.not_holds.intersect(&full.not_holds).to_vec(),
                        result.not_holds.to_vec()
                    );
                }
            }
        }
        assert!(saw_partial, "a 1-step cap must not complete this query");
        assert_eq!(prev, 1.0, "the generous cap must complete");
    }

    #[test]
    fn cancelled_budget_stops_replay_oracle() {
        let p = program();
        let func = p.func(p.main());
        let seq = [1u32, 2, 4, 1, 3, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let cancel = twpp::gov::CancelToken::new();
        cancel.cancel();
        let budget = twpp::gov::Limits::new().start_with_cancel(cancel);
        let out = solve_by_replay_governed(
            &dcfg,
            func,
            &fact,
            n4,
            &dcfg.node(n4).ts,
            &budget,
        );
        match out {
            QueryOutcome::Partial {
                reason, visited, ..
            } => {
                assert_eq!(reason, StopReason::Cancelled);
                assert_eq!(visited, 0);
            }
            QueryOutcome::Complete(_) => panic!("cancelled budget must not complete"),
        }
    }

    #[test]
    fn partial_timestamp_queries() {
        let p = program();
        let func = p.func(p.main());
        let seq = [1u32, 2, 4, 1, 3, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        // Only ask about the second execution (t=6).
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::from_sorted(&[6]));
        assert!(result.holds.is_empty());
        assert_eq!(result.not_holds.to_vec(), vec![6]);
        // Timestamps not belonging to the node are ignored.
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::from_sorted(&[5]));
        assert!(result.holds.is_empty() && result.not_holds.is_empty());
    }
}
