//! Demand-driven, profile-limited GEN-KILL query propagation (§4.2).
//!
//! A query `<T, n>_d` asks: *does fact `d` hold immediately before each of
//! node `n`'s executions at timestamps `T`?* The engine propagates a
//! compacted timestamp vector backwards through the timestamp-annotated
//! dynamic CFG: at every step all traversal points decrement together
//! (one [`TsSet::shift`] per entry, not per timestamp), are routed to the
//! predecessors whose timestamp sets contain them, and are resolved where
//! the predecessor's `DGEN`/`DKILL` answers the query.
//!
//! Solving `<T(n), n>_d` yields the *frequency* with which `d` holds — the
//! paper's hot-data-flow-fact primitive for profile-guided optimization.

use twpp::TsSet;
use twpp_ir::Function;

use crate::dyncfg::{stmts_of_node, DynCfg};
use crate::facts::{effect_of_stmts, Effect, GenKillFact};

/// The resolution of a query, in the query's original timestamps.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QueryResult {
    /// Timestamps for which the fact holds on entry to the queried node.
    pub holds: TsSet,
    /// Timestamps for which it does not.
    pub not_holds: TsSet,
}

impl QueryResult {
    /// Fraction of queried executions for which the fact holds, in
    /// `[0, 1]`. Returns 1.0 for empty queries.
    pub fn frequency(&self) -> f64 {
        let h = self.holds.len() as f64;
        let n = h + self.not_holds.len() as f64;
        if n == 0.0 {
            1.0
        } else {
            h / n
        }
    }

    /// `true` if the fact holds for every queried execution.
    pub fn always_holds(&self) -> bool {
        self.not_holds.is_empty()
    }

    /// `true` if the fact holds for no queried execution.
    pub fn never_holds(&self) -> bool {
        self.holds.is_empty()
    }
}

/// Solves the query `<ts, node>` for `fact` over one dynamic CFG.
///
/// `func` supplies the statements of the static blocks each dynamic node
/// expands to. Timestamps in `ts` that are not in `node`'s timestamp set
/// are ignored.
///
/// # Examples
///
/// Querying all executions of a node computes the *frequency* of a fact:
///
/// ```
/// use twpp_dataflow::{solve_backward, AvailableLoad};
/// use twpp_dataflow::dyncfg::DynCfg;
/// use twpp_dataflow::redundancy::loads_in;
/// use twpp_ir::Operand;
/// use twpp_lang::{compile_with_options, LowerOptions};
/// use twpp_tracer::{run_traced, ExecLimits};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = compile_with_options(
///     "fn main() {
///          let a = load(7);
///          let b = load(7);  // always redundant
///          print(a + b);
///      }",
///     LowerOptions { stmt_per_block: true },
/// )?;
/// let (_, wpp) = run_traced(&program, &[], ExecLimits::default())?;
/// let func = program.func(program.main());
/// let trace = wpp.scan_function(program.main()).remove(0);
/// let dcfg = DynCfg::from_block_sequence(&trace);
/// let (second_load, addr) = loads_in(&dcfg, func)[1];
/// let fact = AvailableLoad { addr };
/// let ts = dcfg.node(second_load).ts.clone();
/// let result = solve_backward(&dcfg, func, &fact, second_load, &ts);
/// assert!(result.always_holds());
/// # Ok(())
/// # }
/// ```
pub fn solve_backward<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
) -> QueryResult {
    // Pre-compute each node's DGEN/DKILL summary.
    let effects: Vec<Effect> = dcfg
        .nodes()
        .iter()
        .map(|n| effect_of_stmts(fact, stmts_of_node(func, n)))
        .collect();

    let mut result = QueryResult::default();
    let initial = ts.intersect(&dcfg.node(node).ts);
    if initial.is_empty() {
        return result;
    }
    // Worklist of propagation states: (node, positions, depth). A position
    // `v` at depth `k` stands for original query timestamp `v + k`.
    let mut work: Vec<(usize, TsSet, u32)> = vec![(node, initial, 0)];
    while let Some((n, positions, depth)) = work.pop() {
        let shifted = positions.shift(-1);
        // Positions that fell off the front of the trace reached the
        // function entry unresolved: the fact does not hold there.
        let mut routed = TsSet::new();
        for &m in dcfg.preds(n) {
            let to_m = shifted.intersect(&dcfg.node(m).ts);
            if to_m.is_empty() {
                continue;
            }
            routed = routed.union(&to_m);
            match effects[m] {
                Effect::Gen => {
                    result.holds = result.holds.union(&to_m.shift(i64::from(depth) + 1));
                }
                Effect::Kill => {
                    result.not_holds = result.not_holds.union(&to_m.shift(i64::from(depth) + 1));
                }
                Effect::Transparent => work.push((m, to_m, depth + 1)),
            }
        }
        let lost = shifted.subtract(&routed);
        if !lost.is_empty() {
            result.not_holds = result
                .not_holds
                .union(&lost.shift(i64::from(depth) + 1));
        }
        // Positions at timestamp 1 vanish in the shift: they are at the
        // very start of the trace, so nothing precedes them.
        let at_entry = positions.len() - shifted.len();
        if at_entry > 0 {
            if let Some(first) = positions.first() {
                debug_assert_eq!(first, 1);
                result.not_holds = result
                    .not_holds
                    .union(&TsSet::from_sorted(&[first + depth]));
            }
        }
    }
    result
}

/// Naive oracle: answers the same query by replaying the full block
/// sequence (used to validate the propagation engine in tests and as the
/// baseline in the ablation benchmarks).
pub fn solve_by_replay<F: GenKillFact + ?Sized>(
    dcfg: &DynCfg,
    func: &Function,
    fact: &F,
    node: usize,
    ts: &TsSet,
) -> QueryResult {
    // Effect at each trace position.
    let len = dcfg.len();
    let mut effect_at = vec![Effect::Transparent; (len + 1) as usize];
    for (i, n) in dcfg.nodes().iter().enumerate() {
        let e = effect_of_stmts(fact, stmts_of_node(func, dcfg.node(i)));
        for t in n.ts.iter() {
            effect_at[t as usize] = e;
        }
    }
    let mut result = QueryResult::default();
    let mut holds = Vec::new();
    let mut not_holds = Vec::new();
    for t in ts.intersect(&dcfg.node(node).ts).iter() {
        let mut state = false;
        for v in 1..t {
            match effect_at[v as usize] {
                Effect::Gen => state = true,
                Effect::Kill => state = false,
                Effect::Transparent => {}
            }
        }
        if state {
            holds.push(t);
        } else {
            not_holds.push(t);
        }
    }
    result.holds = TsSet::from_sorted(&holds);
    result.not_holds = TsSet::from_sorted(&not_holds);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyncfg::DynCfg;
    use crate::facts::AvailableLoad;
    use twpp_ir::{
        single_function_program, Operand, Program, Rvalue, Stmt, Terminator,
    };

    /// A 4-block function: 1 loads addr, 2 is neutral, 3 stores elsewhere
    /// (kill), 4 loads addr again (the queried node).
    fn program() -> Program {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let v = fb.new_var();
            fb.push(b1, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
            fb.push(b2, Stmt::Print(Operand::Var(v)));
            fb.push(
                b3,
                Stmt::Store {
                    addr: Operand::Const(200),
                    value: Operand::Const(1),
                },
            );
            fb.push(b4, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
            let c = Operand::Const(1);
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: c,
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b2, Terminator::Jump(b4));
            fb.terminate(b3, Terminator::Jump(b4));
            fb.terminate(
                b4,
                Terminator::Branch {
                    cond: c,
                    then_dest: b1,
                    else_dest: b1,
                },
            );
        })
        .unwrap()
    }

    fn b(i: u32) -> twpp_ir::BlockId {
        twpp_ir::BlockId::new(i)
    }

    #[test]
    fn resolves_gen_and_kill_paths() {
        let p = program();
        let func = p.func(p.main());
        // Trace: 1.2.4 | 1.3.4 | 1.2.4 — block 4's loads at t=3,6,9.
        let seq = [1u32, 2, 4, 1, 3, 4, 1, 2, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n4, &dcfg.node(n4).ts);
        // t=3 and t=9 came via block 2 (transparent) from block 1 (gen);
        // t=6 came via block 3 (kill).
        assert_eq!(result.holds.to_vec(), vec![3, 9]);
        assert_eq!(result.not_holds.to_vec(), vec![6]);
        assert!((result.frequency() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn entry_positions_resolve_to_not_holds() {
        let p = program();
        let func = p.func(p.main());
        // Query block 1's first execution: nothing precedes it.
        let dcfg = DynCfg::from_block_sequence(&[b(1), b(2), b(4)]);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n1 = dcfg.node_by_head(b(1)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n1, &dcfg.node(n1).ts);
        assert!(result.holds.is_empty());
        assert_eq!(result.not_holds.to_vec(), vec![1]);
    }

    #[test]
    fn empty_query_frequency_is_one_not_nan() {
        // The divide-by-zero convention: a query over zero executions
        // vacuously holds — frequency 1.0, never NaN.
        let empty = QueryResult::default();
        assert_eq!(empty.frequency(), 1.0);
        assert!(!empty.frequency().is_nan());
        assert!(empty.always_holds());
        assert!(empty.never_holds());
        // Querying a node with an empty timestamp vector takes the same
        // path end to end.
        let p = program();
        let func = p.func(p.main());
        let dcfg = DynCfg::from_block_sequence(&[b(1), b(2), b(4)]);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::default());
        assert!(result.holds.is_empty());
        assert!(result.not_holds.is_empty());
        assert_eq!(result.frequency(), 1.0);
    }

    #[test]
    fn propagation_agrees_with_replay_oracle() {
        let p = program();
        let func = p.func(p.main());
        // A longer pseudo-random interleaving of the two loop paths.
        let mut seq = Vec::new();
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            seq.push(b(1));
            seq.push(if (x >> 33).is_multiple_of(3) { b(3) } else { b(2) });
            seq.push(b(4));
        }
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        for head in [1u32, 2, 3, 4] {
            let Some(n) = dcfg.node_by_head(b(head)) else {
                continue;
            };
            let fast = solve_backward(&dcfg, func, &fact, n, &dcfg.node(n).ts);
            let slow = solve_by_replay(&dcfg, func, &fact, n, &dcfg.node(n).ts);
            assert_eq!(fast, slow, "disagreement at block {head}");
        }
    }

    #[test]
    fn partial_timestamp_queries() {
        let p = program();
        let func = p.func(p.main());
        let seq = [1u32, 2, 4, 1, 3, 4].map(b);
        let dcfg = DynCfg::from_block_sequence(&seq);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let n4 = dcfg.node_by_head(b(4)).unwrap();
        // Only ask about the second execution (t=6).
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::from_sorted(&[6]));
        assert!(result.holds.is_empty());
        assert_eq!(result.not_holds.to_vec(), vec![6]);
        // Timestamps not belonging to the node are ignored.
        let result = solve_backward(&dcfg, func, &fact, n4, &TsSet::from_sorted(&[5]));
        assert!(result.holds.is_empty() && result.not_holds.is_empty());
    }
}
