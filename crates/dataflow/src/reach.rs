//! Block-level backward analyses over the dynamic CFG *alone* — the
//! request semantics a fleet server can answer from archive data,
//! where no IR (and therefore no statement-level GEN/KILL) exists.
//!
//! Two primitives:
//!
//! * [`backward_reach_governed`] — the backward closure over dynamic
//!   CFG edges from a criterion node: every dynamic node whose
//!   execution can precede the criterion along observed edges. This is
//!   the block-level dynamic slice of §5 restricted to what the
//!   compacted trace itself proves; it needs no statements.
//! * [`block_effects`] — a per-node [`Effect`] vector derived from
//!   block *identities* (a definition block GENs, redefinition blocks
//!   KILL, everything else is transparent), which feeds the ordinary
//!   propagation engine ([`solve_backward_effects_governed`]) to answer
//!   block-level currency questions: which executions of a use block
//!   see the definition un-clobbered.
//!
//! Both are governed: a budget stop yields a *sound prefix* of the
//! deterministic traversal, so coverage is monotone in the step cap.
//!
//! [`solve_backward_effects_governed`]: crate::query::solve_backward_effects_governed

use std::collections::VecDeque;

use twpp::gov::{Budget, StopReason};
use twpp_ir::BlockId;

use crate::dyncfg::DynCfg;
use crate::facts::Effect;

/// The governed outcome of a backward reachability closure.
#[derive(Clone, PartialEq, Debug)]
pub struct ReachOutcome {
    /// Visited dynamic-node indices, in deterministic BFS order. A
    /// partial outcome's list is a *prefix* of the complete one.
    pub nodes: Vec<usize>,
    /// The expanded static blocks of every visited node, sorted and
    /// deduplicated — the block-level slice.
    pub blocks: Vec<BlockId>,
    /// Whether the closure ran to fixpoint.
    pub complete: bool,
    /// Visited nodes over the CFG's node count (`1.0` when complete).
    pub coverage: f64,
    /// Worklist nodes visited.
    pub visited: u64,
    /// Why traversal stopped, when partial.
    pub reason: Option<StopReason>,
}

/// Backward closure over dynamic CFG edges from `criterion`, charging
/// one budget step per visited node. Traversal is breadth-first with
/// predecessors in stored order, so the visit sequence is deterministic
/// and a budget stop truncates it to a prefix: partial answers are
/// always subsets of the complete one and coverage is monotone in the
/// step cap.
pub fn backward_reach_governed(dcfg: &DynCfg, criterion: usize, budget: &Budget) -> ReachOutcome {
    let n = dcfg.node_count();
    assert!(criterion < n, "criterion node out of range");
    let mut seen = vec![false; n];
    let mut order: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    seen[criterion] = true;
    queue.push_back(criterion);
    let mut visited = 0u64;
    let mut reason = None;
    while let Some(i) = queue.pop_front() {
        if let Err(r) = budget.charge_step() {
            reason = Some(r);
            break;
        }
        visited += 1;
        order.push(i);
        for &p in dcfg.preds(i) {
            if !seen[p] {
                seen[p] = true;
                queue.push_back(p);
            }
        }
    }
    let complete = reason.is_none();
    let mut blocks: Vec<BlockId> = order
        .iter()
        .flat_map(|&i| dcfg.node(i).blocks.iter().copied())
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    let coverage = if complete {
        1.0
    } else if n == 0 {
        0.0
    } else {
        order.len() as f64 / n as f64
    };
    ReachOutcome {
        nodes: order,
        blocks,
        complete,
        coverage,
        visited,
        reason,
    }
}

/// Derives a per-node [`Effect`] vector from block identities: the node
/// headed by `def` GENs the tracked value, nodes headed by any of
/// `redefs` KILL it, everything else is transparent. `def` wins when it
/// also appears in `redefs` (a redefinition *is* a definition). The
/// vector plugs straight into
/// [`solve_backward_effects_governed`](crate::query::solve_backward_effects_governed).
pub fn block_effects(dcfg: &DynCfg, def: BlockId, redefs: &[BlockId]) -> Vec<Effect> {
    dcfg.nodes()
        .iter()
        .map(|node| {
            if node.head == def {
                Effect::Gen
            } else if redefs.contains(&node.head) {
                Effect::Kill
            } else {
                Effect::Transparent
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{
        solve_backward_effects_governed, solve_by_replay_effects_governed, QueryOutcome,
    };
    use twpp::gov::Limits;

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    /// Two interleaved loop paths: 1.2.4 and 1.3.4, fifty rounds.
    fn dcfg() -> DynCfg {
        let mut seq = Vec::new();
        let mut x = 5u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            seq.push(b(1));
            seq.push(if (x >> 33).is_multiple_of(3) { b(3) } else { b(2) });
            seq.push(b(4));
        }
        DynCfg::from_block_sequence(&seq)
    }

    #[test]
    fn closure_reaches_all_loop_blocks() {
        let g = dcfg();
        let n4 = g.node_by_head(b(4)).unwrap();
        let out = backward_reach_governed(&g, n4, &Budget::unlimited());
        assert!(out.complete);
        assert_eq!(out.coverage, 1.0);
        assert_eq!(out.blocks, vec![b(1), b(2), b(3), b(4)]);
    }

    #[test]
    fn partial_closure_is_a_prefix_and_coverage_monotone() {
        let g = dcfg();
        let n4 = g.node_by_head(b(4)).unwrap();
        let full = backward_reach_governed(&g, n4, &Budget::unlimited());
        let mut prev = -1.0f64;
        for cap in 1..=full.nodes.len() as u64 + 1 {
            let budget = Limits::new().max_steps(cap).start();
            let out = backward_reach_governed(&g, n4, &budget);
            assert!(out.coverage >= prev, "coverage monotone in the cap");
            prev = out.coverage;
            assert_eq!(
                out.nodes,
                full.nodes[..out.nodes.len()],
                "partial visit order must be a prefix of the complete one"
            );
            assert!(out.blocks.iter().all(|blk| full.blocks.contains(blk)));
            if out.complete {
                assert_eq!(out, full);
            } else {
                assert_eq!(out.reason, Some(StopReason::StepLimit));
            }
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn block_effects_feed_the_engine_and_agree_with_replay() {
        let g = dcfg();
        // Definition in block 1, clobbered by block 3, observed at 4.
        let effects = block_effects(&g, b(1), &[b(3)]);
        let n4 = g.node_by_head(b(4)).unwrap();
        let ts = g.node(n4).ts.clone();
        let fast = solve_backward_effects_governed(&g, &effects, n4, &ts, &Budget::unlimited());
        let slow = solve_by_replay_effects_governed(&g, &effects, n4, &ts, &Budget::unlimited());
        assert!(fast.is_complete() && slow.is_complete());
        assert_eq!(fast.result(), slow.result());
        // Every queried execution resolves one way or the other.
        let r = fast.result();
        assert_eq!(
            r.holds.len() + r.not_holds.len(),
            ts.len(),
            "every execution of the use must resolve"
        );
        // Block 3 kills: some executions must see a clobbered value in
        // this interleaving, and some a current one.
        assert!(!r.holds.is_empty() && !r.not_holds.is_empty());
    }

    #[test]
    fn def_wins_over_redef_on_the_same_block() {
        let g = dcfg();
        let e = block_effects(&g, b(1), &[b(1), b(3)]);
        let n1 = g.node_by_head(b(1)).unwrap();
        assert_eq!(e[n1], Effect::Gen);
    }

    #[test]
    fn governed_currency_partial_is_sound() {
        let g = dcfg();
        let effects = block_effects(&g, b(1), &[b(3)]);
        let n4 = g.node_by_head(b(4)).unwrap();
        let ts = g.node(n4).ts.clone();
        let full = solve_backward_effects_governed(&g, &effects, n4, &ts, &Budget::unlimited());
        // One worklist pop resolves only the kill-side predecessors;
        // the transparent chain to the Gen node needs a second pop.
        let budget = Limits::new().max_steps(1).start();
        match solve_backward_effects_governed(&g, &effects, n4, &ts, &budget) {
            QueryOutcome::Partial { result, coverage, .. } => {
                assert!((0.0..1.0).contains(&coverage));
                let fr = full.result();
                assert_eq!(
                    result.holds.intersect(&fr.holds).to_vec(),
                    result.holds.to_vec()
                );
                assert_eq!(
                    result.not_holds.intersect(&fr.not_holds).to_vec(),
                    result.not_holds.to_vec()
                );
            }
            QueryOutcome::Complete(_) => panic!("1 step must not complete this query"),
        }
    }
}
