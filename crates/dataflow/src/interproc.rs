//! Interprocedural call effects: the paper's `GEN_f` / `KILL_f` summaries
//! (§4.2).
//!
//! When a queried path trace contains a call, the paper "examines the
//! traces for calls made by the node's instances" to decide whether the
//! call generates or kills the fact. This module derives such summaries
//! from a compacted TWPP: for each function, every unique trace is
//! replayed (transitively through its own calls) and the net effect on
//! the fact is computed. If all unique traces agree, the call has that
//! effect; if they disagree, the summary is conservatively
//! [`Effect::Kill`] — safe for *must-hold* queries, where an uncertain
//! call must not be treated as preserving the fact.

use std::collections::HashMap;

use twpp::gov::{Budget, StopReason};
use twpp::pipeline::CompactedTwpp;
use twpp_ir::{FuncId, Program, Stmt};

use crate::facts::{Effect, GenKillFact};

/// Per-callee effect summaries derived from a compacted TWPP.
#[derive(Clone, Debug)]
pub struct CallSummaries {
    effects: HashMap<FuncId, Effect>,
}

impl CallSummaries {
    /// Computes summaries for `fact` over every function in the compacted
    /// TWPP. Functions absent from the trace get [`Effect::Transparent`]
    /// (they were never called, so the question never arises).
    pub fn compute<F: GenKillFact + ?Sized>(
        program: &Program,
        compacted: &CompactedTwpp,
        fact: &F,
    ) -> CallSummaries {
        match Self::compute_governed(program, compacted, fact, &Budget::unlimited()) {
            Ok(s) => s,
            Err(reason) => unreachable!("unlimited budget stopped: {reason}"),
        }
    }

    /// Budget-governed variant of [`CallSummaries::compute`].
    ///
    /// Charges one step per (round, function, unique trace) replay. A
    /// half-converged fixed point would *under*-approximate kill effects
    /// — unsound for must-hold queries — so budget exhaustion here is a
    /// hard stop, never a partial summary.
    pub fn compute_governed<F: GenKillFact + ?Sized>(
        program: &Program,
        compacted: &CompactedTwpp,
        fact: &F,
        budget: &Budget,
    ) -> Result<CallSummaries, StopReason> {
        Self::compute_observed(program, compacted, fact, budget, &twpp::obs::Obs::noop())
    }

    /// Observed variant of [`CallSummaries::compute_governed`]:
    /// additionally records the `twpp_dataflow_interproc_*` counters —
    /// trace replays performed, fixed-point rounds run, and summary
    /// reuses (call sites answered from an already-computed callee
    /// summary instead of a fresh replay). The summaries are identical.
    pub fn compute_observed<F: GenKillFact + ?Sized>(
        program: &Program,
        compacted: &CompactedTwpp,
        fact: &F,
        budget: &Budget,
        obs: &twpp::obs::Obs,
    ) -> Result<CallSummaries, StopReason> {
        let replays = obs.counter(
            "twpp_dataflow_interproc_replays_total",
            "Unique-trace replays performed by the call-summary fixed point",
        );
        let reused = obs.counter(
            "twpp_dataflow_interproc_summaries_reused_total",
            "Call sites answered from an existing callee summary",
        );
        let rounds_counter = obs.counter(
            "twpp_dataflow_interproc_rounds_total",
            "Fixed-point rounds run by the call-summary computation",
        );
        let mut summaries = CallSummaries {
            effects: HashMap::new(),
        };
        // Iterate to a fixed point: effects of callees feed into callers.
        // Seed everything as Transparent, then recompute until stable;
        // the call graph may be cyclic (recursion), so bound iterations.
        for fb in &compacted.functions {
            summaries.effects.insert(fb.func, Effect::Transparent);
        }
        let max_rounds = compacted.functions.len() + 2;
        for _ in 0..max_rounds {
            rounds_counter.inc();
            let mut changed = false;
            for fb in &compacted.functions {
                let mut agreed: Option<Effect> = None;
                let mut mixed = false;
                for trace in fb.expanded_traces() {
                    budget.charge_step()?;
                    replays.inc();
                    let e = summaries.trace_effect(
                        program,
                        fb.func,
                        trace.blocks(),
                        fact,
                        &reused,
                    );
                    match agreed {
                        None => agreed = Some(e),
                        Some(prev) if prev == e => {}
                        Some(_) => {
                            mixed = true;
                            break;
                        }
                    }
                }
                let effect = if mixed {
                    // Disagreeing traces: conservatively killing.
                    Effect::Kill
                } else {
                    agreed.unwrap_or(Effect::Transparent)
                };
                if summaries.effects.get(&fb.func) != Some(&effect) {
                    summaries.effects.insert(fb.func, effect);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(summaries)
    }

    fn trace_effect<F: GenKillFact + ?Sized>(
        &self,
        program: &Program,
        func: FuncId,
        blocks: &[twpp_ir::BlockId],
        fact: &F,
        reused: &twpp::obs::Counter,
    ) -> Effect {
        let function = program.func(func);
        let mut acc = Effect::Transparent;
        for &b in blocks {
            for stmt in function.block(b).stmts() {
                if let Some(callee) = stmt.callee() {
                    // Every call site is answered from the summary table
                    // rather than a nested replay — the reuse that makes
                    // the fixed point tractable.
                    reused.inc();
                    match self.effect_of(callee) {
                        Effect::Transparent => {}
                        e => acc = e,
                    }
                }
                match fact.effect_of(stmt) {
                    Effect::Transparent => {}
                    e => acc = e,
                }
            }
        }
        acc
    }

    /// The summarized effect of calling `callee`.
    pub fn effect_of(&self, callee: FuncId) -> Effect {
        self.effects
            .get(&callee)
            .copied()
            .unwrap_or(Effect::Transparent)
    }
}

/// Wraps a fact with call summaries so the query engine accounts for call
/// statements inside the analyzed traces.
#[derive(Clone, Debug)]
pub struct WithCallEffects<'a, F: ?Sized> {
    fact: &'a F,
    summaries: &'a CallSummaries,
}

impl<'a, F: GenKillFact + ?Sized> WithCallEffects<'a, F> {
    /// Combines `fact` with `summaries`.
    pub fn new(fact: &'a F, summaries: &'a CallSummaries) -> WithCallEffects<'a, F> {
        WithCallEffects { fact, summaries }
    }
}

impl<F: GenKillFact + ?Sized> GenKillFact for WithCallEffects<'_, F> {
    fn effect_of(&self, stmt: &Stmt) -> Effect {
        self.fact.effect_of(stmt)
    }

    fn effect_of_call(&self, callee: FuncId) -> Effect {
        self.summaries.effect_of(callee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyncfg::DynCfg;
    use crate::facts::AvailableLoad;
    use crate::query::solve_backward;
    use twpp::compact;
    use twpp_ir::Operand;
    use twpp_lang::{compile_with_options, LowerOptions};
    use twpp_tracer::{run_traced, ExecLimits};

    /// A callee that stores to a different address kills availability of
    /// address 100 across the call.
    const SRC: &str = "
        fn clobber() { store(200, 1); }
        fn harmless() { print(7); }
        fn refresh() { store(100, 5); }
        fn main() {
            let a = load(100);
            clobber();
            let b = load(100);
            harmless();
            let c = load(100);
            refresh();
            let d = load(100);
            print(a + b + c + d);
        }";

    fn setup() -> (
        twpp_ir::Program,
        twpp::pipeline::CompactedTwpp,
        Vec<twpp_ir::BlockId>,
    ) {
        let program = compile_with_options(
            SRC,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).unwrap();
        let compacted = compact(&wpp).unwrap();
        let trace = wpp.scan_function(program.main()).remove(0);
        (program, compacted, trace)
    }

    #[test]
    fn summaries_classify_callees() {
        let (program, compacted, _) = setup();
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let summaries = CallSummaries::compute(&program, &compacted, &fact);
        let id = |name: &str| program.func_by_name(name).unwrap().0;
        assert_eq!(summaries.effect_of(id("clobber")), Effect::Kill);
        assert_eq!(summaries.effect_of(id("harmless")), Effect::Transparent);
        assert_eq!(summaries.effect_of(id("refresh")), Effect::Gen);
    }

    #[test]
    fn queries_respect_call_effects() {
        let (program, compacted, trace) = setup();
        let main_func = program.func(program.main());
        let dcfg = DynCfg::from_block_sequence(&trace);
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let summaries = CallSummaries::compute(&program, &compacted, &fact);
        let with_calls = WithCallEffects::new(&fact, &summaries);

        // Collect the four loads in execution order.
        let loads = crate::redundancy::loads_in(&dcfg, main_func);
        assert_eq!(loads.len(), 4);
        let verdicts: Vec<bool> = loads
            .iter()
            .map(|&(n, _)| {
                let ts = dcfg.node(n).ts.clone();
                solve_backward(&dcfg, main_func, &with_calls, n, &ts).always_holds()
            })
            .collect();
        // load a: nothing before it -> not redundant.
        // load b: preceded by clobber() -> killed.
        // load c: preceded by load b and harmless() -> redundant.
        // load d: preceded by refresh() storing to 100 -> redundant.
        assert_eq!(verdicts, vec![false, false, true, true]);

        // Without call effects, load b is (wrongly) classified redundant.
        let (n_b, _) = loads[1];
        let naive = solve_backward(&dcfg, main_func, &fact, n_b, &dcfg.node(n_b).ts);
        assert!(naive.always_holds());
    }

    #[test]
    fn governed_summaries_stop_hard_on_budget() {
        let (program, compacted, _) = setup();
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        // A tiny step cap is a hard stop: no partial summary escapes.
        let budget = twpp::gov::Limits::new().max_steps(1).start();
        let stopped = CallSummaries::compute_governed(&program, &compacted, &fact, &budget);
        assert!(matches!(stopped, Err(twpp::StopReason::StepLimit)));
        // An unlimited governed run agrees with the ungoverned wrapper.
        let governed = CallSummaries::compute_governed(
            &program,
            &compacted,
            &fact,
            &twpp::Budget::unlimited(),
        )
        .unwrap();
        let plain = CallSummaries::compute(&program, &compacted, &fact);
        for fb in &compacted.functions {
            assert_eq!(governed.effect_of(fb.func), plain.effect_of(fb.func));
        }
    }

    #[test]
    fn recursive_programs_reach_a_fixed_point() {
        let src = "
            fn rec(n) { if (n > 0) { store(200, n); rec(n - 1); } }
            fn main() { let a = load(100); rec(3); let b = load(100); print(a + b); }";
        let program = compile_with_options(
            src,
            LowerOptions {
                stmt_per_block: true,
            },
        )
        .unwrap();
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).unwrap();
        let compacted = compact(&wpp).unwrap();
        let fact = AvailableLoad {
            addr: Operand::Const(100),
        };
        let summaries = CallSummaries::compute(&program, &compacted, &fact);
        let id = |name: &str| program.func_by_name(name).unwrap().0;
        // rec stores to 200 on its non-base path: mixed traces -> Kill.
        assert_eq!(summaries.effect_of(id("rec")), Effect::Kill);
    }
}
