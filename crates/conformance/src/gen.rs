//! Deterministic, seedable case generators shared by the differential
//! engine, the metamorphic battery, property tests, fuzzers and benches.
//!
//! Every generator is a pure function of its seed: the same
//! [`ShapeConfig`] and seed always produce the same case, on every
//! platform and at every worker-thread count. Shape knobs control the
//! structural properties that stress specific pipeline stages:
//!
//! * **loop depth / iteration counts** stress arithmetic-series
//!   compaction ([`twpp::tsset`]) and DBB folding;
//! * **call fan-out / depth** stress partitioning and the DCG;
//! * **path diversity** (how many distinct bodies a function executes)
//!   stresses redundant-trace elimination;
//! * **truncation** exercises the open-activation closing path.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use twpp_ir::{BlockId, FuncId};
use twpp_tracer::WppEvent;

/// Shape knobs for WPP event-stream generation.
#[derive(Clone, Debug)]
pub struct ShapeConfig {
    /// Soft cap on the number of generated events per case.
    pub max_events: usize,
    /// Number of distinct functions (`fn0` is always the root).
    pub n_funcs: usize,
    /// Maximum dynamic call nesting depth.
    pub max_call_depth: usize,
    /// Maximum static loop nesting depth within one body.
    pub max_loop_depth: usize,
    /// Maximum iteration count of a generated loop.
    pub max_loop_iters: usize,
    /// Number of distinct bodies ("paths") each function chooses from;
    /// higher diversity means fewer redundant traces.
    pub path_diversity: usize,
    /// Largest block id a body may contain.
    pub block_universe: u32,
    /// Probability that a body segment is a call rather than blocks.
    pub call_prob: f64,
    /// Probability that a generated stream is truncated mid-activation.
    pub truncate_prob: f64,
}

impl Default for ShapeConfig {
    fn default() -> ShapeConfig {
        ShapeConfig {
            max_events: 2_000,
            n_funcs: 5,
            max_call_depth: 6,
            max_loop_depth: 3,
            max_loop_iters: 9,
            path_diversity: 3,
            block_universe: 12,
            call_prob: 0.3,
            truncate_prob: 0.08,
        }
    }
}

impl ShapeConfig {
    /// A small shape for quick smoke batteries.
    pub fn small() -> ShapeConfig {
        ShapeConfig {
            max_events: 300,
            n_funcs: 3,
            max_call_depth: 4,
            max_loop_depth: 2,
            max_loop_iters: 5,
            path_diversity: 2,
            block_universe: 8,
            ..ShapeConfig::default()
        }
    }

    /// Caps the event budget, keeping every other knob.
    pub fn with_max_events(mut self, max_events: usize) -> ShapeConfig {
        self.max_events = max_events.max(4);
        self
    }
}

/// One item of a function body: a straight block or a call site.
#[derive(Clone, Debug)]
enum BodyItem {
    Block(u32),
    Call(usize),
}

/// Derives the sub-seed for case `index` of a run keyed by `seed`.
///
/// Splitmix-style mixing keeps neighbouring case streams decorrelated
/// while staying a pure function of `(seed, index)`.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic WPP event-stream generator.
pub struct CaseGen {
    cfg: ShapeConfig,
    rng: ChaCha8Rng,
}

impl CaseGen {
    /// Creates a generator for one case.
    pub fn new(cfg: ShapeConfig, seed: u64) -> CaseGen {
        CaseGen {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Generates a well-formed WPP event stream (possibly truncated
    /// mid-activation, which [`twpp::partition`] accepts by design).
    pub fn events(&mut self) -> Vec<WppEvent> {
        let bodies = self.gen_bodies();
        let mut events = Vec::new();
        self.emit(0, 0, &bodies, &mut events);
        if self.rng.gen_bool(self.cfg.truncate_prob) && events.len() > 4 {
            // Cut somewhere after the root Enter; any prefix of a valid
            // stream is a valid truncated stream.
            let cut = self.rng.gen_range(2..events.len());
            events.truncate(cut);
        }
        events
    }

    /// Per-function body variants: `path_diversity` alternatives each.
    fn gen_bodies(&mut self) -> Vec<Vec<Vec<BodyItem>>> {
        let n_funcs = self.cfg.n_funcs.max(1);
        let diversity = self.cfg.path_diversity.max(1);
        (0..n_funcs)
            .map(|f| {
                (0..diversity)
                    .map(|_| self.gen_body(f, n_funcs, self.cfg.max_loop_depth))
                    .collect()
            })
            .collect()
    }

    /// One body: a sequence of straight runs, loops and call sites.
    fn gen_body(&mut self, func: usize, n_funcs: usize, loop_depth: usize) -> Vec<BodyItem> {
        let mut items = Vec::new();
        let universe = self.cfg.block_universe.max(2);
        // Entry block first, like real lowered code.
        items.push(BodyItem::Block(1));
        let segments = self.rng.gen_range(1..=4);
        for _ in 0..segments {
            if self.rng.gen_bool(self.cfg.call_prob) && n_funcs > 1 {
                // Call a different function where possible (recursion is
                // still allowed occasionally: depth limits bound it).
                let callee = self.rng.gen_range(0..n_funcs);
                if callee != func || self.rng.gen_bool(0.25) {
                    items.push(BodyItem::Call(callee));
                    continue;
                }
            }
            if loop_depth > 0 && self.rng.gen_bool(0.5) {
                // A loop: its body repeats, producing the arithmetic
                // timestamp series the TWPP form compacts.
                let iters = self.rng.gen_range(2..=self.cfg.max_loop_iters.max(2));
                let body = self.gen_body(func, n_funcs, loop_depth - 1);
                for _ in 0..iters {
                    items.extend(body.iter().cloned());
                }
            } else {
                let run = self.rng.gen_range(1..=5);
                for _ in 0..run {
                    items.push(BodyItem::Block(self.rng.gen_range(1..=universe)));
                }
            }
        }
        items
    }

    /// Emits one activation of `func` (Enter, body, Exit) respecting the
    /// event budget and the call-depth cap.
    fn emit(
        &mut self,
        func: usize,
        depth: usize,
        bodies: &[Vec<Vec<BodyItem>>],
        events: &mut Vec<WppEvent>,
    ) {
        events.push(WppEvent::Enter(FuncId::from_index(func)));
        // Zipf-ish body choice: variant 0 dominates, producing the
        // redundant traces the dedup stage exists for.
        let variants = &bodies[func];
        let k = if self.rng.gen_bool(0.55) {
            0
        } else {
            self.rng.gen_range(0..variants.len())
        };
        // Clone the chosen body so `self` stays borrowable for recursion.
        let body = variants[k].clone();
        for item in body {
            if events.len() >= self.cfg.max_events {
                break;
            }
            match item {
                BodyItem::Block(b) => events.push(WppEvent::Block(BlockId::new(b))),
                BodyItem::Call(callee) => {
                    if depth + 1 < self.cfg.max_call_depth
                        && events.len() + 2 < self.cfg.max_events
                    {
                        self.emit(callee, depth + 1, bodies, events);
                    }
                }
            }
        }
        events.push(WppEvent::Exit);
    }
}

/// Generates a strictly increasing, 1-based timestamp vector mixing
/// random points, contiguous ranges and arithmetic series — the input
/// family [`twpp::tsset::TsSet::from_sorted`] compacts. With
/// `straddle_sign_bit`, values cluster around `i32::MAX` so the sign-bit
/// framing of the wire format is exercised on both sides.
pub fn gen_sorted_timestamps(
    rng: &mut ChaCha8Rng,
    max_len: usize,
    max_value: u32,
    straddle_sign_bit: bool,
) -> Vec<u32> {
    let target = rng.gen_range(0..=max_len.max(1));
    let mut values: Vec<u32> = Vec::with_capacity(target);
    let base_cap = if straddle_sign_bit {
        u32::MAX
    } else {
        max_value.max(4)
    };
    let mut cursor: u64 = if straddle_sign_bit {
        // Start below the sign boundary so runs cross it.
        u64::from(i32::MAX as u32) - rng.gen_range(0..64u64)
    } else {
        rng.gen_range(1..=8)
    };
    while values.len() < target && cursor <= u64::from(base_cap) {
        match rng.gen_range(0..3) {
            0 => {
                // A lone point, then a random gap.
                values.push(cursor as u32);
                cursor += rng.gen_range(1..=16u64);
            }
            1 => {
                // A contiguous range.
                let len = rng.gen_range(2..=8);
                for _ in 0..len {
                    if values.len() >= target || cursor > u64::from(base_cap) {
                        break;
                    }
                    values.push(cursor as u32);
                    cursor += 1;
                }
                cursor += rng.gen_range(1..=9u64);
            }
            _ => {
                // An arithmetic series with a step > 1.
                let step = rng.gen_range(2..=7u64);
                let len = rng.gen_range(3..=9);
                for _ in 0..len {
                    if values.len() >= target || cursor > u64::from(base_cap) {
                        break;
                    }
                    values.push(cursor as u32);
                    cursor += step;
                }
                cursor += rng.gen_range(1..=5u64);
            }
        }
    }
    values
}

/// Generates a pair of arithmetic series whose steps are distinct large
/// coprime primes sharing one anchor value: their step lcm overflows
/// `u32`, so intersecting them must take the huge-lcm singleton fallback
/// instead of the CRT series path. Each side has at least 3 elements so
/// `from_sorted` compacts it into a single series entry; the exact
/// intersection is `{anchor}` (the next common element lies `p*q >
/// u32::MAX` away, far outside either window).
pub fn gen_coprime_step_pair(rng: &mut ChaCha8Rng) -> (Vec<u32>, Vec<u32>) {
    // Primes just above 2^16: any distinct pair multiplies past 2^32.
    const PRIMES: [u32; 6] = [65_537, 65_539, 65_543, 65_551, 65_557, 65_563];
    let pi = rng.gen_range(0..PRIMES.len());
    let qi = (pi + rng.gen_range(1..PRIMES.len())) % PRIMES.len();
    let (p, q) = (PRIMES[pi], PRIMES[qi]);
    let anchor = rng.gen_range(1..=1_000_000u32);
    let la = rng.gen_range(3..=8u32);
    let lb = rng.gen_range(3..=8u32);
    let a = (0..la).map(|k| anchor + k * p).collect();
    let b = (0..lb).map(|k| anchor + k * q).collect();
    (a, b)
}

/// Generates adversarial byte inputs for the LZW codec: random bytes,
/// single-symbol runs (KwKwK stress), short alphabets that grow the
/// dictionary fast, and long repeats that force a dictionary reset.
pub fn gen_lzw_bytes(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    match rng.gen_range(0..4) {
        0 => {
            let len = rng.gen_range(0..=max_len.max(1));
            (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect()
        }
        1 => {
            // One symbol repeated: worst case for KwKwK handling.
            let len = rng.gen_range(0..=max_len.max(1));
            let sym = rng.gen_range(0..=255u32) as u8;
            vec![sym; len]
        }
        2 => {
            // Tiny alphabet, long stream: dictionary churns quickly.
            let len = rng.gen_range(0..=max_len.max(1));
            let alpha = rng.gen_range(2..=4u32);
            (0..len)
                .map(|_| rng.gen_range(0..alpha) as u8)
                .collect()
        }
        _ => {
            // Repeated pattern with occasional corruption of one byte.
            let pat_len = rng.gen_range(1..=16);
            let pattern: Vec<u8> = (0..pat_len)
                .map(|_| rng.gen_range(0..=255u32) as u8)
                .collect();
            let reps = rng.gen_range(1..=max_len.max(1) / pat_len.max(1) + 1);
            let mut out: Vec<u8> = pattern
                .iter()
                .cycle()
                .take(pat_len * reps)
                .copied()
                .collect();
            if !out.is_empty() && rng.gen_bool(0.5) {
                let i = rng.gen_range(0..out.len());
                out[i] = out[i].wrapping_add(1);
            }
            out
        }
    }
}

/// Generates a dynamic block sequence over blocks `1..=4` of the
/// query-battery fixture function (see `metamorphic::fixture_program`).
/// Sequences start at block 1 so the fixture's control flow is plausible,
/// but [`twpp_dataflow::DynCfg::from_block_sequence`] accepts any order.
pub fn gen_block_sequence(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<BlockId> {
    let len = rng.gen_range(1..=max_len.max(1));
    let mut out = Vec::with_capacity(len);
    out.push(BlockId::new(1));
    for _ in 1..len {
        out.push(BlockId::new(rng.gen_range(1..=4)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        let a = CaseGen::new(ShapeConfig::default(), 7).events();
        let b = CaseGen::new(ShapeConfig::default(), 7).events();
        assert_eq!(a, b);
        let c = CaseGen::new(ShapeConfig::default(), 8).events();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn streams_start_with_root_enter_and_respect_budget() {
        for seed in 0..32 {
            let cfg = ShapeConfig::small();
            let max = cfg.max_events;
            let ev = CaseGen::new(cfg, seed).events();
            assert!(matches!(ev.first(), Some(WppEvent::Enter(_))));
            // Budget is a soft cap: each activation adds at most its
            // Enter/Exit pair past the cap.
            assert!(ev.len() <= max + 2 * 16, "len {} over budget", ev.len());
        }
    }

    #[test]
    fn sorted_timestamps_are_strictly_increasing_and_one_based() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..64 {
            let v = gen_sorted_timestamps(&mut rng, 64, 10_000, false);
            assert!(v.first().is_none_or(|&f| f >= 1));
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn straddling_sets_cross_the_sign_boundary_sometimes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut crossed = false;
        for _ in 0..128 {
            let v = gen_sorted_timestamps(&mut rng, 64, 0, true);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            if v.iter().any(|&x| x > i32::MAX as u32) && v.iter().any(|&x| x <= i32::MAX as u32)
            {
                crossed = true;
            }
        }
        assert!(crossed, "expected at least one set straddling i32::MAX");
    }
}
