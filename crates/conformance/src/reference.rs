//! Independent reference oracles: deliberately naive re-implementations
//! of every pipeline transformation, sharing **no code** with
//! [`twpp::partition`], [`twpp::dedup`], [`twpp::dbb`],
//! [`twpp::timestamped`] or [`twpp::tsset`].
//!
//! Each oracle favours the most obvious O(n)–O(n²) formulation over
//! anything clever: plain stacks, linear scans and `BTreeSet`s. The
//! differential engine ([`crate::differential`]) holds the optimized
//! pipeline to these semantics; when the two disagree the oracle wins by
//! construction, because its code is short enough to audit by eye.

use std::collections::{BTreeMap, BTreeSet};

use twpp_ir::{BlockId, FuncId};
use twpp_tracer::WppEvent;

/// One function activation recovered by the naive partitioner.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefActivation {
    /// The activated function.
    pub func: FuncId,
    /// Index of the calling activation (preorder), `None` for the root.
    pub parent: Option<usize>,
    /// Blocks the parent had executed when this call happened.
    pub offset_in_parent: u32,
    /// The blocks this activation itself executed.
    pub blocks: Vec<BlockId>,
    /// Child activations, in call order (preorder indices).
    pub children: Vec<usize>,
    /// Position of this activation in close (Exit) order — the order
    /// the optimized partitioner appends per-function traces in.
    pub close_order: usize,
}

/// The naive partitioner's output: activations in Enter (preorder) order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RefPartition {
    /// All activations; index 0 is the root when non-empty.
    pub activations: Vec<RefActivation>,
}

/// Naive-partitioner rejection reasons, mirroring the optimized
/// partitioner's error contract without sharing its types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefPartitionError {
    /// The stream had no events at all.
    Empty,
    /// A block or exit occurred while no activation was open.
    OutsideActivation,
    /// A second top-level activation was entered.
    MultipleRoots,
}

impl RefPartition {
    /// Per-function trace lists in close (Exit) order — the layout the
    /// optimized [`twpp::PartitionedWpp::traces`] uses.
    pub fn traces_by_function(&self) -> BTreeMap<FuncId, Vec<Vec<BlockId>>> {
        let mut order: Vec<usize> = (0..self.activations.len()).collect();
        order.sort_by_key(|&i| self.activations[i].close_order);
        let mut map: BTreeMap<FuncId, Vec<Vec<BlockId>>> = BTreeMap::new();
        for i in order {
            let a = &self.activations[i];
            map.entry(a.func).or_default().push(a.blocks.clone());
        }
        map
    }

    /// Rebuilds the original event stream (inverse of [`ref_partition`]),
    /// closing truncated activations explicitly.
    pub fn reconstruct(&self) -> Vec<WppEvent> {
        let mut events = Vec::new();
        if !self.activations.is_empty() {
            self.emit(0, &mut events);
        }
        events
    }

    fn emit(&self, idx: usize, events: &mut Vec<WppEvent>) {
        let a = &self.activations[idx];
        events.push(WppEvent::Enter(a.func));
        let mut block_pos = 0usize;
        for &child in &a.children {
            let off = self.activations[child].offset_in_parent as usize;
            while block_pos < off.min(a.blocks.len()) {
                events.push(WppEvent::Block(a.blocks[block_pos]));
                block_pos += 1;
            }
            self.emit(child, events);
        }
        while block_pos < a.blocks.len() {
            events.push(WppEvent::Block(a.blocks[block_pos]));
            block_pos += 1;
        }
        events.push(WppEvent::Exit);
    }
}

/// Naive WPP partitioner: one pass with an explicit activation stack.
///
/// Truncated streams (open activations at the end) are accepted and
/// closed implicitly, innermost first, matching the documented contract.
///
/// # Errors
///
/// Rejects empty streams, events outside any activation, and second
/// top-level activations.
pub fn ref_partition(events: &[WppEvent]) -> Result<RefPartition, RefPartitionError> {
    if events.is_empty() {
        return Err(RefPartitionError::Empty);
    }
    let mut acts: Vec<RefActivation> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut root_seen = false;
    let mut next_close = 0usize;
    for &event in events {
        match event {
            WppEvent::Enter(func) => {
                if stack.is_empty() && root_seen {
                    return Err(RefPartitionError::MultipleRoots);
                }
                root_seen = true;
                let idx = acts.len();
                let (parent, offset) = match stack.last() {
                    Some(&p) => {
                        acts[p].children.push(idx);
                        (Some(p), acts[p].blocks.len() as u32)
                    }
                    None => (None, 0),
                };
                acts.push(RefActivation {
                    func,
                    parent,
                    offset_in_parent: offset,
                    blocks: Vec::new(),
                    children: Vec::new(),
                    close_order: usize::MAX,
                });
                stack.push(idx);
            }
            WppEvent::Block(b) => match stack.last() {
                Some(&top) => acts[top].blocks.push(b),
                None => return Err(RefPartitionError::OutsideActivation),
            },
            WppEvent::Exit => match stack.pop() {
                Some(top) => {
                    acts[top].close_order = next_close;
                    next_close += 1;
                }
                None => return Err(RefPartitionError::OutsideActivation),
            },
        }
    }
    while let Some(top) = stack.pop() {
        acts[top].close_order = next_close;
        next_close += 1;
    }
    Ok(RefPartition { activations: acts })
}

/// Naive redundant-trace elimination over one function's trace list:
/// keeps the first occurrence of each distinct trace (quadratic compare)
/// and returns `(unique_traces, remap)` where `remap[i]` is the unique
/// index trace `i` collapsed onto.
pub fn ref_dedup(traces: &[Vec<BlockId>]) -> (Vec<Vec<BlockId>>, Vec<usize>) {
    let mut unique: Vec<Vec<BlockId>> = Vec::new();
    let mut remap = Vec::with_capacity(traces.len());
    for t in traces {
        match unique.iter().position(|u| u == t) {
            Some(i) => remap.push(i),
            None => {
                unique.push(t.clone());
                remap.push(unique.len() - 1);
            }
        }
    }
    (unique, remap)
}

/// Naive dynamic-basic-block folding of one path trace.
///
/// Recomputes the chain rule from first principles: `a -> b` is a chain
/// edge iff `b` is the *only* thing ever following `a` and `a` the only
/// thing ever preceding `b` in this trace, where "thing" includes the
/// virtual start/end of the trace. Maximal chains (length ≥ 2) fold each
/// occurrence down to their head block.
///
/// Returns `(folded_trace, chains)` with chains keyed by head block.
pub fn ref_dbb_fold(blocks: &[BlockId]) -> (Vec<BlockId>, BTreeMap<BlockId, Vec<BlockId>>) {
    if blocks.len() < 2 {
        return (blocks.to_vec(), BTreeMap::new());
    }
    // Successor/predecessor alphabets; `None` models the virtual
    // entry/exit neighbour.
    let mut succs: BTreeMap<BlockId, BTreeSet<Option<BlockId>>> = BTreeMap::new();
    let mut preds: BTreeMap<BlockId, BTreeSet<Option<BlockId>>> = BTreeMap::new();
    for (i, &b) in blocks.iter().enumerate() {
        let before = if i == 0 { None } else { Some(blocks[i - 1]) };
        let after = blocks.get(i + 1).copied();
        preds.entry(b).or_default().insert(before);
        succs.entry(b).or_default().insert(after);
    }
    // Chain edges.
    let mut next: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    let mut chained_into: BTreeSet<BlockId> = BTreeSet::new();
    for (&a, ss) in &succs {
        if ss.len() == 1 {
            if let Some(Some(b)) = ss.iter().next().copied() {
                if a != b && preds[&b].len() == 1 && preds[&b].contains(&Some(a)) {
                    next.insert(a, b);
                    chained_into.insert(b);
                }
            }
        }
    }
    // Maximal chains from heads.
    let mut chains: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
    for &head in next.keys() {
        if chained_into.contains(&head) {
            continue;
        }
        let mut chain = vec![head];
        let mut cur = head;
        while let Some(&n) = next.get(&cur) {
            chain.push(n);
            cur = n;
        }
        chains.insert(head, chain);
    }
    // Fold occurrences.
    let mut folded = Vec::new();
    let mut i = 0;
    while i < blocks.len() {
        let b = blocks[i];
        folded.push(b);
        i += chains.get(&b).map_or(1, Vec::len);
    }
    (folded, chains)
}

/// Naive unfold: the inverse of [`ref_dbb_fold`].
pub fn ref_dbb_unfold(
    folded: &[BlockId],
    chains: &BTreeMap<BlockId, Vec<BlockId>>,
) -> Vec<BlockId> {
    let mut out = Vec::new();
    for b in folded {
        match chains.get(b) {
            Some(chain) => out.extend_from_slice(chain),
            None => out.push(*b),
        }
    }
    out
}

/// Naive timestamp inversion: block → sorted 1-based positions at which
/// it executed (the `T -> B` to `B -> P(T)` flip of the paper).
pub fn ref_invert(blocks: &[BlockId]) -> BTreeMap<BlockId, Vec<u32>> {
    let mut map: BTreeMap<BlockId, Vec<u32>> = BTreeMap::new();
    for (i, &b) in blocks.iter().enumerate() {
        map.entry(b).or_default().push((i + 1) as u32);
    }
    map
}

/// Naive inverse of [`ref_invert`]: rebuilds the positional trace, or
/// reports why the map is not a partition of `1..=len`.
pub fn ref_uninvert(map: &BTreeMap<BlockId, Vec<u32>>) -> Result<Vec<BlockId>, String> {
    let len: usize = map.values().map(Vec::len).sum();
    let mut slots: Vec<Option<BlockId>> = vec![None; len];
    for (&b, ts) in map {
        for &t in ts {
            if t == 0 || t as usize > len {
                return Err(format!("timestamp {t} outside 1..={len}"));
            }
            let slot = &mut slots[(t - 1) as usize];
            if slot.is_some() {
                return Err(format!("timestamp {t} claimed twice"));
            }
            *slot = Some(b);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| format!("timestamp {} unclaimed", i + 1)))
        .collect()
}

/// One arithmetic-series entry of the naive compactor: `(first, last,
/// step)`, a singleton when `first == last`.
pub type RefSeries = (u32, u32, u32);

/// Naive greedy arithmetic-series compaction of a strictly increasing
/// timestamp vector, re-deriving the paper's rule from scratch: a maximal
/// constant-difference run becomes one `l:h:s` entry when it has ≥ 3
/// members, or exactly 2 members at step 1 (where the two-word `l,-h`
/// encoding still saves space); everything else stays a singleton.
pub fn ref_compact_series(values: &[u32]) -> Vec<RefSeries> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < values.len() {
        // Longest constant-difference run starting at i.
        if i + 1 < values.len() {
            let step = values[i + 1] - values[i];
            let mut j = i + 1;
            while j + 1 < values.len() && values[j + 1] - values[j] == step {
                j += 1;
            }
            let members = j - i + 1;
            if members >= 3 || (members == 2 && step == 1) {
                out.push((values[i], values[j], step));
                i = j + 1;
                continue;
            }
        }
        out.push((values[i], values[i], 1));
        i += 1;
    }
    out
}

/// Naive decoder of the sign-delimited `l:h:s` wire format: singletons
/// are one negative word, step-1 ranges are `l,-h`, general series are
/// `l,h,-s`. Expands to the full timestamp vector.
///
/// # Errors
///
/// Reports truncation, zero words, non-positive spans and out-of-order
/// entries as strings (this decoder exists to disagree loudly, not to be
/// ergonomic).
pub fn ref_decode_wire(words: &[i32]) -> Result<Vec<u32>, String> {
    let mut out: Vec<u32> = Vec::new();
    let mut i = 0;
    let mut prev_last: Option<u32> = None;
    while i < words.len() {
        let w0 = words[i];
        let (first, last, step, used) = if w0 < 0 {
            let v = (-i64::from(w0)) as u32;
            (v, v, 1u32, 1usize)
        } else if w0 == 0 {
            return Err(format!("zero word at {i}"));
        } else {
            let Some(&w1) = words.get(i + 1) else {
                return Err("truncated entry".to_string());
            };
            if w1 < 0 {
                (w0 as u32, (-i64::from(w1)) as u32, 1, 2)
            } else if w1 == 0 {
                return Err(format!("zero word at {}", i + 1));
            } else {
                let Some(&w2) = words.get(i + 2) else {
                    return Err("truncated entry".to_string());
                };
                if w2 >= 0 {
                    return Err(format!("unterminated series at {i}"));
                }
                (w0 as u32, w1 as u32, (-i64::from(w2)) as u32, 3)
            }
        };
        if used > 1 && (last <= first || step == 0 || (last - first) % step != 0) {
            return Err(format!("malformed entry at {i}"));
        }
        if prev_last.is_some_and(|p| p >= first) {
            return Err(format!("out-of-order entry at {i}"));
        }
        let mut t = first;
        loop {
            out.push(t);
            if t == last {
                break;
            }
            t += step;
        }
        prev_last = Some(last);
        i += used;
    }
    Ok(out)
}

/// Naive encoder of [`RefSeries`] entries into the sign-delimited wire
/// format (the inverse of [`ref_decode_wire`]). Values above `i32::MAX`
/// are unrepresentable and reported as an error.
pub fn ref_encode_wire(entries: &[RefSeries]) -> Result<Vec<i32>, String> {
    let mut out = Vec::new();
    for &(first, last, step) in entries {
        let enc = |v: u32| i32::try_from(v).map_err(|_| format!("{v} exceeds i32::MAX"));
        if first == last {
            out.push(-enc(first)?);
        } else if step == 1 {
            out.push(enc(first)?);
            out.push(-enc(last)?);
        } else {
            out.push(enc(first)?);
            out.push(enc(last)?);
            out.push(-enc(step)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    #[test]
    fn ref_partition_tracks_offsets_and_close_order() {
        let events = [
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(2)),
            WppEvent::Exit,
            WppEvent::Block(b(3)),
            WppEvent::Exit,
        ];
        let p = ref_partition(&events).unwrap();
        assert_eq!(p.activations.len(), 2);
        assert_eq!(p.activations[1].offset_in_parent, 1);
        assert_eq!(p.activations[1].close_order, 0);
        assert_eq!(p.activations[0].close_order, 1);
        assert_eq!(p.reconstruct(), events);
    }

    #[test]
    fn ref_partition_rejects_malformed_streams() {
        assert_eq!(ref_partition(&[]), Err(RefPartitionError::Empty));
        assert_eq!(
            ref_partition(&[WppEvent::Block(b(1))]),
            Err(RefPartitionError::OutsideActivation)
        );
        assert_eq!(
            ref_partition(&[WppEvent::Enter(f(0)), WppEvent::Exit, WppEvent::Enter(f(0))]),
            Err(RefPartitionError::MultipleRoots)
        );
    }

    #[test]
    fn ref_dbb_folds_the_paper_example() {
        let t: Vec<BlockId> = [1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10]
            .iter()
            .map(|&i| b(i))
            .collect();
        let (folded, chains) = ref_dbb_fold(&t);
        assert_eq!(chains[&b(2)].len(), 5);
        assert_eq!(folded.len(), 5); // 1.2.2.2.10
        assert_eq!(ref_dbb_unfold(&folded, &chains), t);
    }

    #[test]
    fn ref_series_compaction_matches_hand_examples() {
        assert_eq!(ref_compact_series(&[5]), vec![(5, 5, 1)]);
        assert_eq!(ref_compact_series(&[2, 3]), vec![(2, 3, 1)]);
        assert_eq!(ref_compact_series(&[2, 4]), vec![(2, 2, 1), (4, 4, 1)]);
        assert_eq!(ref_compact_series(&[2, 4, 6, 9]), vec![(2, 6, 2), (9, 9, 1)]);
    }

    #[test]
    fn ref_wire_round_trips() {
        let entries = ref_compact_series(&[1, 2, 3, 7, 10, 13, 20]);
        let words = ref_encode_wire(&entries).unwrap();
        assert_eq!(ref_decode_wire(&words).unwrap(), vec![1, 2, 3, 7, 10, 13, 20]);
    }

    #[test]
    fn ref_invert_round_trips() {
        let t: Vec<BlockId> = [1, 2, 2, 3, 1].iter().map(|&i| b(i)).collect();
        let inv = ref_invert(&t);
        assert_eq!(ref_uninvert(&inv).unwrap(), t);
    }
}
