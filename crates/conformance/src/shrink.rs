//! Auto-shrinking of failing cases to minimal reproducers.
//!
//! Shrinking is a greedy delta-debugging loop: propose a structurally
//! smaller candidate, keep it iff the failure predicate still fires, and
//! repeat to a fixpoint (or until the evaluation budget runs out). The
//! predicate re-runs the *single failing check*, so the reproducer pins
//! exactly the divergence that was observed, not "any failure".
//!
//! Event-stream shrinking is structure-aware: it removes whole balanced
//! activation spans (`Enter .. matching Exit`) before trying block-level
//! deletions, so intermediate candidates stay well-formed WPPs and the
//! minimal reproducer is a runnable trace, not framing noise.

use twpp_tracer::WppEvent;

/// Caps the number of candidate evaluations one shrink run may spend.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkBudget {
    /// Maximum number of predicate evaluations.
    pub max_evals: usize,
}

impl Default for ShrinkBudget {
    fn default() -> ShrinkBudget {
        ShrinkBudget { max_evals: 4_000 }
    }
}

struct Counter {
    left: usize,
}

impl Counter {
    fn take(&mut self) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        true
    }
}

/// Shrinks a failing WPP event stream. `fails` returns `true` while the
/// candidate still reproduces the divergence; the returned stream is the
/// smallest one found that still fails.
pub fn shrink_events<F>(events: &[WppEvent], budget: ShrinkBudget, mut fails: F) -> Vec<WppEvent>
where
    F: FnMut(&[WppEvent]) -> bool,
{
    let mut best = events.to_vec();
    let mut evals = Counter {
        left: budget.max_evals,
    };
    loop {
        let before = best.len();
        // Pass 1: drop whole activation spans, outermost-largest first.
        shrink_spans(&mut best, &mut evals, &mut fails);
        // Pass 2: binary-chop contiguous event ranges (ddmin flavour).
        shrink_chunks(&mut best, &mut evals, &mut fails);
        // Pass 3: individual block events.
        shrink_singles(&mut best, &mut evals, &mut fails);
        if best.len() >= before || evals.left == 0 {
            return best;
        }
    }
}

/// Balanced spans `Enter .. matching Exit` (or stream end when the
/// activation never closes), as `(start, end_exclusive)` pairs.
fn activation_spans(events: &[WppEvent]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            WppEvent::Enter(_) => stack.push(i),
            WppEvent::Exit => {
                if let Some(start) = stack.pop() {
                    spans.push((start, i + 1));
                }
            }
            WppEvent::Block(_) => {}
        }
    }
    while let Some(start) = stack.pop() {
        spans.push((start, events.len()));
    }
    // Largest spans first: removing an outer call discards the most.
    spans.sort_by_key(|&(s, e)| std::cmp::Reverse(e - s));
    spans
}

fn shrink_spans<F>(best: &mut Vec<WppEvent>, evals: &mut Counter, fails: &mut F)
where
    F: FnMut(&[WppEvent]) -> bool,
{
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (start, end) in activation_spans(best) {
            if end - start >= best.len() {
                continue; // never remove the root span entirely
            }
            if !evals.take() {
                return;
            }
            let mut candidate = best.clone();
            candidate.drain(start..end);
            if fails(&candidate) {
                *best = candidate;
                progressed = true;
                break; // span indices are stale; recompute
            }
        }
    }
}

fn shrink_chunks<F>(best: &mut Vec<WppEvent>, evals: &mut Counter, fails: &mut F)
where
    F: FnMut(&[WppEvent]) -> bool,
{
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            if !evals.take() {
                return;
            }
            let mut candidate = best.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && fails(&candidate) {
                *best = candidate;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
}

fn shrink_singles<F>(best: &mut Vec<WppEvent>, evals: &mut Counter, fails: &mut F)
where
    F: FnMut(&[WppEvent]) -> bool,
{
    let mut i = 0;
    while i < best.len() {
        if matches!(best[i], WppEvent::Block(_)) {
            if !evals.take() {
                return;
            }
            let mut candidate = best.clone();
            candidate.remove(i);
            if fails(&candidate) {
                *best = candidate;
                continue; // same index now holds the next event
            }
        }
        i += 1;
    }
}

/// Shrinks a failing sorted timestamp vector: removes chunks, then
/// single elements, then tries rebasing everything towards 1 (which
/// keeps run structure but shrinks magnitudes).
pub fn shrink_sorted<F>(values: &[u32], budget: ShrinkBudget, mut fails: F) -> Vec<u32>
where
    F: FnMut(&[u32]) -> bool,
{
    let mut best = values.to_vec();
    let mut evals = Counter {
        left: budget.max_evals,
    };
    loop {
        let before = (best.len(), best.first().copied());
        // Chunk removal.
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + chunk).min(best.len());
                if !evals.take() {
                    return best;
                }
                let mut candidate = best.clone();
                candidate.drain(start..end);
                if fails(&candidate) {
                    best = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Rebase towards 1 (halving the offset preserves strict order).
        while let Some(&first) = best.first() {
            if first <= 1 {
                break;
            }
            let delta = first / 2;
            if delta == 0 || !evals.take() {
                break;
            }
            let candidate: Vec<u32> = best.iter().map(|&v| v - delta).collect();
            if fails(&candidate) {
                best = candidate;
            } else {
                break;
            }
        }
        if (best.len(), best.first().copied()) >= before || evals.left == 0 {
            return best;
        }
    }
}

/// Shrinks a failing byte input: chunk removal then single bytes, then
/// zeroing (which often simplifies without shortening).
pub fn shrink_bytes<F>(bytes: &[u8], budget: ShrinkBudget, mut fails: F) -> Vec<u8>
where
    F: FnMut(&[u8]) -> bool,
{
    let mut best = bytes.to_vec();
    let mut evals = Counter {
        left: budget.max_evals,
    };
    loop {
        let before = best.len();
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + chunk).min(best.len());
                if !evals.take() {
                    return best;
                }
                let mut candidate = best.clone();
                candidate.drain(start..end);
                if fails(&candidate) {
                    best = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        for i in 0..best.len() {
            if best[i] != 0 {
                if !evals.take() {
                    return best;
                }
                let mut candidate = best.clone();
                candidate[i] = 0;
                if fails(&candidate) {
                    best = candidate;
                }
            }
        }
        if best.len() >= before || evals.left == 0 {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::{BlockId, FuncId};

    fn ev(spec: &str) -> Vec<WppEvent> {
        // "(" enter, ")" exit, digits blocks.
        spec.chars()
            .map(|c| match c {
                '(' => WppEvent::Enter(FuncId::from_index(0)),
                ')' => WppEvent::Exit,
                d => WppEvent::Block(BlockId::new(d.to_digit(10).expect("digit"))),
            })
            .collect()
    }

    #[test]
    fn shrinks_to_the_single_guilty_block() {
        // Failure: "stream contains block 7".
        let events = ev("(12(345)6(7)8)");
        let shrunk = shrink_events(&events, ShrinkBudget::default(), |c| {
            c.iter()
                .any(|e| matches!(e, WppEvent::Block(b) if b.as_u32() == 7))
        });
        assert!(shrunk.len() <= 3, "got {} events", shrunk.len());
        assert!(shrunk
            .iter()
            .any(|e| matches!(e, WppEvent::Block(b) if b.as_u32() == 7)));
    }

    #[test]
    fn span_removal_keeps_streams_balanced_enough_to_partition() {
        let events = ev("(1(2(3)4)5(6)7)");
        let shrunk = shrink_events(&events, ShrinkBudget::default(), |c| {
            // Failure: at least two activations.
            c.iter().filter(|e| matches!(e, WppEvent::Enter(_))).count() >= 2
        });
        assert_eq!(
            shrunk
                .iter()
                .filter(|e| matches!(e, WppEvent::Enter(_)))
                .count(),
            2
        );
        assert!(shrunk.len() <= 4);
    }

    #[test]
    fn sorted_shrinker_rebases_and_prunes() {
        let values: Vec<u32> = (100..200).collect();
        let shrunk = shrink_sorted(&values, ShrinkBudget::default(), |c| c.len() >= 3);
        assert_eq!(shrunk.len(), 3);
        assert!(shrunk[0] < 100, "expected rebase towards 1, got {shrunk:?}");
    }

    #[test]
    fn byte_shrinker_minimizes() {
        let bytes: Vec<u8> = (0..128).collect();
        let shrunk = shrink_bytes(&bytes, ShrinkBudget::default(), |c| {
            c.contains(&42)
        });
        assert_eq!(shrunk, vec![42]);
    }
}
