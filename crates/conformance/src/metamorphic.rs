//! Metamorphic relations: properties that must hold between *related*
//! runs of the pipeline and the dataflow layer, with no reference to an
//! external ground truth.
//!
//! The relations pinned here:
//!
//! * **Inversion is a homomorphism over concatenation** —
//!   `invert(T1 ++ T2) = invert(T1) ∪ shift(invert(T2), |T1|)` per block.
//! * **Inversion restricts under prefixing** —
//!   `invert(prefix_k(T)) = invert(T) ∩ {1..k}` per block, the
//!   timestamp-level form of "slicing is monotone under trace prefixing".
//! * **Queries decompose over the queried timestamp set** —
//!   `query(ts_a ∪ ts_b) = query(ts_a) ∪ query(ts_b)`.
//! * **Queries are prefix-closed** — a backward query at timestamp `t`
//!   sees only history, so solving over the trace truncated at `t`
//!   yields the same answer.
//! * **Governed partial answers are sound and monotone** — a
//!   budget-stopped answer is a subset of the complete one, and growing
//!   the budget never retracts an answer.
//! * **The timestamp-set algebra agrees with naive set algebra** —
//!   union/intersect/subtract/max_lt/min_ge versus `BTreeSet` scans.

use std::collections::BTreeSet;

use twpp::dedup::eliminate_redundancy_threads;
use twpp::gov::{Budget, Limits};
use twpp::partition::partition;
use twpp::timestamped::TimestampedTrace;
use twpp::trace::PathTrace;
use twpp::tsset::TsSet;
use twpp_dataflow::dyncfg::DynCfg;
use twpp_dataflow::query::{
    solve_backward, solve_backward_governed, solve_by_replay, QueryOutcome,
};
use twpp_dataflow::AvailableLoad;
use twpp_ir::{single_function_program, BlockId, Operand, Program, Rvalue, Stmt, Terminator};
use twpp_tracer::{RawWpp, WppEvent};

use crate::differential::CheckContext;
use crate::reference::{ref_compact_series, ref_decode_wire, ref_encode_wire};

/// A metamorphic check over a WPP event stream.
pub type EventCheck = fn(&[WppEvent], &CheckContext) -> Result<(), String>;

/// A metamorphic check over a pair of sorted timestamp vectors.
pub type SetCheck = fn(&[u32], &[u32]) -> Result<(), String>;

/// A metamorphic/differential check over one dynamic block sequence.
pub type QueryCheck = fn(&[BlockId]) -> Result<(), String>;

/// Event-stream metamorphic relations.
pub const EVENT_META_CHECKS: &[(&str, EventCheck)] = &[
    ("meta-invert-concat", check_invert_concat),
    ("meta-invert-prefix", check_invert_prefix),
];

/// Timestamp-set relations (second vector used by binary relations).
pub const SET_CHECKS: &[(&str, SetCheck)] = &[
    ("set-algebra-oracle", check_set_algebra),
    ("set-bounds-oracle", check_set_bounds),
    ("set-shift-roundtrip", check_set_shift),
    ("set-sorted-wire-oracle", check_set_sorted_wire),
];

/// Dataflow-query relations over the fixture function.
pub const QUERY_CHECKS: &[(&str, QueryCheck)] = &[
    ("query-replay-oracle", check_query_replay_oracle),
    ("meta-query-split", check_query_split),
    ("meta-query-prefix", check_query_prefix),
    ("meta-query-governed", check_query_governed),
];

/// Unique path traces of a case, in deterministic order.
fn unique_traces(events: &[WppEvent]) -> Vec<PathTrace> {
    let wpp = RawWpp::from_events(events);
    let Ok(mut part) = partition(&wpp) else {
        return Vec::new();
    };
    eliminate_redundancy_threads(&mut part, 1);
    part.traces.into_values().flatten().collect()
}

fn invert(trace: &PathTrace) -> TimestampedTrace {
    TimestampedTrace::from_path_trace(trace)
}

/// `invert(T1 ++ T2) = invert(T1) ∪ shift(invert(T2), |T1|)`.
fn check_invert_concat(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let traces = unique_traces(events);
    // Pair each trace with its successor (wrapping) plus with itself.
    for (i, t1) in traces.iter().enumerate() {
        let t2 = &traces[(i + 1) % traces.len()];
        let concat: PathTrace = t1.iter().chain(t2.iter()).collect::<Vec<_>>().into();
        if concat.len() > i32::MAX as usize {
            continue;
        }
        let whole = invert(&concat);
        let left = invert(t1);
        let right = invert(t2);
        let delta = t1.len() as i64;
        if u64::from(whole.len()) != (t1.len() + t2.len()) as u64 {
            return Err("concat inversion lost positions".to_string());
        }
        for (block, ts) in whole.iter() {
            let l = left.ts_of(block).cloned().unwrap_or_default();
            let shifted = match right.ts_of(block) {
                Some(r) => r
                    .try_shift(delta)
                    .map_err(|e| format!("shift overflow in concat relation: {e}"))?,
                None => TsSet::new(),
            };
            let want = l.union(&shifted);
            // Extensional comparison: TsSet equality is representational
            // and the algebra does not promise `from_sorted`'s canonical
            // entry shape (see DESIGN.md §14).
            if ts.to_vec() != want.to_vec() {
                return Err(format!(
                    "concat relation broken for block {block}: {} vs {}",
                    ts, want
                ));
            }
        }
    }
    Ok(())
}

/// `invert(prefix_k(T)) = invert(T) ∩ {1..k}`.
fn check_invert_prefix(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    for trace in unique_traces(events) {
        if trace.len() < 2 {
            continue;
        }
        let whole = invert(&trace);
        for k in [1, trace.len() / 2, trace.len() - 1] {
            if k == 0 {
                continue;
            }
            let prefix: PathTrace = trace.blocks()[..k].to_vec().into();
            let inv_prefix = invert(&prefix);
            let window = TsSet::range(1, k as u32);
            for (block, ts) in whole.iter() {
                let want = ts.intersect(&window);
                let got = inv_prefix.ts_of(block).cloned().unwrap_or_default();
                if got.to_vec() != want.to_vec() {
                    return Err(format!(
                        "prefix relation broken at k={k} for block {block}: {got} vs {want}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn naive_set(values: &[u32]) -> BTreeSet<u32> {
    values.iter().copied().collect()
}

/// union / intersect / subtract versus `BTreeSet`.
fn check_set_algebra(a: &[u32], b: &[u32]) -> Result<(), String> {
    let sa = TsSet::from_sorted(a);
    let sb = TsSet::from_sorted(b);
    let na = naive_set(a);
    let nb = naive_set(b);

    let union: Vec<u32> = na.union(&nb).copied().collect();
    if sa.union(&sb).to_vec() != union {
        return Err(format!("union differs: {} vs naive {union:?}", sa.union(&sb)));
    }
    let inter: Vec<u32> = na.intersection(&nb).copied().collect();
    if sa.intersect(&sb).to_vec() != inter {
        return Err(format!(
            "intersect differs: {} vs naive {inter:?}",
            sa.intersect(&sb)
        ));
    }
    let diff: Vec<u32> = na.difference(&nb).copied().collect();
    if sa.subtract(&sb).to_vec() != diff {
        return Err(format!(
            "subtract differs: {} vs naive {diff:?}",
            sa.subtract(&sb)
        ));
    }
    // Algebraic sanity on top of the oracle: A = (A∖B) ∪ (A∩B).
    let rebuilt = sa.subtract(&sb).union(&sa.intersect(&sb));
    if rebuilt.to_vec() != a {
        return Err("A != (A∖B) ∪ (A∩B)".to_string());
    }
    Ok(())
}

/// `max_lt` / `min_ge` versus linear scans.
fn check_set_bounds(a: &[u32], b: &[u32]) -> Result<(), String> {
    let sa = TsSet::from_sorted(a);
    // Probe at members, their neighbours, and values from the other set.
    let mut probes: Vec<u32> = Vec::new();
    for &v in a.iter().chain(b.iter()) {
        probes.push(v);
        probes.push(v.saturating_add(1));
        probes.push(v.saturating_sub(1).max(1));
    }
    probes.push(1);
    probes.push(u32::MAX);
    for t in probes {
        let want_lt = a.iter().copied().filter(|&v| v < t).max();
        if sa.max_lt(t) != want_lt {
            return Err(format!(
                "max_lt({t}) = {:?}, naive {:?}",
                sa.max_lt(t),
                want_lt
            ));
        }
        let want_ge = a.iter().copied().find(|&v| v >= t);
        if sa.min_ge(t) != want_ge {
            return Err(format!(
                "min_ge({t}) = {:?}, naive {:?}",
                sa.min_ge(t),
                want_ge
            ));
        }
        let want_contains = a.binary_search(&t).is_ok();
        if sa.contains(t) != want_contains {
            return Err(format!("contains({t}) = {}", sa.contains(t)));
        }
    }
    Ok(())
}

/// shift drops out-of-domain values like the naive map; try_shift
/// round-trips when nothing leaves the domain.
fn check_set_shift(a: &[u32], b: &[u32]) -> Result<(), String> {
    let sa = TsSet::from_sorted(a);
    let deltas: Vec<i64> = vec![
        0,
        1,
        -1,
        7,
        -7,
        i64::from(b.first().copied().unwrap_or(3)),
        -i64::from(b.last().copied().unwrap_or(3)),
    ];
    for d in deltas {
        let shifted = sa.shift(d);
        let want: Vec<u32> = a
            .iter()
            .filter_map(|&v| {
                let moved = i64::from(v) + d;
                (moved >= 1 && moved <= i64::from(u32::MAX)).then_some(moved as u32)
            })
            .collect();
        if shifted.to_vec() != want {
            return Err(format!("shift({d}) membership differs"));
        }
        // Round trip when no value leaves the domain in either direction.
        if shifted.len() == sa.len() {
            if let Ok(back) = shifted.try_shift(-d) {
                if back != sa {
                    return Err(format!("shift({d}) then shift({}) != identity", -d));
                }
            }
        }
    }
    Ok(())
}

/// from_sorted / wire encode / wire decode versus the naive compactor,
/// including the `i32::MAX` sign-bit boundary.
fn check_set_sorted_wire(a: &[u32], _b: &[u32]) -> Result<(), String> {
    let sa = TsSet::from_sorted(a);
    if sa.to_vec() != a {
        return Err("from_sorted changed membership".to_string());
    }
    let got: Vec<(u32, u32, u32)> = sa
        .entries()
        .iter()
        .map(|e| (e.first(), e.last(), e.step()))
        .collect();
    let want = ref_compact_series(a);
    if got != want {
        return Err(format!("series entries differ: {got:?} vs {want:?}"));
    }
    let overflows = a.iter().any(|&v| v > i32::MAX as u32);
    match (sa.to_wire(), ref_encode_wire(&want)) {
        (Err(_), Err(_)) => {
            if !overflows {
                return Err("both encoders errored without an overflowing value".to_string());
            }
            Ok(())
        }
        (Ok(wire), Ok(want_wire)) => {
            if overflows {
                return Err("encoders accepted a value past i32::MAX".to_string());
            }
            if wire != want_wire {
                return Err(format!("wire words differ: {wire:?} vs {want_wire:?}"));
            }
            let decoded = ref_decode_wire(&wire).map_err(|e| format!("oracle decode: {e}"))?;
            if decoded != a {
                return Err("oracle decode of wire differs from input".to_string());
            }
            let back = TsSet::from_wire(&wire).map_err(|e| format!("from_wire: {e}"))?;
            if back != sa {
                return Err("wire round-trip differs".to_string());
            }
            Ok(())
        }
        (opt, oracle) => Err(format!(
            "encode outcomes disagree: optimized ok={}, oracle ok={}",
            opt.is_ok(),
            oracle.is_ok()
        )),
    }
}

/// The 4-block query fixture: block 1 GENs the tracked load, block 2 is
/// transparent, block 3 KILLs it (aliasing store), block 4 loads it
/// again (also GEN, like real re-loads).
pub fn fixture_program() -> Program {
    single_function_program(|fb| {
        let b1 = fb.entry();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let b4 = fb.new_block();
        let v = fb.new_var();
        fb.push(b1, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
        fb.push(b2, Stmt::Print(Operand::Var(v)));
        fb.push(
            b3,
            Stmt::Store {
                addr: Operand::Const(200),
                value: Operand::Const(1),
            },
        );
        fb.push(b4, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
        let c = Operand::Const(1);
        fb.terminate(
            b1,
            Terminator::Branch {
                cond: c,
                then_dest: b2,
                else_dest: b3,
            },
        );
        fb.terminate(b2, Terminator::Jump(b4));
        fb.terminate(b3, Terminator::Jump(b4));
        fb.terminate(
            b4,
            Terminator::Branch {
                cond: c,
                then_dest: b1,
                else_dest: b1,
            },
        );
    })
    .expect("fixture program is well-formed")
}

fn fixture_fact() -> AvailableLoad {
    AvailableLoad {
        addr: Operand::Const(100),
    }
}

fn is_subset(a: &TsSet, b: &TsSet) -> bool {
    a.subtract(b).is_empty()
}

/// Worklist propagation versus per-timestamp prefix replay.
fn check_query_replay_oracle(seq: &[BlockId]) -> Result<(), String> {
    let program = fixture_program();
    let func = program.func(program.main());
    let fact = fixture_fact();
    let dcfg = DynCfg::from_block_sequence(seq);
    for node in 0..dcfg.node_count() {
        let ts = dcfg.node(node).ts.clone();
        let fast = solve_backward(&dcfg, func, &fact, node, &ts);
        let slow = solve_by_replay(&dcfg, func, &fact, node, &ts);
        if fast.holds.to_vec() != slow.holds.to_vec()
            || fast.not_holds.to_vec() != slow.not_holds.to_vec()
        {
            return Err(format!(
                "node {node}: propagation {{holds {}, not {}}} vs replay {{holds {}, not {}}}",
                fast.holds, fast.not_holds, slow.holds, slow.not_holds
            ));
        }
    }
    Ok(())
}

/// `query(ts_a ∪ ts_b) = query(ts_a) ∪ query(ts_b)`.
fn check_query_split(seq: &[BlockId]) -> Result<(), String> {
    let program = fixture_program();
    let func = program.func(program.main());
    let fact = fixture_fact();
    let dcfg = DynCfg::from_block_sequence(seq);
    for node in 0..dcfg.node_count() {
        let all: Vec<u32> = dcfg.node(node).ts.to_vec();
        if all.len() < 2 {
            continue;
        }
        let (evens, odds): (Vec<u32>, Vec<u32>) = {
            let mut e = Vec::new();
            let mut o = Vec::new();
            for (i, &t) in all.iter().enumerate() {
                if i % 2 == 0 {
                    e.push(t);
                } else {
                    o.push(t);
                }
            }
            (e, o)
        };
        let full = solve_backward(&dcfg, func, &fact, node, &TsSet::from_sorted(&all));
        let left = solve_backward(&dcfg, func, &fact, node, &TsSet::from_sorted(&evens));
        let right = solve_backward(&dcfg, func, &fact, node, &TsSet::from_sorted(&odds));
        if full.holds.to_vec() != left.holds.union(&right.holds).to_vec()
            || full.not_holds.to_vec() != left.not_holds.union(&right.not_holds).to_vec()
        {
            return Err(format!("node {node}: query does not decompose over ts union"));
        }
    }
    Ok(())
}

/// A backward query at `t` only sees history: truncating the trace at
/// `t` must not change the answer.
fn check_query_prefix(seq: &[BlockId]) -> Result<(), String> {
    let program = fixture_program();
    let func = program.func(program.main());
    let fact = fixture_fact();
    let dcfg = DynCfg::from_block_sequence(seq);
    for node in 0..dcfg.node_count() {
        let Some(t) = dcfg.node(node).ts.last() else {
            continue;
        };
        let single = TsSet::from_sorted(&[t]);
        let full = solve_backward(&dcfg, func, &fact, node, &single);
        let prefix = &seq[..t as usize];
        let pcfg = DynCfg::from_block_sequence(prefix);
        let head = seq[(t - 1) as usize];
        let Some(pnode) = pcfg.node_by_head(head) else {
            return Err(format!("prefix CFG lost block {head}"));
        };
        let pre = solve_backward(&pcfg, func, &fact, pnode, &single);
        if full.holds.to_vec() != pre.holds.to_vec()
            || full.not_holds.to_vec() != pre.not_holds.to_vec()
        {
            return Err(format!(
                "prefix closure broken at t={t}: full {{holds {}, not {}}} vs \
                 prefix {{holds {}, not {}}}",
                full.holds, full.not_holds, pre.holds, pre.not_holds
            ));
        }
    }
    Ok(())
}

/// Budget-stopped answers are subsets of the complete answer; growing
/// the budget never retracts an answer; unlimited completes.
fn check_query_governed(seq: &[BlockId]) -> Result<(), String> {
    let program = fixture_program();
    let func = program.func(program.main());
    let fact = fixture_fact();
    let dcfg = DynCfg::from_block_sequence(seq);
    for node in 0..dcfg.node_count() {
        let ts = dcfg.node(node).ts.clone();
        let complete = solve_backward(&dcfg, func, &fact, node, &ts);
        match solve_backward_governed(&dcfg, func, &fact, node, &ts, &Budget::unlimited()) {
            QueryOutcome::Complete(r) => {
                if r.holds.to_vec() != complete.holds.to_vec()
                    || r.not_holds.to_vec() != complete.not_holds.to_vec()
                {
                    return Err(format!("node {node}: unlimited budget changed the answer"));
                }
            }
            QueryOutcome::Partial { .. } => {
                return Err(format!("node {node}: unlimited budget reported Partial"));
            }
            other => {
                return Err(format!(
                    "node {node}: unlimited budget reported unexpected outcome {other:?}"
                ));
            }
        }
        let mut prev_resolved: Option<(TsSet, TsSet)> = None;
        for steps in [1u64, 2, 4, 8, 64] {
            let budget = Limits::new().max_steps(steps).start();
            let outcome = solve_backward_governed(&dcfg, func, &fact, node, &ts, &budget);
            let (r, coverage) = match &outcome {
                QueryOutcome::Complete(r) => (r, 1.0),
                QueryOutcome::Partial {
                    result, coverage, ..
                } => (result, *coverage),
                other => {
                    return Err(format!(
                        "node {node}: budget={steps}: unexpected outcome {other:?}"
                    ));
                }
            };
            if !(0.0..=1.0).contains(&coverage) {
                return Err(format!("node {node}: coverage {coverage} out of range"));
            }
            if !is_subset(&r.holds, &complete.holds)
                || !is_subset(&r.not_holds, &complete.not_holds)
            {
                return Err(format!(
                    "node {node}: budget={steps}: partial answer not a subset"
                ));
            }
            if let Some((ph, pn)) = &prev_resolved {
                if !is_subset(ph, &r.holds) || !is_subset(pn, &r.not_holds) {
                    return Err(format!(
                        "node {node}: budget={steps}: answers were retracted"
                    ));
                }
            }
            prev_resolved = Some((r.holds.clone(), r.not_holds.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_block_sequence, gen_sorted_timestamps, CaseGen, ShapeConfig};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn event_relations_hold_on_generated_cases() {
        let cx = CheckContext {
            threads: vec![1, 2],
        };
        for seed in 0..16 {
            let events = CaseGen::new(ShapeConfig::small(), seed).events();
            for (name, check) in EVENT_META_CHECKS {
                if let Err(e) = check(&events, &cx) {
                    panic!("seed {seed}: relation {name} broken: {e}");
                }
            }
        }
    }

    #[test]
    fn set_relations_hold_on_generated_sets() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for case in 0..64 {
            let straddle = case % 4 == 3;
            let a = gen_sorted_timestamps(&mut rng, 48, 5_000, straddle);
            let b = gen_sorted_timestamps(&mut rng, 48, 5_000, false);
            for (name, check) in SET_CHECKS {
                if let Err(e) = check(&a, &b) {
                    panic!("case {case}: relation {name} broken: {e}\n a={a:?}\n b={b:?}");
                }
            }
        }
    }

    #[test]
    fn query_relations_hold_on_generated_sequences() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for case in 0..48 {
            let seq = gen_block_sequence(&mut rng, 40);
            for (name, check) in QUERY_CHECKS {
                if let Err(e) = check(&seq) {
                    panic!("case {case}: relation {name} broken: {e}\n seq={seq:?}");
                }
            }
        }
    }
}
