//! Conformance oracle subsystem: differential and metamorphic testing of
//! the TWPP pipeline against independent naive reference implementations.
//!
//! The crate has five layers:
//!
//! * [`gen`] — deterministic, seedable case generators with shape knobs
//!   (loop depth, call fan-out, path diversity) shared by tests, fuzzers
//!   and benches;
//! * [`reference`] — naive O(n)–O(n²) oracles for partitioning, dedup,
//!   DBB folding, timestamp inversion and arithmetic-series compaction
//!   that share **no code** with `twpp::core`;
//! * [`differential`] — checks holding the optimized pipeline to the
//!   oracles and to itself (byte identity across thread counts and
//!   governed/observed execution policies);
//! * [`metamorphic`] — relations over the dataflow layer and timestamp
//!   sets (concatenation/shift laws, prefix-closure of backward queries,
//!   dedup idempotence) that need no oracle at all;
//! * [`shrink`] — structure-aware delta debugging that reduces a failing
//!   case to a minimal reproducer replaying the *single* failing check.
//!
//! [`run_selftest`] drives everything and is what `twpp selftest`
//! invokes. It is deterministic: the same [`SelftestConfig`] produces
//! the same cases, the same verdicts and the same report on every run.

pub mod codec;
pub mod differential;
pub mod gen;
pub mod metamorphic;
pub mod reference;
pub mod shrink;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use twpp::obs::JsonWriter;
use twpp_ir::BlockId;
use twpp_tracer::{RawWpp, WppEvent};

use crate::differential::CheckContext;
use crate::gen::{
    case_seed, gen_block_sequence, gen_coprime_step_pair, gen_lzw_bytes, gen_sorted_timestamps,
    CaseGen, ShapeConfig,
};
use crate::shrink::{shrink_bytes, shrink_events, shrink_sorted, ShrinkBudget};

/// Configuration of one selftest battery run.
#[derive(Clone, Debug)]
pub struct SelftestConfig {
    /// Root seed; case `i` uses [`case_seed`]`(seed, i)`.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: usize,
    /// Soft cap on events per generated WPP stream.
    pub max_events: usize,
    /// Thread counts the pipeline must be byte-identical across.
    pub threads: Vec<usize>,
    /// Where shrunk reproducers are written (`None` disables writing).
    pub out_dir: Option<PathBuf>,
    /// Evaluation budget for each shrink run.
    pub shrink_budget: ShrinkBudget,
}

impl Default for SelftestConfig {
    fn default() -> SelftestConfig {
        SelftestConfig {
            seed: 42,
            cases: 100,
            max_events: 2_000,
            threads: (1..=8).collect(),
            out_dir: None,
            shrink_budget: ShrinkBudget::default(),
        }
    }
}

/// Per-check execution statistics.
#[derive(Clone, Debug)]
pub struct CheckStat {
    /// Registered check name.
    pub name: &'static str,
    /// How many cases the check ran on.
    pub runs: usize,
    /// How many of those diverged.
    pub failures: usize,
}

/// What kind of generated input a divergence was observed on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseKind {
    /// A WPP event stream.
    Events,
    /// A pair of sorted timestamp vectors.
    Sets,
    /// A dynamic block sequence for the query fixture.
    Query,
    /// A byte input for the LZW codec.
    Bytes,
}

impl CaseKind {
    fn as_str(self) -> &'static str {
        match self {
            CaseKind::Events => "events",
            CaseKind::Sets => "sets",
            CaseKind::Query => "query",
            CaseKind::Bytes => "bytes",
        }
    }
}

/// One observed divergence, with its shrunk reproducer.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Name of the failing check.
    pub check: &'static str,
    /// Input family the case came from.
    pub kind: CaseKind,
    /// Case index within the run.
    pub case_index: usize,
    /// The derived per-case seed (replays the case directly).
    pub case_seed: u64,
    /// Human-readable description from the check.
    pub detail: String,
    /// Size of the original failing input (events/values/bytes).
    pub original_size: usize,
    /// Size after shrinking.
    pub shrunk_size: usize,
    /// Where the reproducer was written, if an out dir was configured.
    pub repro_path: Option<PathBuf>,
}

/// The result of one battery run.
#[derive(Clone, Debug, Default)]
pub struct SelftestReport {
    /// Number of cases executed.
    pub cases: usize,
    /// Per-check statistics, in battery order.
    pub checks: Vec<CheckStat>,
    /// Every divergence found, with shrunk reproducers.
    pub divergences: Vec<Divergence>,
}

impl SelftestReport {
    /// `true` when no check diverged.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Total number of individual check executions.
    pub fn total_runs(&self) -> usize {
        self.checks.iter().map(|c| c.runs).sum()
    }

    /// A human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "selftest: {} cases, {} check executions, {} divergence(s)",
            self.cases,
            self.total_runs(),
            self.divergences.len()
        );
        for stat in &self.checks {
            let mark = if stat.failures == 0 { "ok " } else { "FAIL" };
            let _ = writeln!(
                out,
                "  [{mark}] {:<28} runs={:<6} failures={}",
                stat.name, stat.runs, stat.failures
            );
        }
        for d in &self.divergences {
            let _ = writeln!(
                out,
                "  divergence: {} ({}, case {}, seed {:#x}): {} -> {} after shrink",
                d.check,
                d.kind.as_str(),
                d.case_index,
                d.case_seed,
                d.original_size,
                d.shrunk_size
            );
            if let Some(p) = &d.repro_path {
                let _ = writeln!(out, "    reproducer: {}", p.display());
            }
        }
        out
    }

    /// Machine-readable JSON fragment (embedded in the CLI RunReport).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("cases");
        w.uint(self.cases as u64);
        w.key("check_runs");
        w.uint(self.total_runs() as u64);
        w.key("checks");
        w.begin_array();
        for stat in &self.checks {
            w.begin_object();
            w.key("name");
            w.string(stat.name);
            w.key("runs");
            w.uint(stat.runs as u64);
            w.key("failures");
            w.uint(stat.failures as u64);
            w.end_object();
        }
        w.end_array();
        w.key("divergences");
        w.begin_array();
        for d in &self.divergences {
            w.begin_object();
            w.key("check");
            w.string(d.check);
            w.key("kind");
            w.string(d.kind.as_str());
            w.key("case_index");
            w.uint(d.case_index as u64);
            w.key("case_seed");
            w.uint(d.case_seed);
            w.key("detail");
            w.string(&d.detail);
            w.key("original_size");
            w.uint(d.original_size as u64);
            w.key("shrunk_size");
            w.uint(d.shrunk_size as u64);
            w.key("reproducer");
            match &d.repro_path {
                Some(p) => w.string(&p.display().to_string()),
                None => w.null(),
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Tracks per-check stats across the whole battery.
struct StatSheet {
    stats: Vec<CheckStat>,
}

impl StatSheet {
    fn new() -> StatSheet {
        let mut stats = Vec::new();
        for (name, _) in differential::EVENT_CHECKS {
            stats.push(CheckStat { name, runs: 0, failures: 0 });
        }
        for (name, _) in metamorphic::EVENT_META_CHECKS {
            stats.push(CheckStat { name, runs: 0, failures: 0 });
        }
        for (name, _) in metamorphic::SET_CHECKS {
            stats.push(CheckStat { name, runs: 0, failures: 0 });
        }
        for (name, _) in metamorphic::QUERY_CHECKS {
            stats.push(CheckStat { name, runs: 0, failures: 0 });
        }
        for (name, _) in codec::BYTE_CHECKS {
            stats.push(CheckStat { name, runs: 0, failures: 0 });
        }
        StatSheet { stats }
    }

    fn record(&mut self, name: &str, failed: bool) {
        if let Some(stat) = self.stats.iter_mut().find(|s| s.name == name) {
            stat.runs += 1;
            if failed {
                stat.failures += 1;
            }
        }
    }
}

/// Runs the full conformance battery.
///
/// Every case derives its own seed, generates one input per family
/// (events, timestamp-set pairs, query block sequences, codec bytes) and
/// runs every registered check on it. Divergences are shrunk with the
/// configured budget and, when `out_dir` is set, written to disk as
/// runnable reproducers (`.wpp` for event streams, `.txt` otherwise).
pub fn run_selftest(cfg: &SelftestConfig) -> SelftestReport {
    let cx = CheckContext {
        threads: if cfg.threads.is_empty() {
            CheckContext::default().threads
        } else {
            cfg.threads.clone()
        },
    };
    let mut sheet = StatSheet::new();
    let mut divergences = Vec::new();
    if let Some(dir) = &cfg.out_dir {
        // Best-effort: reproducer writing degrades to in-memory reports.
        let _ = fs::create_dir_all(dir);
    }

    for case_index in 0..cfg.cases {
        let cseed = case_seed(cfg.seed, case_index as u64);

        // --- Family 1: WPP event streams --------------------------------
        let shape = ShapeConfig::default().with_max_events(cfg.max_events);
        let events = CaseGen::new(shape, cseed).events();
        let event_checks = differential::EVENT_CHECKS
            .iter()
            .chain(metamorphic::EVENT_META_CHECKS.iter());
        for (name, check) in event_checks {
            let verdict = check(&events, &cx);
            sheet.record(name, verdict.is_err());
            if let Err(detail) = verdict {
                let shrunk = shrink_events(&events, cfg.shrink_budget, |c| check(c, &cx).is_err());
                let repro_path = cfg.out_dir.as_deref().and_then(|dir| {
                    write_event_repro(dir, name, case_index, cseed, &detail, &shrunk)
                });
                divergences.push(Divergence {
                    check: name,
                    kind: CaseKind::Events,
                    case_index,
                    case_seed: cseed,
                    detail,
                    original_size: events.len(),
                    shrunk_size: shrunk.len(),
                    repro_path,
                });
            }
        }

        // --- Family 2: sorted timestamp-set pairs -----------------------
        let mut rng = ChaCha8Rng::seed_from_u64(cseed ^ 0x5E75);
        let straddle = case_index % 4 == 3;
        let (a, b) = if case_index % 4 == 1 {
            // Coprime-step series whose lcm overflows u32: drives the
            // intersect huge-lcm singleton fallback through the same
            // oracles as ordinary pairs.
            gen_coprime_step_pair(&mut rng)
        } else {
            (
                gen_sorted_timestamps(&mut rng, 96, 50_000, straddle),
                gen_sorted_timestamps(&mut rng, 96, 50_000, false),
            )
        };
        for (name, check) in metamorphic::SET_CHECKS {
            let verdict = check(&a, &b);
            sheet.record(name, verdict.is_err());
            if let Err(detail) = verdict {
                // Shrink each side while the other is held fixed.
                let sa = shrink_sorted(&a, cfg.shrink_budget, |c| check(c, &b).is_err());
                let sb = shrink_sorted(&b, cfg.shrink_budget, |c| check(&sa, c).is_err());
                let shrunk_size = sa.len() + sb.len();
                let body = format!("a = {sa:?}\nb = {sb:?}\n");
                let repro_path = cfg.out_dir.as_deref().and_then(|dir| {
                    write_text_repro(dir, name, case_index, cseed, &detail, &body)
                });
                divergences.push(Divergence {
                    check: name,
                    kind: CaseKind::Sets,
                    case_index,
                    case_seed: cseed,
                    detail,
                    original_size: a.len() + b.len(),
                    shrunk_size,
                    repro_path,
                });
            }
        }

        // --- Family 3: dynamic block sequences for the query fixture ----
        let seq = gen_block_sequence(&mut rng, 64);
        for (name, check) in metamorphic::QUERY_CHECKS {
            let verdict = check(&seq);
            sheet.record(name, verdict.is_err());
            if let Err(detail) = verdict {
                let shrunk = shrink_blocks(&seq, cfg.shrink_budget, |c| check(c).is_err());
                let body = format!(
                    "blocks = {:?}\n",
                    shrunk.iter().map(|b| b.as_u32()).collect::<Vec<_>>()
                );
                let repro_path = cfg.out_dir.as_deref().and_then(|dir| {
                    write_text_repro(dir, name, case_index, cseed, &detail, &body)
                });
                divergences.push(Divergence {
                    check: name,
                    kind: CaseKind::Query,
                    case_index,
                    case_seed: cseed,
                    detail,
                    original_size: seq.len(),
                    shrunk_size: shrunk.len(),
                    repro_path,
                });
            }
        }

        // --- Family 4: LZW byte inputs ----------------------------------
        let bytes = gen_lzw_bytes(&mut rng, 2_048);
        for (name, check) in codec::BYTE_CHECKS {
            let verdict = check(&bytes);
            sheet.record(name, verdict.is_err());
            if let Err(detail) = verdict {
                let shrunk = shrink_bytes(&bytes, cfg.shrink_budget, |c| check(c).is_err());
                let body = format!("bytes = {shrunk:?}\n");
                let repro_path = cfg.out_dir.as_deref().and_then(|dir| {
                    write_text_repro(dir, name, case_index, cseed, &detail, &body)
                });
                divergences.push(Divergence {
                    check: name,
                    kind: CaseKind::Bytes,
                    case_index,
                    case_seed: cseed,
                    detail,
                    original_size: bytes.len(),
                    shrunk_size: shrunk.len(),
                    repro_path,
                });
            }
        }
    }

    SelftestReport {
        cases: cfg.cases,
        checks: sheet.stats,
        divergences,
    }
}

/// Greedy chunk-then-single removal for block sequences (no rebase pass:
/// block ids are labels, not magnitudes).
fn shrink_blocks<F>(seq: &[BlockId], budget: ShrinkBudget, mut fails: F) -> Vec<BlockId>
where
    F: FnMut(&[BlockId]) -> bool,
{
    let mut best = seq.to_vec();
    let mut evals = budget.max_evals;
    loop {
        let before = best.len();
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + chunk).min(best.len());
                if evals == 0 {
                    return best;
                }
                evals -= 1;
                let mut candidate = best.clone();
                candidate.drain(start..end);
                if !candidate.is_empty() && fails(&candidate) {
                    best = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if best.len() >= before || evals == 0 {
            return best;
        }
    }
}

fn repro_stem(check: &str, case_index: usize) -> String {
    format!("repro-{check}-case{case_index}")
}

/// Writes a shrunk event-stream reproducer: a runnable `.wpp` trace plus
/// a `.txt` sidecar with the divergence detail and a readable dump.
fn write_event_repro(
    dir: &Path,
    check: &str,
    case_index: usize,
    cseed: u64,
    detail: &str,
    events: &[WppEvent],
) -> Option<PathBuf> {
    let stem = repro_stem(check, case_index);
    let wpp_path = dir.join(format!("{stem}.wpp"));
    let file = fs::File::create(&wpp_path).ok()?;
    RawWpp::from_events(events).write_to(file).ok()?;
    let mut body = String::new();
    for e in events {
        let _ = writeln!(body, "{e:?}");
    }
    let _ = write_text_repro(dir, check, case_index, cseed, detail, &body);
    Some(wpp_path)
}

/// Writes a `.txt` reproducer with a replay header and the shrunk input.
fn write_text_repro(
    dir: &Path,
    check: &str,
    case_index: usize,
    cseed: u64,
    detail: &str,
    body: &str,
) -> Option<PathBuf> {
    let path = dir.join(format!("{}.txt", repro_stem(check, case_index)));
    let text = format!(
        "check: {check}\ncase_index: {case_index}\ncase_seed: {cseed:#x}\ndetail: {detail}\n---\n{body}"
    );
    fs::write(&path, text).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_battery_passes_cleanly() {
        let cfg = SelftestConfig {
            cases: 6,
            max_events: 400,
            threads: vec![1, 2],
            ..SelftestConfig::default()
        };
        let report = run_selftest(&cfg);
        assert!(report.ok(), "unexpected divergences:\n{}", report.summary());
        assert_eq!(report.cases, 6);
        assert!(report.total_runs() > 0);
        // Every registered check ran on every case of its family.
        for stat in &report.checks {
            assert_eq!(stat.runs, 6, "{} ran {} times", stat.name, stat.runs);
        }
    }

    #[test]
    fn the_battery_is_deterministic() {
        let cfg = SelftestConfig {
            cases: 4,
            max_events: 300,
            threads: vec![1],
            ..SelftestConfig::default()
        };
        let a = run_selftest(&cfg);
        let b = run_selftest(&cfg);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_json_parses_and_carries_the_schema() {
        let cfg = SelftestConfig {
            cases: 2,
            max_events: 200,
            threads: vec![1],
            ..SelftestConfig::default()
        };
        let report = run_selftest(&cfg);
        let json = twpp::obs::parse_json(&report.to_json()).expect("valid JSON");
        assert_eq!(
            json.get("cases").and_then(|v| v.as_num()),
            Some(2.0),
            "cases field"
        );
        assert!(json.get("checks").is_some());
        assert!(json.get("divergences").is_some());
    }

    #[test]
    fn a_failing_check_is_shrunk_and_reported() {
        // Drive the shrink + report plumbing with a synthetic failure:
        // re-run the battery machinery by hand on one event family.
        let cfg = SelftestConfig::default();
        let events = CaseGen::new(
            ShapeConfig::default().with_max_events(400),
            case_seed(cfg.seed, 0),
        )
        .events();
        let fails = |c: &[WppEvent]| !c.is_empty();
        let shrunk = shrink_events(&events, cfg.shrink_budget, fails);
        assert!(shrunk.len() < events.len());
        assert!(!shrunk.is_empty());
    }
}
