//! The differential engine: holds the optimized pipeline to the naive
//! reference oracles and to itself (across thread counts and execution
//! policies).
//!
//! Every check takes a raw WPP event stream and returns `Ok(())` or a
//! human-readable divergence description. Checks are registered by name
//! in [`EVENT_CHECKS`] so the battery can count per-check statistics and
//! the shrinker can replay a *single* failing check against smaller
//! candidates.

use std::collections::HashMap;

use twpp::dbb::compact_trace;
use twpp::dedup::eliminate_redundancy_threads;
use twpp::partition::{partition, PartitionError};
use twpp::pipeline::{compact_governed, CompactedTwpp, GovOptions};
use twpp::timestamped::TimestampedTrace;
use twpp::trace::PathTrace;
use twpp::tsset::TsSet;
use twpp::TwppArchive;
use twpp_ir::FuncId;
use twpp_tracer::{RawWpp, WppEvent};

use crate::reference::{
    ref_compact_series, ref_dbb_fold, ref_dbb_unfold, ref_decode_wire, ref_dedup,
    ref_encode_wire, ref_invert, ref_partition, RefPartitionError,
};

/// An event-stream conformance check.
pub type EventCheck = fn(&[WppEvent], &CheckContext) -> Result<(), String>;

/// Shared knobs for one battery run.
#[derive(Clone, Debug)]
pub struct CheckContext {
    /// Thread counts the pipeline must be byte-identical across.
    pub threads: Vec<usize>,
}

impl Default for CheckContext {
    fn default() -> CheckContext {
        CheckContext {
            threads: (1..=8).collect(),
        }
    }
}

/// The registered differential checks, in battery order.
pub const EVENT_CHECKS: &[(&str, EventCheck)] = &[
    ("raw-words-roundtrip", check_raw_words_roundtrip),
    ("partition-oracle", check_partition_oracle),
    ("partition-reconstruct", check_partition_reconstruct),
    ("dedup-oracle", check_dedup_oracle),
    ("dbb-oracle", check_dbb_oracle),
    ("invert-oracle", check_invert_oracle),
    ("tsset-series-oracle", check_tsset_series_oracle),
    ("pipeline-thread-identity", check_pipeline_thread_identity),
    ("pipeline-reconstruct", check_pipeline_reconstruct),
    ("archive-roundtrip", check_archive_roundtrip),
    ("archive-recover-clean", check_archive_recover_clean),
    ("governed-equivalence", check_governed_equivalence),
    ("observed-byte-identity", check_observed_byte_identity),
    ("ingest-chunking-identity", check_ingest_chunking_identity),
    ("serve-drain-equivalence", check_serve_drain_equivalence),
    ("adaptive-codec-roundtrip", check_adaptive_codec_roundtrip),
    ("adaptive-legacy-equivalence", check_adaptive_legacy_equivalence),
    ("serve-equivalence", check_serve_equivalence),
];

fn fmt_events(events: &[WppEvent]) -> String {
    let head: Vec<String> = events.iter().take(24).map(|e| format!("{e:?}")).collect();
    let ellipsis = if events.len() > 24 { ", …" } else { "" };
    format!("[{}{}] ({} events)", head.join(", "), ellipsis, events.len())
}

/// Round trip through the raw 4-byte word encoding.
fn check_raw_words_roundtrip(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let wpp = RawWpp::from_events(events);
    if wpp.events() != events {
        return Err("RawWpp::events() differs from the input stream".to_string());
    }
    let back = RawWpp::from_words(wpp.words().to_vec())
        .map_err(|e| format!("from_words rejected its own encoding: {e}"))?;
    if back != wpp {
        return Err("word round-trip produced a different RawWpp".to_string());
    }
    Ok(())
}

/// Partitioning versus the naive stack partitioner: structure, offsets,
/// per-activation traces, per-function trace layout and error contract.
fn check_partition_oracle(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let wpp = RawWpp::from_events(events);
    let optimized = partition(&wpp);
    let reference = ref_partition(events);
    match (&optimized, &reference) {
        (Err(e), Ok(_)) => return Err(format!("optimized rejected ({e}); oracle accepted")),
        (Ok(_), Err(e)) => return Err(format!("optimized accepted; oracle rejected ({e:?})")),
        (Err(opt), Err(oracle)) => {
            let agree = matches!(
                (opt, oracle),
                (PartitionError::Empty, RefPartitionError::Empty)
                    | (
                        PartitionError::EventOutsideActivation,
                        RefPartitionError::OutsideActivation
                    )
                    | (PartitionError::MultipleRoots, RefPartitionError::MultipleRoots)
            );
            if !agree {
                return Err(format!("error kinds disagree: {opt:?} vs {oracle:?}"));
            }
            return Ok(());
        }
        (Ok(_), Ok(_)) => {}
    }
    let part = optimized.expect("checked above");
    let oracle = reference.expect("checked above");

    if part.dcg.node_count() != oracle.activations.len() {
        return Err(format!(
            "activation counts differ: optimized {} vs oracle {}",
            part.dcg.node_count(),
            oracle.activations.len()
        ));
    }
    // DCG nodes are created in Enter order, so index i corresponds to the
    // oracle's preorder activation i.
    for (id, node) in part.dcg.iter() {
        let a = &oracle.activations[id.index()];
        if node.func != a.func {
            return Err(format!("node {}: func {} vs {}", id.index(), node.func, a.func));
        }
        if node.offset_in_parent != a.offset_in_parent {
            return Err(format!(
                "node {}: offset_in_parent {} vs {}",
                id.index(),
                node.offset_in_parent,
                a.offset_in_parent
            ));
        }
        let children: Vec<usize> = node.children.iter().map(|c| c.index()).collect();
        if children != a.children {
            return Err(format!(
                "node {}: children {:?} vs {:?}",
                id.index(),
                children,
                a.children
            ));
        }
        if part.trace_of(id).blocks() != a.blocks.as_slice() {
            return Err(format!(
                "node {}: trace {:?} vs {:?}",
                id.index(),
                part.trace_of(id).blocks(),
                a.blocks
            ));
        }
    }
    // Per-function trace lists land in close (Exit) order.
    let expected = oracle.traces_by_function();
    if part.traces.len() != expected.len() {
        return Err("per-function trace maps have different key sets".to_string());
    }
    for (func, traces) in &part.traces {
        let Some(exp) = expected.get(func) else {
            return Err(format!("function {func} missing from oracle traces"));
        };
        let got: Vec<&[twpp_ir::BlockId]> = traces.iter().map(PathTrace::blocks).collect();
        let want: Vec<&[twpp_ir::BlockId]> = exp.iter().map(Vec::as_slice).collect();
        if got != want {
            return Err(format!("function {func}: trace list order/content differs"));
        }
    }
    Ok(())
}

/// `partition` then `reconstruct` must agree with the oracle's own
/// reconstruction (which equals the input when it was not truncated).
fn check_partition_reconstruct(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let wpp = RawWpp::from_events(events);
    let (Ok(part), Ok(oracle)) = (partition(&wpp), ref_partition(events)) else {
        return Ok(()); // rejection symmetry is checked elsewhere
    };
    let rec = part.reconstruct();
    let want = oracle.reconstruct();
    if rec.events() != want {
        return Err(format!(
            "reconstruction differs:\n  optimized {}\n  oracle    {}",
            fmt_events(&rec.events()),
            fmt_events(&want)
        ));
    }
    Ok(())
}

/// Redundancy elimination versus the naive first-seen dedup, across
/// thread counts, plus content preservation through the DCG remap.
fn check_dedup_oracle(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    let wpp = RawWpp::from_events(events);
    let (Ok(part), Ok(oracle)) = (partition(&wpp), ref_partition(events)) else {
        return Ok(());
    };
    let expected = oracle.traces_by_function();
    let mut baseline = None;
    for &t in &cx.threads {
        let mut deduped = part.clone();
        let stats = eliminate_redundancy_threads(&mut deduped, t);
        for (func, traces) in &expected {
            let (unique, _) = ref_dedup(traces);
            let got = deduped
                .traces
                .get(func)
                .ok_or_else(|| format!("threads={t}: function {func} lost by dedup"))?;
            let got_blocks: Vec<&[twpp_ir::BlockId]> =
                got.iter().map(PathTrace::blocks).collect();
            let want_blocks: Vec<&[twpp_ir::BlockId]> =
                unique.iter().map(Vec::as_slice).collect();
            if got_blocks != want_blocks {
                return Err(format!(
                    "threads={t}: function {func}: unique traces differ \
                     (optimized {} vs oracle {})",
                    got_blocks.len(),
                    want_blocks.len()
                ));
            }
            let want_stats = (traces.len() as u64, unique.len() as u64);
            let got_stats = stats
                .per_func
                .get(func)
                .copied()
                .ok_or_else(|| format!("threads={t}: stats missing function {func}"))?;
            if got_stats != want_stats {
                return Err(format!(
                    "threads={t}: function {func}: stats {got_stats:?} vs {want_stats:?}"
                ));
            }
        }
        // The remap must preserve every activation's trace content.
        for (id, _) in deduped.dcg.iter() {
            let original = &oracle.activations[id.index()].blocks;
            if deduped.trace_of(id).blocks() != original.as_slice() {
                return Err(format!(
                    "threads={t}: node {} trace content changed by dedup",
                    id.index()
                ));
            }
        }
        // Dedup is idempotent: a second pass changes nothing.
        let mut twice = deduped.clone();
        eliminate_redundancy_threads(&mut twice, t);
        if twice != deduped {
            return Err(format!("threads={t}: dedup is not idempotent"));
        }
        // And thread-count invariant.
        match &baseline {
            None => baseline = Some(deduped),
            Some(b) => {
                if *b != deduped {
                    return Err(format!("dedup output differs between threads={} and {t}",
                        cx.threads[0]));
                }
            }
        }
    }
    Ok(())
}

/// Per-trace checks against oracles. Applies `f` to every unique path
/// trace of the partitioned-and-deduplicated case.
fn for_each_unique_trace(
    events: &[WppEvent],
    mut f: impl FnMut(FuncId, &PathTrace) -> Result<(), String>,
) -> Result<(), String> {
    let wpp = RawWpp::from_events(events);
    let Ok(mut part) = partition(&wpp) else {
        return Ok(());
    };
    eliminate_redundancy_threads(&mut part, 1);
    for (func, traces) in &part.traces {
        for trace in traces {
            f(*func, trace)?;
        }
    }
    Ok(())
}

/// DBB folding versus the naive chain-rule re-derivation.
fn check_dbb_oracle(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    for_each_unique_trace(events, |func, trace| {
        let optimized = compact_trace(trace);
        let (folded, chains) = ref_dbb_fold(trace.blocks());
        if optimized.trace.blocks() != folded.as_slice() {
            return Err(format!(
                "{func}: folded trace differs on {:?}: optimized {:?} vs oracle {:?}",
                trace.blocks(),
                optimized.trace.blocks(),
                folded
            ));
        }
        let got: Vec<(twpp_ir::BlockId, Vec<twpp_ir::BlockId>)> = optimized
            .dictionary
            .iter()
            .map(|(h, c)| (h, c.to_vec()))
            .collect();
        let want: Vec<(twpp_ir::BlockId, Vec<twpp_ir::BlockId>)> =
            chains.iter().map(|(h, c)| (*h, c.clone())).collect();
        if got != want {
            return Err(format!("{func}: DBB dictionaries differ: {got:?} vs {want:?}"));
        }
        let expanded = optimized.dictionary.expand(&optimized.trace);
        if expanded != *trace {
            return Err(format!("{func}: expand(fold(t)) != t"));
        }
        if ref_dbb_unfold(&folded, &chains) != trace.blocks() {
            return Err(format!("{func}: oracle unfold broke its own fold"));
        }
        Ok(())
    })
}

/// Timestamp inversion versus the naive position map.
fn check_invert_oracle(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    for_each_unique_trace(events, |func, trace| {
        let folded = compact_trace(trace);
        let tt = TimestampedTrace::from_path_trace(&folded.trace);
        let naive = ref_invert(folded.trace.blocks());
        if tt.block_count() != naive.len() {
            return Err(format!(
                "{func}: inversion block counts differ ({} vs {})",
                tt.block_count(),
                naive.len()
            ));
        }
        for (block, ts) in tt.iter() {
            let Some(want) = naive.get(&block) else {
                return Err(format!("{func}: block {block} invented by inversion"));
            };
            if ts.to_vec() != *want {
                return Err(format!(
                    "{func}: block {block}: timestamps {:?} vs {:?}",
                    ts.to_vec(),
                    want
                ));
            }
        }
        if tt.to_path_trace() != folded.trace {
            return Err(format!("{func}: inversion round-trip differs"));
        }
        // Serialized form round-trips too.
        let words = tt
            .to_words()
            .map_err(|e| format!("{func}: to_words failed: {e}"))?;
        let mut pos = 0;
        let back = TimestampedTrace::from_words(&words, &mut pos)
            .map_err(|e| format!("{func}: from_words failed: {e}"))?;
        if pos != words.len() || back != tt {
            return Err(format!("{func}: timestamped word round-trip differs"));
        }
        Ok(())
    })
}

/// Arithmetic-series compaction and the sign-delimited wire format
/// versus the naive compactor/encoder/decoder.
fn check_tsset_series_oracle(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    for_each_unique_trace(events, |func, trace| {
        let folded = compact_trace(trace);
        for (block, values) in ref_invert(folded.trace.blocks()) {
            let set = TsSet::from_sorted(&values);
            if set.to_vec() != values {
                return Err(format!("{func}/{block}: from_sorted changed membership"));
            }
            let got: Vec<(u32, u32, u32)> = set
                .entries()
                .iter()
                .map(|e| (e.first(), e.last(), e.step()))
                .collect();
            let want = ref_compact_series(&values);
            if got != want {
                return Err(format!(
                    "{func}/{block}: series entries differ on {values:?}: \
                     optimized {got:?} vs oracle {want:?}"
                ));
            }
            let wire = set
                .to_wire()
                .map_err(|e| format!("{func}/{block}: to_wire failed: {e}"))?;
            let want_wire = ref_encode_wire(&want)
                .map_err(|e| format!("{func}/{block}: oracle encode failed: {e}"))?;
            if wire != want_wire {
                return Err(format!(
                    "{func}/{block}: wire words differ: {wire:?} vs {want_wire:?}"
                ));
            }
            let decoded = ref_decode_wire(&wire)
                .map_err(|e| format!("{func}/{block}: oracle decoder rejected wire: {e}"))?;
            if decoded != values {
                return Err(format!(
                    "{func}/{block}: oracle decode of optimized wire differs: \
                     {decoded:?} vs {values:?}"
                ));
            }
            let back = TsSet::from_wire(&wire)
                .map_err(|e| format!("{func}/{block}: from_wire failed: {e}"))?;
            if back != set {
                return Err(format!("{func}/{block}: wire round-trip differs"));
            }
        }
        Ok(())
    })
}

fn compact_at(events: &[WppEvent], threads: usize) -> Result<Option<CompactedTwpp>, String> {
    let wpp = RawWpp::from_events(events);
    let options = GovOptions {
        threads: Some(threads),
        ..GovOptions::default()
    };
    match compact_governed(&wpp, &options) {
        Ok((c, _)) => Ok(Some(c)),
        Err(twpp::pipeline::PipelineError::Partition(_)) => Ok(None),
        Err(e) => Err(format!("threads={threads}: unexpected pipeline error: {e}")),
    }
}

/// The full pipeline and the archive encoder are byte-identical across
/// every thread count.
fn check_pipeline_thread_identity(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    let mut baseline: Option<(usize, CompactedTwpp, Vec<u8>)> = None;
    for &t in &cx.threads {
        let Some(c) = compact_at(events, t)? else {
            return Ok(());
        };
        let archive =
            TwppArchive::from_compacted_named_with_threads(&c, &HashMap::new(), t);
        match &baseline {
            None => baseline = Some((t, c, archive.as_bytes().to_vec())),
            Some((t0, c0, bytes0)) => {
                if *c0 != c {
                    return Err(format!(
                        "compacted output differs between threads={t0} and threads={t}"
                    ));
                }
                if bytes0.as_slice() != archive.as_bytes() {
                    return Err(format!(
                        "archive bytes differ between threads={t0} and threads={t}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Full-pipeline semantic round trip: WPP → TWPP → WPP.
fn check_pipeline_reconstruct(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    let Ok(oracle) = ref_partition(events) else {
        return Ok(());
    };
    let rec = c.reconstruct();
    let want = oracle.reconstruct();
    if rec.events() != want {
        return Err(format!(
            "pipeline reconstruction differs:\n  optimized {}\n  oracle    {}",
            fmt_events(&rec.events()),
            fmt_events(&want)
        ));
    }
    Ok(())
}

/// Archive byte round trip: encode → parse → decode → reconstruct.
fn check_archive_roundtrip(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    let archive = TwppArchive::from_compacted(&c);
    let parsed = TwppArchive::from_bytes(archive.as_bytes().to_vec())
        .map_err(|e| format!("from_bytes rejected a fresh archive: {e}"))?;
    let back = parsed
        .to_compacted()
        .map_err(|e| format!("to_compacted failed: {e}"))?;
    if back != c {
        return Err("archive decode produced a different CompactedTwpp".to_string());
    }
    if back.reconstruct().events() != c.reconstruct().events() {
        return Err("archive round-trip changed the reconstructed WPP".to_string());
    }
    Ok(())
}

/// `recover` on pristine bytes must be a clean no-op.
fn check_archive_recover_clean(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    let archive = TwppArchive::from_compacted(&c);
    let (recovered, report) = TwppArchive::recover(archive.as_bytes())
        .map_err(|e| format!("recover rejected a clean archive: {e}"))?;
    if !report.is_clean() {
        return Err(format!("recovery report not clean on pristine bytes: {report:?}"));
    }
    if recovered.as_bytes() != archive.as_bytes() {
        return Err("recovery rewrote a clean archive".to_string());
    }
    Ok(())
}

/// Governed (fail-fast and degrade policy, unlimited budget, no faults)
/// output equals the ungoverned pipeline's, byte for byte.
fn check_governed_equivalence(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    let Some(plain) = compact_at(events, 1)? else {
        return Ok(());
    };
    let wpp = RawWpp::from_events(events);
    let threads = [
        *cx.threads.first().unwrap_or(&1),
        *cx.threads.last().unwrap_or(&1),
    ];
    for t in threads {
        for fail_fast in [true, false] {
            let options = GovOptions {
                threads: Some(t),
                fail_fast,
                ..GovOptions::default()
            };
            let (c, stats) = compact_governed(&wpp, &options)
                .map_err(|e| format!("governed pipeline failed without faults: {e}"))?;
            if !stats.degraded.failed.is_empty() {
                return Err(format!(
                    "threads={t} fail_fast={fail_fast}: spurious degradation"
                ));
            }
            if c != plain {
                return Err(format!(
                    "threads={t} fail_fast={fail_fast}: governed output differs"
                ));
            }
        }
    }
    Ok(())
}

/// A collecting observer must never change the output bytes.
fn check_observed_byte_identity(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    let Some(plain) = compact_at(events, 1)? else {
        return Ok(());
    };
    let wpp = RawWpp::from_events(events);
    let t = *cx.threads.last().unwrap_or(&1);
    let obs = twpp::obs::Obs::collecting();
    let options = GovOptions {
        threads: Some(t),
        obs: obs.clone(),
        ..GovOptions::default()
    };
    let (c, _) = compact_governed(&wpp, &options)
        .map_err(|e| format!("observed pipeline failed: {e}"))?;
    if c != plain {
        return Err("observed pipeline output differs from noop".to_string());
    }
    let plain_bytes = TwppArchive::from_compacted(&plain);
    let observed = TwppArchive::from_compacted_governed_obs(
        &c,
        &HashMap::new(),
        t,
        &[],
        &obs,
    );
    if plain_bytes.as_bytes() != observed.as_bytes() {
        return Err("observed archive bytes differ from noop".to_string());
    }
    Ok(())
}

/// Runs the full event stream through the incremental compactor in
/// `chunk`-sized `feed` batches and returns the merged archive bytes.
/// `Ok(None)` means the stream was rejected as malformed — which must
/// agree with the batch pipeline's verdict.
fn ingest_bytes(
    events: &[WppEvent],
    threads: usize,
    chunk: usize,
) -> Result<Option<Vec<u8>>, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "twpp-conf-ingest-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = twpp::IngestOptions {
        // A tiny window so even small cases seal several segments.
        seal_bytes: 256,
        durability: twpp::Durability::None,
        threads: Some(threads),
        ..twpp::IngestOptions::default()
    };
    let result = (|| {
        let mut compactor = twpp::Compactor::create(&dir, opts)
            .map_err(|e| format!("ingest create failed: {e}"))?;
        for piece in events.chunks(chunk.max(1)) {
            match compactor.feed(piece) {
                Ok(()) => {}
                Err(twpp::IngestError::Stream(_)) => return Ok(None),
                Err(e) => return Err(format!("ingest feed failed: {e}")),
            }
        }
        match compactor.finish() {
            Ok(report) => std::fs::read(&report.path)
                .map(Some)
                .map_err(|e| format!("merged archive unreadable: {e}")),
            Err(twpp::IngestError::Pipeline(twpp::pipeline::PipelineError::Partition(_))) => {
                Ok(None)
            }
            Err(e) => Err(format!("ingest finish failed: {e}")),
        }
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Incremental ingestion is chunking-invariant and batch-equivalent:
/// however the stream is split across `feed` calls, and at every thread
/// count, the merged archive is byte-identical to one-shot batch
/// compaction — and malformed streams are rejected by exactly the same
/// contract.
fn check_ingest_chunking_identity(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    let t0 = *cx.threads.first().unwrap_or(&1);
    let tn = *cx.threads.last().unwrap_or(&1);
    let batch = compact_at(events, t0)?.map(|c| {
        TwppArchive::from_compacted_named_with_threads(&c, &HashMap::new(), t0)
            .as_bytes()
            .to_vec()
    });
    let mut shapes = vec![(t0, 1usize), (t0, 7), (t0, events.len().max(2) / 2)];
    if tn != t0 {
        shapes.push((tn, 7));
    }
    shapes.dedup();
    for (t, chunk) in shapes {
        let incremental = ingest_bytes(events, t, chunk)?;
        match (&batch, &incremental) {
            (None, None) => {}
            (None, Some(_)) => {
                return Err(format!(
                    "threads={t} chunk={chunk}: incremental accepted a stream \
                     the batch pipeline rejects"
                ));
            }
            (Some(_), None) => {
                return Err(format!(
                    "threads={t} chunk={chunk}: incremental rejected a stream \
                     the batch pipeline accepts"
                ));
            }
            (Some(b), Some(i)) => {
                if b != i {
                    return Err(format!(
                        "threads={t} chunk={chunk}: merged archive differs from \
                         batch ({} vs {} bytes)",
                        i.len(),
                        b.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Streams the events through an in-process `serve-ingest` daemon over a
/// loopback socket and drains it; returns the merged archive bytes, or
/// `Ok(None)` when the stream was rejected — a verdict that must agree
/// with the batch pipeline's.
fn serve_bytes(
    events: &[WppEvent],
    threads: usize,
    chunk: usize,
) -> Result<Option<Vec<u8>>, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "twpp-conf-serve-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = twpp::ingest::ServeOptions {
        seal_bytes: 256,
        durability: twpp::Durability::None,
        threads: Some(threads),
        poll_ms: 2,
        ..twpp::ingest::ServeOptions::default()
    };
    let listener = twpp::ingest::ServeListener::bind("tcp:127.0.0.1:0")
        .map_err(|e| format!("serve bind failed: {e}"))?;
    let addr = listener.local_addr();
    let shutdown = twpp::CancelToken::new();
    let daemon = {
        let dir = dir.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || twpp::ingest::serve(&dir, listener, shutdown, opts))
    };
    let retry = twpp::Retry::new(8, 1, 4, 7);
    let feed = (|| -> Result<bool, String> {
        let hostport = addr.strip_prefix("tcp:").unwrap_or(&addr);
        let stream = std::net::TcpStream::connect(hostport)
            .map_err(|e| format!("serve connect failed: {e}"))?;
        stream.set_nodelay(true).ok();
        let mut client = twpp::net::Client::hello(stream, "src")
            .map_err(|e| format!("serve hello failed: {e}"))?;
        for piece in events.chunks(chunk.max(1)) {
            match client.send_events(piece, &retry) {
                Ok(_) => {}
                // A typed stream rejection: the daemon survives, the
                // source acknowledges nothing further.
                Err(twpp::net::NetError::Remote { .. }) => return Ok(true),
                Err(e) => return Err(format!("serve feed failed: {e}")),
            }
        }
        client.drain().map_err(|e| format!("serve drain failed: {e}"))?;
        Ok(false)
    })();
    // A rejected stream leaves no drain frame behind; stop the daemon
    // via the cancel token instead (the SIGTERM path).
    shutdown.cancel();
    let report = daemon
        .join()
        .map_err(|_| "serve thread panicked".to_string())?
        .map_err(|e| format!("serve failed: {e}"))?;
    let rejected = feed?;
    let result = if rejected || report.sources.iter().any(|s| s.failed.is_some()) {
        Ok(None)
    } else {
        match report.sources.iter().find_map(|s| s.merged.as_ref()) {
            Some(path) => std::fs::read(path)
                .map(Some)
                .map_err(|e| format!("served archive unreadable: {e}")),
            None => Ok(None),
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The streaming daemon is transport-invariant: feeding a stream over
/// the framed socket protocol and draining gracefully yields the exact
/// bytes of batch compaction, however the stream is chunked into frames
/// — and both sides reject malformed streams under the same contract.
fn check_serve_drain_equivalence(events: &[WppEvent], cx: &CheckContext) -> Result<(), String> {
    if events.is_empty() {
        // An idle source is skipped at drain ("no events; nothing to
        // merge"); there is no archive to compare.
        return Ok(());
    }
    let t = *cx.threads.first().unwrap_or(&1);
    let batch = ingest_bytes(events, t, events.len())?;
    for chunk in [13usize, events.len().max(2) / 2] {
        let served = serve_bytes(events, t, chunk)?;
        match (&batch, &served) {
            (None, None) => {}
            (None, Some(_)) => {
                return Err(format!(
                    "chunk={chunk}: the daemon accepted a stream the batch \
                     pipeline rejects"
                ));
            }
            (Some(_), None) => {
                return Err(format!(
                    "chunk={chunk}: the daemon rejected a stream the batch \
                     pipeline accepts"
                ));
            }
            (Some(b), Some(s)) => {
                if b != s {
                    return Err(format!(
                        "chunk={chunk}: drained archive differs from batch \
                         ({} vs {} bytes)",
                        s.len(),
                        b.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The query server is a pure view over its archives: every answer an
/// in-process server (the daemon's exact `handle_request` path, minus
/// the socket) gives for query/slice/currency must equal the direct
/// dataflow oracle computed from the same archive — and a step-governed
/// partial answer must be a text prefix of the complete one with
/// monotone coverage.
fn check_serve_equivalence(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "twpp-conf-fleet-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("fleet dir: {e}"))?;
    let result = serve_equivalence_in(&dir, &c);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn serve_equivalence_in(dir: &std::path::Path, c: &CompactedTwpp) -> Result<(), String> {
    use twpp::net::{BudgetSpec, CurrencyReq, Frame, QueryReq, SliceReq};
    use twpp_dataflow::dyncfg::DynCfg;

    TwppArchive::from_compacted(c)
        .save_with(&dir.join("a.twpa"), twpp::Durability::None)
        .map_err(|e| format!("fleet archive write: {e}"))?;
    let server =
        twpp_server::InProcServer::new(dir, twpp_server::ServeOptions::default())
            .map_err(|e| format!("in-process server: {e}"))?;
    let la = twpp::lazy::LazyArchive::open(&dir.join("a.twpa"))
        .map_err(|e| format!("oracle open: {e}"))?;
    let unlimited = BudgetSpec { deadline_ms: 0, max_steps: 0 };
    let expect_answer = |frame: &Frame| -> Result<twpp::net::Answer, String> {
        match server.handle(frame) {
            Frame::Answer(a) => Ok(*a),
            other => Err(format!("server refused {frame:?}: {other:?}")),
        }
    };
    // Cap per-case work: the battery runs this on every generated stream.
    for func in la.function_ids().into_iter().take(8) {
        let record = la
            .read_function(func)
            .map_err(|e| format!("oracle read {}: {e}", func.as_u32()))?;
        let budget = twpp::Limits::default().start();
        let oracle = twpp_server::query_answer(func, &record, &budget)
            .map_err(|e| format!("oracle query: {e}"))?;
        let req = QueryReq { archive: "a".into(), func: func.as_u32() };
        let served = expect_answer(&Frame::Query { req: req.clone(), budget: unlimited })?;
        if served != oracle {
            return Err(format!(
                "function {}: served query differs from the dataflow oracle \
                 ({served:?} vs {oracle:?})",
                func.as_u32()
            ));
        }

        // Governed partials: a k-step answer must agree with the k-step
        // oracle, its text must be a prefix of the complete text (after
        // dropping the truncation marker), and coverage must be
        // monotone in k.
        let total = record.traces.len();
        let mut last_coverage = -1.0f64;
        for k in [1usize, total.max(2) / 2, total.saturating_sub(1)] {
            if k == 0 || k >= total {
                continue;
            }
            let spec = BudgetSpec { deadline_ms: 0, max_steps: k as u64 };
            let part =
                expect_answer(&Frame::Query { req: req.clone(), budget: spec })?;
            let oracle_budget = twpp::Limits::default().max_steps(k as u64).start();
            let oracle_part = twpp_server::query_answer(func, &record, &oracle_budget)
                .map_err(|e| format!("oracle partial query: {e}"))?;
            if part != oracle_part {
                return Err(format!(
                    "function {} max_steps={k}: served partial differs from \
                     the governed oracle",
                    func.as_u32()
                ));
            }
            if part.complete {
                return Err(format!(
                    "function {} max_steps={k} < {total} traces: answer \
                     claims completeness",
                    func.as_u32()
                ));
            }
            let stripped = match part.text.trim_end_matches('\n').rfind('\n') {
                Some(cut) => &part.text[..=cut],
                None => part.text.as_str(),
            };
            if !oracle.text.starts_with(stripped) {
                return Err(format!(
                    "function {} max_steps={k}: partial text is not a prefix \
                     of the complete answer",
                    func.as_u32()
                ));
            }
            if part.coverage() < last_coverage {
                return Err(format!(
                    "function {} max_steps={k}: coverage regressed ({} < {})",
                    func.as_u32(),
                    part.coverage(),
                    last_coverage
                ));
            }
            last_coverage = part.coverage();
        }

        // Slice and currency over trace 0, against the direct engines.
        if total == 0 {
            continue;
        }
        let (dict_idx, tt) = &record.traces[0];
        let dcfg = DynCfg::new(tt, &record.dicts[*dict_idx as usize]);
        if dcfg.node_count() == 0 {
            continue;
        }
        let criterion = dcfg.node(dcfg.node_count() - 1).head.as_u32();
        let def_block = dcfg.node(0).head.as_u32();
        let budget = twpp::Limits::default().start();
        let slice_oracle =
            twpp_server::slice_answer(func, &record, 0, criterion, &budget)
                .map_err(|e| format!("oracle slice: {e}"))?;
        let slice_served = expect_answer(&Frame::Slice {
            req: SliceReq { archive: "a".into(), func: func.as_u32(), trace: 0, criterion },
            budget: unlimited,
        })?;
        if slice_served != slice_oracle {
            return Err(format!(
                "function {} criterion {criterion}: served slice differs \
                 from the dataflow oracle",
                func.as_u32()
            ));
        }
        let budget = twpp::Limits::default().start();
        let currency_oracle = twpp_server::currency_answer(
            func, &record, 0, def_block, criterion, &[], &budget,
        )
        .map_err(|e| format!("oracle currency: {e}"))?;
        let currency_served = expect_answer(&Frame::Currency {
            req: CurrencyReq {
                archive: "a".into(),
                func: func.as_u32(),
                trace: 0,
                def_block,
                use_block: criterion,
                redefs: Vec::new(),
            },
            budget: unlimited,
        })?;
        if currency_served != currency_oracle {
            return Err(format!(
                "function {} def {def_block} use {criterion}: served currency \
                 differs from the dataflow oracle",
                func.as_u32()
            ));
        }
    }
    Ok(())
}

/// An archive encoded with [`twpp::Codec::Adaptive`] parses, recovers
/// cleanly, and decodes back to the exact `CompactedTwpp` it came from.
fn check_adaptive_codec_roundtrip(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    let archive = TwppArchive::from_compacted_codec(
        &c,
        &HashMap::new(),
        1,
        &[],
        &twpp::obs::Obs::noop(),
        twpp::Codec::Adaptive,
    );
    let parsed = TwppArchive::from_bytes(archive.as_bytes().to_vec())
        .map_err(|e| format!("from_bytes rejected a fresh adaptive archive: {e}"))?;
    let back = parsed
        .to_compacted()
        .map_err(|e| format!("adaptive to_compacted failed: {e}"))?;
    if back != c {
        return Err("adaptive archive decode produced a different CompactedTwpp".to_string());
    }
    let (_, report) = TwppArchive::recover(archive.as_bytes())
        .map_err(|e| format!("recover rejected a clean adaptive archive: {e}"))?;
    if !report.is_clean() {
        return Err(format!(
            "recovery report not clean on pristine adaptive bytes: {report:?}"
        ));
    }
    Ok(())
}

/// Adaptive and legacy encodings of the same `CompactedTwpp` decode to
/// identical per-function records, and adaptive is never larger.
fn check_adaptive_legacy_equivalence(events: &[WppEvent], _cx: &CheckContext) -> Result<(), String> {
    let Some(c) = compact_at(events, 1)? else {
        return Ok(());
    };
    let noop = twpp::obs::Obs::noop();
    let legacy =
        TwppArchive::from_compacted_codec(&c, &HashMap::new(), 1, &[], &noop, twpp::Codec::Legacy);
    let adaptive = TwppArchive::from_compacted_codec(
        &c,
        &HashMap::new(),
        1,
        &[],
        &noop,
        twpp::Codec::Adaptive,
    );
    if adaptive.byte_len() > legacy.byte_len() {
        return Err(format!(
            "adaptive archive larger than legacy: {} vs {} bytes",
            adaptive.byte_len(),
            legacy.byte_len()
        ));
    }
    let mut ids = legacy.function_ids();
    ids.sort();
    let mut adaptive_ids = adaptive.function_ids();
    adaptive_ids.sort();
    if ids != adaptive_ids {
        return Err("adaptive and legacy archives hold different functions".to_string());
    }
    for func in ids {
        let l = legacy
            .read_function(func)
            .map_err(|e| format!("legacy read_function({func}) failed: {e}"))?;
        let a = adaptive
            .read_function(func)
            .map_err(|e| format!("adaptive read_function({func}) failed: {e}"))?;
        if l != a {
            return Err(format!("function {func}: records differ between codecs"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CaseGen, ShapeConfig};

    #[test]
    fn all_checks_pass_on_generated_cases() {
        let cx = CheckContext {
            threads: vec![1, 2, 4],
        };
        for seed in 0..24 {
            let events = CaseGen::new(ShapeConfig::small(), seed).events();
            for (name, check) in EVENT_CHECKS {
                if let Err(e) = check(&events, &cx) {
                    panic!("seed {seed}: check {name} diverged: {e}");
                }
            }
        }
    }

    #[test]
    fn checks_agree_on_malformed_streams() {
        use twpp_ir::{BlockId, FuncId};
        let cx = CheckContext::default();
        let bad = [
            vec![],
            vec![WppEvent::Block(BlockId::new(1))],
            vec![WppEvent::Exit],
            vec![
                WppEvent::Enter(FuncId::from_index(0)),
                WppEvent::Exit,
                WppEvent::Enter(FuncId::from_index(0)),
                WppEvent::Exit,
            ],
        ];
        for events in &bad {
            for (name, check) in EVENT_CHECKS {
                if let Err(e) = check(events, &cx) {
                    panic!("malformed stream: check {name} diverged: {e}");
                }
            }
        }
    }

    #[test]
    fn a_corrupted_wire_word_is_caught_by_the_oracle_decoder() {
        // Sabotage the *wire*, not the source tree: the naive decoder
        // must reject or disagree — this is the property that makes a
        // tsset.rs mutation detectable end to end.
        let values: Vec<u32> = vec![2, 4, 6, 8, 10, 13];
        let set = TsSet::from_sorted(&values);
        let mut wire = set.to_wire().unwrap();
        wire[0] += 1; // mutate the first entry's `first`
        match ref_decode_wire(&wire) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, values, "mutation must be visible"),
        }
    }
}
