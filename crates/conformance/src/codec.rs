//! Byte-level codec checks: the LZW compressor against its own decoder
//! and the bounded (untrusted-input) decoding path.
//!
//! These are differential in the same sense as the pipeline checks —
//! `compress` and `decompress` are independent implementations of the
//! two directions, so a round-trip failure localizes a bug without any
//! golden data.

use twpp::lzw::{compress, compressed_size, decompress, decompress_bounded, LzwError};

/// A byte-input conformance check.
pub type ByteCheck = fn(&[u8]) -> Result<(), String>;

/// The registered byte-level checks, in battery order.
pub const BYTE_CHECKS: &[(&str, ByteCheck)] = &[
    ("lzw-roundtrip", check_lzw_roundtrip),
    ("lzw-size-estimate", check_lzw_size_estimate),
    ("lzw-bounded-decode", check_lzw_bounded_decode),
];

/// `decompress(compress(b)) == b` for every byte input.
fn check_lzw_roundtrip(bytes: &[u8]) -> Result<(), String> {
    let packed = compress(bytes);
    let back = decompress(&packed)
        .map_err(|e| format!("decompress rejected compress output: {e}"))?;
    if back != bytes {
        return Err(format!(
            "LZW round-trip mismatch: {} bytes in, {} bytes out",
            bytes.len(),
            back.len()
        ));
    }
    Ok(())
}

/// `compressed_size` must agree exactly with the actual encoding.
fn check_lzw_size_estimate(bytes: &[u8]) -> Result<(), String> {
    let packed = compress(bytes);
    let estimated = compressed_size(bytes);
    if estimated != packed.len() {
        return Err(format!(
            "compressed_size reported {estimated} but compress produced {} bytes",
            packed.len()
        ));
    }
    Ok(())
}

/// Bounded decoding must succeed at the exact output size and fail with
/// `OutputLimit` one byte short of it (for non-empty inputs).
fn check_lzw_bounded_decode(bytes: &[u8]) -> Result<(), String> {
    let packed = compress(bytes);
    let exact = decompress_bounded(&packed, bytes.len())
        .map_err(|e| format!("bounded decode at the exact size failed: {e}"))?;
    if exact != bytes {
        return Err("bounded decode at the exact size returned different bytes".to_string());
    }
    if !bytes.is_empty() {
        match decompress_bounded(&packed, bytes.len() - 1) {
            Err(LzwError::OutputLimit(_)) => {}
            Err(other) => {
                return Err(format!(
                    "bounded decode one short failed with {other} instead of OutputLimit"
                ))
            }
            Ok(_) => {
                return Err(
                    "bounded decode one byte short of the output size succeeded".to_string()
                )
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_lzw_bytes;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn byte_checks_pass_on_generated_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..64 {
            let bytes = gen_lzw_bytes(&mut rng, 1024);
            for (name, check) in BYTE_CHECKS {
                check(&bytes).unwrap_or_else(|e| panic!("{name} failed: {e}"));
            }
        }
    }

    #[test]
    fn byte_checks_pass_on_edge_inputs() {
        let edges: [&[u8]; 4] = [b"", b"a", b"aaaaaaaaaaaaaaaa", &[0u8; 300]];
        for bytes in edges {
            for (name, check) in BYTE_CHECKS {
                check(bytes).unwrap_or_else(|e| panic!("{name} failed on {bytes:?}: {e}"));
            }
        }
    }
}
