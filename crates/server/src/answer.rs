//! Request semantics: one function per serve verb, shared verbatim by
//! the local one-shot CLI commands, the fleet server, and the
//! conformance oracle — so remote answers are byte-identical to local
//! ones *by construction*, not by parallel maintenance.
//!
//! Each answer carries both the rendered text (the exact bytes the CLI
//! prints) and the structured result (for machine comparison and for
//! the client to reproduce the CLI's degraded-exit contract).

use std::fmt::Write as _;

use twpp::archive::{ArchiveError, FunctionRecord};
use twpp::gov::{Budget, StopReason};
use twpp::lazy::LazyArchive;
use twpp::net::{Answer, AnswerData, CurrencyReq, QueryReq, SliceReq};
use twpp::TsSet;
use twpp_dataflow::dyncfg::DynCfg;
use twpp_dataflow::{
    backward_reach_governed, block_effects, solve_backward_effects_governed, QueryOutcome,
};
use twpp_ir::{BlockId, FuncId};

/// Why a request could not be answered.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AnswerError {
    /// The request is well-formed but unanswerable (unknown function,
    /// trace index out of range, block id zero, …).
    BadRequest(String),
    /// The function carries a degraded sentinel instead of traces.
    Degraded(String),
    /// The archive itself failed underneath the request.
    Archive(String),
    /// The budget ran out before any part of the answer was produced
    /// (e.g. while fetching the frame). The server maps this to `Busy`:
    /// no partial answer exists to return.
    Stopped(StopReason),
}

impl std::fmt::Display for AnswerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerError::BadRequest(m) | AnswerError::Degraded(m) | AnswerError::Archive(m) => {
                f.write_str(m)
            }
            AnswerError::Stopped(r) => write!(f, "budget exhausted before any work: {r}"),
        }
    }
}

impl std::error::Error for AnswerError {}

fn archive_err(e: ArchiveError) -> AnswerError {
    match e {
        ArchiveError::DegradedFunction(id) => AnswerError::Degraded(format!(
            "function {} failed during compaction and carries no traces \
             in this archive (degraded entry)",
            id.as_u32()
        )),
        ArchiveError::UnknownFunction(_) => AnswerError::BadRequest(e.to_string()),
        ArchiveError::Stopped(r) => AnswerError::Stopped(r),
        other => AnswerError::Archive(other.to_string()),
    }
}

/// Maps a [`StopReason`] to its wire code (`Answer::stop_code`).
pub fn stop_code(reason: StopReason) -> u32 {
    match reason {
        StopReason::Deadline => 1,
        StopReason::StepLimit => 2,
        StopReason::ByteLimit => 3,
        StopReason::Cancelled => 4,
        // `StopReason` is non-exhaustive; future reasons wire as 5
        // ("other") rather than masquerading as an existing code.
        _ => 5,
    }
}

/// Inverse of [`stop_code`]; `None` for 0 (complete) or unknown codes.
pub fn stop_reason(code: u32) -> Option<StopReason> {
    match code {
        1 => Some(StopReason::Deadline),
        2 => Some(StopReason::StepLimit),
        3 => Some(StopReason::ByteLimit),
        4 => Some(StopReason::Cancelled),
        _ => None,
    }
}

fn complete_answer(text: String, data: AnswerData) -> Answer {
    Answer {
        complete: true,
        stop_code: 0,
        coverage_bits: 1.0f64.to_bits(),
        text,
        data,
    }
}

fn partial_answer(text: String, data: AnswerData, coverage: f64, reason: StopReason) -> Answer {
    Answer {
        complete: false,
        stop_code: stop_code(reason),
        coverage_bits: coverage.clamp(0.0, 1.0).to_bits(),
        text,
        data,
    }
}

/// Answers a [`QueryReq`] against a decoded function record: the header
/// line plus every expanded path trace the budget admits — the text is
/// the exact `twpp query` stdout.
///
/// # Errors
///
/// [`AnswerError::Archive`] if the record's dictionary indices are
/// corrupt.
pub fn query_answer(
    func: FuncId,
    record: &FunctionRecord,
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "function {}: {} calls, {} unique path traces, {} dictionaries",
        func.as_u32(),
        record.call_count,
        record.traces.len(),
        record.dicts.len()
    );
    let traces = record
        .try_expanded_traces()
        .map_err(|e| AnswerError::Archive(e.to_string()))?;
    let total = traces.len();
    let mut stopped: Option<StopReason> = None;
    let mut rendered = 0usize;
    for (i, trace) in traces.iter().enumerate() {
        if let Err(reason) = budget.charge_step() {
            let _ = writeln!(text, "  … truncated ({reason})");
            stopped = Some(reason);
            break;
        }
        rendered += 1;
        let _ = writeln!(text, "  path {i}: {trace}");
    }
    let data = AnswerData::Query {
        call_count: record.call_count,
        dicts: record.dicts.len() as u32,
        total_traces: total as u32,
        rendered: rendered as u32,
    };
    Ok(match stopped {
        None => complete_answer(text, data),
        Some(reason) => {
            let coverage = if total == 0 { 1.0 } else { rendered as f64 / total as f64 };
            partial_answer(text, data, coverage, reason)
        }
    })
}

/// Builds the dynamic CFG of one unique trace of `record`.
fn dyncfg_of(record: &FunctionRecord, trace: u32) -> Result<DynCfg, AnswerError> {
    let Some((dict_idx, tt)) = record.traces.get(trace as usize) else {
        return Err(AnswerError::BadRequest(format!(
            "trace index {trace} out of range ({} unique traces)",
            record.traces.len()
        )));
    };
    let Some(dict) = record.dicts.get(*dict_idx as usize) else {
        return Err(AnswerError::Archive("corrupt archive: dictionary index".into()));
    };
    Ok(DynCfg::new(tt, dict))
}

fn block_id(raw: u32, what: &str) -> Result<BlockId, AnswerError> {
    if raw == 0 {
        return Err(AnswerError::BadRequest(format!(
            "{what} block id 0 is invalid (block ids are 1-based)"
        )));
    }
    Ok(BlockId::new(raw))
}

/// Answers a [`SliceReq`]: the backward closure over one trace's
/// dynamic CFG from the criterion block, rendered as the sorted static
/// blocks it proves reachable-backwards.
///
/// # Errors
///
/// [`AnswerError::BadRequest`] for an out-of-range trace index, a zero
/// block id, or a criterion block the trace never executes.
pub fn slice_answer(
    func: FuncId,
    record: &FunctionRecord,
    trace: u32,
    criterion: u32,
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let dcfg = dyncfg_of(record, trace)?;
    let head = block_id(criterion, "criterion")?;
    let Some(node) = dcfg.node_by_head(head) else {
        return Err(AnswerError::BadRequest(format!(
            "block {criterion} never heads a dynamic node in trace {trace}"
        )));
    };
    let out = backward_reach_governed(&dcfg, node, budget);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "slice function {} trace {trace} from block {criterion}: {} blocks, {} of {} nodes",
        func.as_u32(),
        out.blocks.len(),
        out.nodes.len(),
        dcfg.node_count()
    );
    let _ = write!(text, "  blocks:");
    for b in &out.blocks {
        let _ = write!(text, " {}", b.as_u32());
    }
    text.push('\n');
    if let Some(reason) = out.reason {
        let _ = writeln!(text, "  … truncated ({reason})");
    }
    let data = AnswerData::Slice {
        blocks: out.blocks.iter().map(|b| b.as_u32()).collect(),
    };
    Ok(match out.reason {
        None => complete_answer(text, data),
        Some(reason) => partial_answer(text, data, out.coverage, reason),
    })
}

fn wire_words(set: &TsSet) -> Result<Vec<i32>, AnswerError> {
    set.to_wire()
        .map_err(|e| AnswerError::Archive(format!("unencodable timestamp set: {e}")))
}

/// Answers a [`CurrencyReq`]: block-level currency determination — at
/// every execution of `use_block` in the trace, is `def_block`'s value
/// still current (no block in `redefs` executed since)? Runs the §4.2
/// backward propagation engine over block-identity effects.
///
/// # Errors
///
/// [`AnswerError::BadRequest`] for an out-of-range trace index, zero
/// block ids, or a use block the trace never executes.
pub fn currency_answer(
    func: FuncId,
    record: &FunctionRecord,
    trace: u32,
    def_block: u32,
    use_block: u32,
    redefs: &[u32],
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let dcfg = dyncfg_of(record, trace)?;
    let def = block_id(def_block, "def")?;
    let use_ = block_id(use_block, "use")?;
    let redefs: Vec<BlockId> = redefs
        .iter()
        .map(|&r| block_id(r, "redef"))
        .collect::<Result<_, _>>()?;
    let Some(node) = dcfg.node_by_head(use_) else {
        return Err(AnswerError::BadRequest(format!(
            "block {use_block} never heads a dynamic node in trace {trace}"
        )));
    };
    let effects = block_effects(&dcfg, def, &redefs);
    let ts = dcfg.node(node).ts.clone();
    let queried = ts.len();
    let outcome = solve_backward_effects_governed(&dcfg, &effects, node, &ts, budget);
    let r = outcome.result();
    let current = r.holds.len() as u64;
    let resolved = current + r.not_holds.len() as u64;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "currency function {} trace {trace}: def block {def_block} at use block {use_block} \
         ({} redefs)",
        func.as_u32(),
        redefs.len()
    );
    let pct = if resolved == 0 { 100.0 } else { current as f64 * 100.0 / resolved as f64 };
    let _ = writeln!(
        text,
        "  current in {current} of {resolved} resolved executions ({pct:.2}%), \
         {queried} queried"
    );
    let data = AnswerData::Currency {
        current,
        total: resolved,
        holds: wire_words(&r.holds)?,
        not_holds: wire_words(&r.not_holds)?,
    };
    Ok(match outcome {
        QueryOutcome::Partial { coverage, reason, .. } => {
            let _ = writeln!(text, "  … truncated ({reason})");
            partial_answer(text, data, coverage, reason)
        }
        _ => complete_answer(text, data),
    })
}

/// The degraded-exit message for a partial answer — shared by the local
/// commands and the remote client so exit-3 stderr is identical too.
/// `None` for complete answers.
pub fn degraded_message(answer: &Answer) -> Option<String> {
    if answer.complete {
        return None;
    }
    let reason = stop_reason(answer.stop_code)?;
    Some(match &answer.data {
        AnswerData::Query { total_traces, rendered, .. } => {
            format!("query truncated after {rendered} of {total_traces} traces ({reason})")
        }
        AnswerData::Slice { blocks } => {
            format!("slice truncated ({reason}): {} blocks resolved", blocks.len())
        }
        AnswerData::Currency { total, .. } => {
            format!("currency truncated after {total} resolved executions ({reason})")
        }
    })
}

/// Reads `func` from a lazily-opened archive and answers `req` — the
/// archive-level entry point the server and the conformance oracle
/// share. The frame read is charged to `budget` before any disk I/O.
///
/// # Errors
///
/// [`AnswerError::Degraded`] for degraded functions,
/// [`AnswerError::BadRequest`] for unknown functions or unanswerable
/// requests, [`AnswerError::Archive`] for archive corruption.
pub fn answer_query_req(
    la: &LazyArchive,
    req: &QueryReq,
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let func = FuncId::from_u32(req.func);
    let record = la.read_function_governed(func, budget).map_err(archive_err)?;
    query_answer(func, &record, budget)
}

/// [`answer_query_req`] for [`SliceReq`].
///
/// # Errors
///
/// Same as [`answer_query_req`].
pub fn answer_slice_req(
    la: &LazyArchive,
    req: &SliceReq,
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let func = FuncId::from_u32(req.func);
    let record = la.read_function_governed(func, budget).map_err(archive_err)?;
    slice_answer(func, &record, req.trace, req.criterion, budget)
}

/// [`answer_query_req`] for [`CurrencyReq`].
///
/// # Errors
///
/// Same as [`answer_query_req`].
pub fn answer_currency_req(
    la: &LazyArchive,
    req: &CurrencyReq,
    budget: &Budget,
) -> Result<Answer, AnswerError> {
    let func = FuncId::from_u32(req.func);
    let record = la.read_function_governed(func, budget).map_err(archive_err)?;
    currency_answer(
        func,
        &record,
        req.trace,
        req.def_block,
        req.use_block,
        &req.redefs,
        budget,
    )
}
