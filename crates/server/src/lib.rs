//! **twpp-server** — a multi-tenant query server over an archive fleet.
//!
//! The paper's whole-program-path queries (§4) have so far been
//! one-shot: open an archive, answer, exit. This crate turns them into
//! a *service*: a directory of `*.twpa` archives is served as a fleet
//! over the framed [`twpp::net`] protocol (TCP or Unix socket), each
//! archive opened lazily at O(footer) cost and its decoded frames kept
//! in one shared byte-capped LRU so hundreds of tenants fit in a
//! bounded memory envelope.
//!
//! The layering:
//!
//! * [`answer`] — the request semantics. One function per verb
//!   (`Query`/`Slice`/`Currency`) producing an [`twpp::net::Answer`]
//!   whose `text` is byte-identical to the local CLI's stdout; the
//!   local commands, the daemon and the conformance oracle all call
//!   these, so remote equivalence holds by construction.
//! * [`fleet`] — tenant registry: scan/rescan of the fleet root, the
//!   shared frame cache and the answer-summary cache, with per-uid
//!   invalidation when archives change or vanish.
//! * [`serve`] — the daemon: accept loop, per-connection workers,
//!   admission control (`Busy`), per-request budgets, quarantine of
//!   garbage connections, and the `/metrics`–`/status`–`/healthz`
//!   admin plane; plus [`InProcServer`] for socket-free testing.
//! * [`client`] — the blocking client used by `twpp query --remote`,
//!   `twpp serve-bench` and the e2e drills.
//!
//! See DESIGN.md §19 for the wire grammar of the serve verbs and the
//! cache-invalidation rules.

pub mod answer;
pub mod client;
pub mod fleet;
pub mod serve;

pub use answer::{
    answer_currency_req, answer_query_req, answer_slice_req, currency_answer, degraded_message,
    query_answer, slice_answer, stop_code, stop_reason, AnswerError,
};
pub use client::{Client, ClientError};
pub use fleet::{Fleet, ScanDelta, Tenant, DEFAULT_SUMMARY_CACHE_BYTES};
pub use serve::{
    serve, InProcServer, ServeError, ServeOptions, ServeReport, SERVE_STATUS_SCHEMA_VERSION,
};
