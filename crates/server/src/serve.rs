//! The multi-tenant query daemon behind `twpp serve`.
//!
//! A threaded server over one [`Fleet`]: every connection gets a worker
//! thread speaking the framed [`twpp::net`] protocol, every request a
//! [`Budget`] derived from the server's defaults and the request's
//! [`BudgetSpec`] override, and every answer one of the four governed
//! outcomes — `Answer{complete}`, `Answer{partial, coverage}`, `Busy`,
//! or a typed `Error`. The failure edges mirror the ingest daemon
//! (DESIGN.md §17): garbage framing quarantines one connection, never
//! the daemon; admission past `max_inflight` is shed with `Busy`; an
//! archive failing mid-read fails that request in isolation.
//!
//! The fleet root is rescanned every `rescan_ms` from the accept loop,
//! so archives added or removed while the daemon runs appear or vanish
//! without a restart — with both caches invalidated per retired uid
//! (see [`Fleet::rescan`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twpp::gov::{Budget, CancelToken, Limits};
use twpp::ingest::{ConnStream, ServeListener};
use twpp::net::{
    http_read_request_path, http_write_response, Frame, FramedStream, NetError,
    ERR_BAD_REQUEST, ERR_DEGRADED, ERR_DRAINING, ERR_PROTOCOL, ERR_SOURCE_FAILED,
    ERR_UNKNOWN_ARCHIVE,
};
use twpp::net::BudgetSpec;
use twpp::obs::{JsonWriter, Obs};

use crate::answer::{
    answer_currency_req, answer_query_req, answer_slice_req, AnswerError,
};
use crate::fleet::{Fleet, Tenant, DEFAULT_SUMMARY_CACHE_BYTES};

/// The version of the serve daemon's `/status` JSON document.
pub const SERVE_STATUS_SCHEMA_VERSION: u64 = 1;

/// Options for a [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Default per-request wall-clock deadline in ms (0 = unlimited).
    /// A request's [`BudgetSpec::deadline_ms`] overrides it when
    /// non-zero.
    pub default_deadline_ms: u64,
    /// Fleet-root rescan interval in ms.
    pub rescan_ms: u64,
    /// Poll interval for the accept loop and connection reads, in ms.
    pub poll_ms: u64,
    /// Maximum requests being answered at once; admission past this is
    /// shed with `Busy`.
    pub max_inflight: u64,
    /// The retry-after hint attached to `Busy` replies, in ms.
    pub retry_after_ms: u64,
    /// Whether to serve repeated requests from the answer-summary
    /// cache. Off means every request is solved from the archive.
    pub cache_answers: bool,
    /// Byte cap of the shared decoded-frame cache.
    pub frame_cache_bytes: u64,
    /// Byte cap of the answer-summary cache.
    pub summary_cache_bytes: u64,
    /// Observability sink (`twpp_serve_*` metrics).
    pub obs: Obs,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            default_deadline_ms: 0,
            rescan_ms: 1_000,
            poll_ms: 20,
            max_inflight: 64,
            retry_after_ms: 50,
            cache_answers: true,
            frame_cache_bytes: twpp::DEFAULT_FRAME_CACHE_BYTES,
            summary_cache_bytes: DEFAULT_SUMMARY_CACHE_BYTES,
            obs: Obs::noop(),
        }
    }
}

/// What a finished [`serve`] run did.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames handled.
    pub requests: u64,
    /// Answers sent (complete or partial).
    pub answers: u64,
    /// Partial answers among them.
    pub partial: u64,
    /// Typed `Error` replies sent.
    pub errors: u64,
    /// `Busy` replies sent (admission shed or pre-work exhaustion).
    pub busy: u64,
    /// Connections quarantined for protocol violations.
    pub quarantined: u64,
    /// Archives registered when the daemon stopped.
    pub archives: u64,
}

/// Errors starting or running the daemon.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The fleet root is missing or unlistable.
    Root(String),
    /// A listener could not be bound or polled.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Root(m) => write!(f, "fleet root: {m}"),
            ServeError::Io(m) => write!(f, "serve I/O: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared state of one daemon run.
struct Registry {
    fleet: Fleet,
    opts: ServeOptions,
    start: Instant,
    draining: AtomicBool,
    inflight: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    answers: AtomicU64,
    partial: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    quarantined: AtomicU64,
}

impl Registry {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The effective [`Budget`] for a request: the spec's non-zero
    /// fields override the server defaults.
    fn budget_for(&self, spec: BudgetSpec) -> Budget {
        let deadline = if spec.deadline_ms > 0 {
            spec.deadline_ms
        } else {
            self.opts.default_deadline_ms
        };
        let mut limits = Limits::new();
        if deadline > 0 {
            limits = limits.deadline_ms(deadline);
        }
        if spec.max_steps > 0 {
            limits = limits.max_steps(spec.max_steps);
        }
        limits.start()
    }

    fn busy_reply(&self) -> Frame {
        self.busy.fetch_add(1, Ordering::SeqCst);
        Frame::Busy { retry_after_ms: self.opts.retry_after_ms }
    }

    fn error_reply(&self, code: u32, message: String) -> Frame {
        self.errors.fetch_add(1, Ordering::SeqCst);
        Frame::Error { code, message }
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, Frame> {
        self.fleet.get(name).ok_or_else(|| {
            self.errors.fetch_add(1, Ordering::SeqCst);
            Frame::Error {
                code: ERR_UNKNOWN_ARCHIVE,
                message: format!("archive {name:?} is not in the served fleet"),
            }
        })
    }

    /// Answers one solvable request (`Query`/`Slice`/`Currency`).
    /// `frame` is the request as received — its encoding (which
    /// includes the budget spec) keys the summary cache.
    fn solve(&self, frame: &Frame, archive: &str, spec: BudgetSpec) -> Frame {
        let tenant = match self.tenant(archive) {
            Ok(t) => t,
            Err(reply) => return reply,
        };
        let uid = tenant.archive.archive_uid();
        let key = frame.encode();
        if self.opts.cache_answers {
            if let Some(hit) = self.fleet.summary_get(uid, &key) {
                self.count_answer(&hit);
                return Frame::Answer(Box::new((*hit).clone()));
            }
        }
        let budget = self.budget_for(spec);
        let _span = self.opts.obs.span("serve_request");
        let solved = match frame {
            Frame::Query { req, .. } => answer_query_req(&tenant.archive, req, &budget),
            Frame::Slice { req, .. } => answer_slice_req(&tenant.archive, req, &budget),
            Frame::Currency { req, .. } => answer_currency_req(&tenant.archive, req, &budget),
            _ => unreachable!("solve() is only called for solvable requests"),
        };
        match solved {
            Ok(answer) => {
                // Cache only deterministic answers: complete ones, and
                // step-limited partials (a wall-clock partial would pin
                // a timing accident into every later reply).
                let deterministic = answer.complete || answer.stop_code == 2;
                let answer = Arc::new(answer);
                let answer = if self.opts.cache_answers && deterministic {
                    self.fleet.summary_put(uid, key, answer)
                } else {
                    answer
                };
                self.count_answer(&answer);
                Frame::Answer(Box::new((*answer).clone()))
            }
            Err(AnswerError::Stopped(_)) => self.busy_reply(),
            Err(AnswerError::BadRequest(m)) => self.error_reply(ERR_BAD_REQUEST, m),
            Err(AnswerError::Degraded(m)) => self.error_reply(ERR_DEGRADED, m),
            Err(AnswerError::Archive(m)) => self.error_reply(ERR_SOURCE_FAILED, m),
        }
    }

    fn count_answer(&self, answer: &twpp::net::Answer) {
        self.answers.fetch_add(1, Ordering::SeqCst);
        if !answer.complete {
            self.partial.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Routes one request frame to its reply.
    fn handle_request(&self, frame: &Frame) -> Frame {
        self.requests.fetch_add(1, Ordering::SeqCst);
        if self.opts.obs.is_enabled() {
            self.opts
                .obs
                .counter("twpp_serve_requests_total", "Serve requests handled")
                .inc();
        }
        match frame {
            Frame::Query { req, budget } => self.solve(frame, &req.archive, *budget),
            Frame::Slice { req, budget } => self.solve(frame, &req.archive, *budget),
            Frame::Currency { req, budget } => self.solve(frame, &req.archive, *budget),
            Frame::ListArchives => Frame::Archives {
                entries: self.fleet.list().iter().map(|t| t.stat()).collect(),
            },
            Frame::Stat { archive } => match self.tenant(archive) {
                Ok(t) => Frame::Archives { entries: vec![t.stat()] },
                Err(reply) => reply,
            },
            // Ingest verbs and reply frames are protocol violations on
            // a query server; the connection is quarantined.
            Frame::Hello { .. } | Frame::Events { .. } | Frame::Seal | Frame::Drain => self
                .error_reply(
                    ERR_PROTOCOL,
                    "ingest frame sent to a query server".into(),
                ),
            Frame::Ok { .. }
            | Frame::Busy { .. }
            | Frame::Error { .. }
            | Frame::Answer(_)
            | Frame::Archives { .. } => {
                self.error_reply(ERR_PROTOCOL, "reply frame sent by client".into())
            }
        }
    }
}

/// One connection's lifecycle: stateless request/reply frames until
/// close, drain, or quarantine.
fn handle_conn(registry: &Registry, stream: Box<dyn ConnStream>) {
    registry.connections.fetch_add(1, Ordering::SeqCst);
    let mut framed = FramedStream::new(stream);
    loop {
        if registry.draining() {
            let _ = framed.send(&Frame::Error {
                code: ERR_DRAINING,
                message: "server is draining".into(),
            });
            return;
        }
        let frame = match framed.recv_step() {
            Ok(None) => continue,
            Ok(Some(frame)) => frame,
            Err(NetError::Closed) | Err(NetError::Io(_)) => return,
            Err(garbage) => {
                // Torn, oversized or corrupt framing: quarantine this
                // connection with a typed refusal; the daemon lives on.
                let _ = framed.send(&Frame::Error {
                    code: ERR_PROTOCOL,
                    message: garbage.to_string(),
                });
                registry.quarantined.fetch_add(1, Ordering::SeqCst);
                return;
            }
        };
        // Admission control: shed rather than queue when the daemon is
        // already answering `max_inflight` requests.
        let admitted = {
            let prev = registry.inflight.fetch_add(1, Ordering::SeqCst);
            prev < registry.opts.max_inflight
        };
        let reply = if admitted {
            registry.handle_request(&frame)
        } else {
            registry.busy_reply()
        };
        registry.inflight.fetch_sub(1, Ordering::SeqCst);
        let quarantine = matches!(reply, Frame::Error { code: ERR_PROTOCOL, .. });
        if framed.send(&reply).is_err() {
            return;
        }
        if quarantine {
            registry.quarantined.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }
}

/// Builds the `/status` document. Reads only atomics, the tenant map
/// lock and cache stats — never blocks on an in-flight request.
fn status_json(registry: &Registry) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status_schema_version");
    w.uint(SERVE_STATUS_SCHEMA_VERSION);
    w.key("command");
    w.string("serve");
    w.key("uptime_ms");
    w.uint(registry.start.elapsed().as_millis() as u64);
    w.key("draining");
    w.boolean(registry.draining());
    w.key("connections_total");
    w.uint(registry.connections.load(Ordering::SeqCst));
    w.key("requests_total");
    w.uint(registry.requests.load(Ordering::SeqCst));
    w.key("answers_total");
    w.uint(registry.answers.load(Ordering::SeqCst));
    w.key("partial_total");
    w.uint(registry.partial.load(Ordering::SeqCst));
    w.key("errors_total");
    w.uint(registry.errors.load(Ordering::SeqCst));
    w.key("busy_total");
    w.uint(registry.busy.load(Ordering::SeqCst));
    w.key("quarantined_total");
    w.uint(registry.quarantined.load(Ordering::SeqCst));
    for (key, stats) in [
        ("frame_cache", registry.fleet.frame_cache().stats()),
        ("summary_cache", registry.fleet.summary_stats()),
    ] {
        w.key(key);
        w.begin_object();
        w.key("resident_bytes");
        w.uint(stats.resident_bytes);
        w.key("entries");
        w.uint(stats.entries);
        w.key("hits");
        w.uint(stats.hits);
        w.key("misses");
        w.uint(stats.misses);
        w.key("evictions");
        w.uint(stats.evictions);
        w.key("evicted_bytes");
        w.uint(stats.evicted_bytes);
        w.end_object();
    }
    w.key("archives");
    w.begin_array();
    for t in registry.fleet.list() {
        w.begin_object();
        w.key("name");
        w.string(&t.name);
        w.key("functions");
        w.uint(t.archive.function_count() as u64);
        w.key("degraded");
        w.boolean(t.archive.is_degraded());
        w.key("file_bytes");
        w.uint(t.file_bytes);
        w.key("decoded_functions");
        w.uint(t.archive.decoded_count() as u64);
        w.end_object();
    }
    w.end_array();
    w.key("open_failures");
    w.begin_array();
    for (name, why) in registry.fleet.open_failures() {
        w.begin_object();
        w.key("name");
        w.string(&name);
        w.key("error");
        w.string(&why);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serves one admin-plane request: parse the GET line, route, reply,
/// close.
fn handle_admin_conn(registry: &Registry, mut stream: Box<dyn ConnStream>) {
    let path = match http_read_request_path(&mut stream) {
        Ok(p) => p,
        Err(_) => {
            let _ =
                http_write_response(&mut stream, 400, "Bad Request", "text/plain", b"bad request\n");
            return;
        }
    };
    let result = match path.as_str() {
        "/metrics" => {
            // Gauges are refreshed per scrape so an idle daemon still
            // exposes a non-empty, parseable document.
            let obs = &registry.opts.obs;
            obs.gauge("twpp_serve_uptime_ms", "Milliseconds since daemon start")
                .set(registry.start.elapsed().as_millis() as i64);
            obs.gauge("twpp_serve_archives", "Archives currently registered")
                .set(registry.fleet.len() as i64);
            obs.gauge("twpp_serve_inflight", "Requests currently being answered")
                .set(registry.inflight.load(Ordering::SeqCst) as i64);
            obs.gauge(
                "twpp_serve_frame_cache_resident_bytes",
                "Decoded frame bytes resident in the shared cache",
            )
            .set(registry.fleet.frame_cache().resident_bytes() as i64);
            obs.gauge(
                "twpp_serve_summary_cache_resident_bytes",
                "Answer summary bytes resident in the cache",
            )
            .set(registry.fleet.summary_stats().resident_bytes as i64);
            http_write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                obs.prometheus_text().as_bytes(),
            )
        }
        "/status" => http_write_response(
            &mut stream,
            200,
            "OK",
            "application/json",
            status_json(registry).as_bytes(),
        ),
        "/healthz" => {
            let (status, reason, body) = if registry.draining() {
                (503, "Service Unavailable", &b"draining\n"[..])
            } else {
                (200, "OK", &b"ok\n"[..])
            };
            http_write_response(&mut stream, status, reason, "text/plain", body)
        }
        _ => http_write_response(&mut stream, 404, "Not Found", "text/plain", b"not found\n"),
    };
    let _ = result;
}

/// Runs the daemon until `shutdown` is cancelled: initial fleet scan,
/// then accept loop with periodic rescans, then drain (stop accepting,
/// join every connection) and report.
///
/// The caller binds the listeners so it can print/persist the actual
/// addresses (`tcp:127.0.0.1:0` picks a free port) before serving.
///
/// # Errors
///
/// [`ServeError::Root`] when the fleet root cannot be listed at
/// startup; [`ServeError::Io`] when a listener cannot be polled.
pub fn serve(
    root: &std::path::Path,
    listener: ServeListener,
    admin: Option<ServeListener>,
    opts: ServeOptions,
    shutdown: &CancelToken,
) -> Result<ServeReport, ServeError> {
    let fleet = Fleet::new(root, opts.frame_cache_bytes, opts.summary_cache_bytes, opts.obs.clone());
    fleet.rescan().map_err(|e| ServeError::Root(format!("{}: {e}", root.display())))?;
    let registry = Registry {
        fleet,
        opts,
        start: Instant::now(),
        draining: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        answers: AtomicU64::new(0),
        partial: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        quarantined: AtomicU64::new(0),
    };
    listener
        .set_nonblocking()
        .map_err(|e| ServeError::Io(e.to_string()))?;
    if let Some(a) = &admin {
        a.set_nonblocking().map_err(|e| ServeError::Io(e.to_string()))?;
    }

    let poll = Duration::from_millis(registry.opts.poll_ms.max(1));
    let rescan_every = Duration::from_millis(registry.opts.rescan_ms.max(1));
    let admin_done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        if let Some(admin_listener) = admin {
            let r = &registry;
            let done = &admin_done;
            scope.spawn(move || {
                let tick = Duration::from_millis(250);
                while !done.load(Ordering::SeqCst) {
                    match admin_listener.accept(tick) {
                        Ok(Some(stream)) => handle_admin_conn(r, stream),
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => std::thread::sleep(tick),
                    }
                }
            });
        }

        let mut workers = Vec::new();
        let mut last_rescan = Instant::now();
        while !shutdown.is_cancelled() {
            if last_rescan.elapsed() >= rescan_every {
                last_rescan = Instant::now();
                // A transiently unlistable root is not fatal mid-run;
                // the registry keeps serving the archives it has.
                let _ = registry.fleet.rescan();
            }
            match listener.accept(poll) {
                Ok(Some(stream)) => {
                    let r = &registry;
                    workers.push(scope.spawn(move || handle_conn(r, stream)));
                }
                Ok(None) => std::thread::sleep(poll),
                Err(_) => std::thread::sleep(poll),
            }
        }
        registry.draining.store(true, Ordering::SeqCst);
        drop(listener);
        for w in workers {
            let _ = w.join();
        }
        admin_done.store(true, Ordering::SeqCst);
        ServeReport {
            connections: registry.connections.load(Ordering::SeqCst),
            requests: registry.requests.load(Ordering::SeqCst),
            answers: registry.answers.load(Ordering::SeqCst),
            partial: registry.partial.load(Ordering::SeqCst),
            errors: registry.errors.load(Ordering::SeqCst),
            busy: registry.busy.load(Ordering::SeqCst),
            quarantined: registry.quarantined.load(Ordering::SeqCst),
            archives: registry.fleet.len() as u64,
        }
    });
    Ok(report)
}

/// An in-process handle for answering request frames without a socket —
/// what the `serve-equivalence` conformance check and unit tests drive.
/// Shares every code path with [`serve`] except the transport.
pub struct InProcServer {
    registry: Registry,
}

impl InProcServer {
    /// Scans `root` and builds an in-process server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Root`] when the root cannot be listed.
    pub fn new(root: &std::path::Path, opts: ServeOptions) -> Result<InProcServer, ServeError> {
        let fleet =
            Fleet::new(root, opts.frame_cache_bytes, opts.summary_cache_bytes, opts.obs.clone());
        fleet
            .rescan()
            .map_err(|e| ServeError::Root(format!("{}: {e}", root.display())))?;
        Ok(InProcServer {
            registry: Registry {
                fleet,
                opts,
                start: Instant::now(),
                draining: AtomicBool::new(false),
                inflight: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                answers: AtomicU64::new(0),
                partial: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                busy: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
            },
        })
    }

    /// Answers one request frame exactly as the daemon would.
    pub fn handle(&self, frame: &Frame) -> Frame {
        self.registry.handle_request(frame)
    }

    /// Rescans the fleet root, as the daemon's timer would.
    ///
    /// # Errors
    ///
    /// `Err` when the root cannot be listed.
    pub fn rescan(&self) -> Result<crate::fleet::ScanDelta, std::io::Error> {
        self.registry.fleet.rescan()
    }

    /// The underlying fleet (for cache assertions in tests).
    pub fn fleet(&self) -> &Fleet {
        &self.registry.fleet
    }
}
