//! A blocking client for the serve protocol: `twpp query --remote`,
//! `twpp serve-bench`, and the e2e tests all connect through here.
//!
//! `Busy` replies are retried transparently (bounded, honouring the
//! server's `retry_after_ms` hint); typed `Error` replies surface as
//! [`ClientError::Refused`] carrying the wire code, so callers can map
//! `ERR_DEGRADED` to the same degraded exit the local CLI uses.

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use twpp::ingest::ConnStream;
use twpp::net::{
    Answer, ArchiveStat, BudgetSpec, CurrencyReq, Frame, FramedStream, NetError, QueryReq,
    SliceReq,
};

/// Errors talking to a serve daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or framing failed.
    Net(NetError),
    /// Connecting failed at the socket layer.
    Io(String),
    /// The server refused the request with a typed `Error` frame.
    Refused {
        /// One of the `ERR_*` codes.
        code: u32,
        /// The server's message.
        message: String,
    },
    /// The server stayed `Busy` through every retry.
    Busy,
    /// The server replied with a frame the request cannot produce.
    UnexpectedReply(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Net(e) => write!(f, "network: {e}"),
            ClientError::Io(m) => write!(f, "connect: {m}"),
            ClientError::Refused { code, message } => {
                write!(f, "server refused (code {code}): {message}")
            }
            ClientError::Busy => write!(f, "server busy through every retry"),
            ClientError::UnexpectedReply(kind) => write!(f, "unexpected reply frame: {kind}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<NetError> for ClientError {
    fn from(e: NetError) -> Self {
        ClientError::Net(e)
    }
}

/// A connected serve-protocol client.
pub struct Client {
    framed: FramedStream<Box<dyn ConnStream>>,
    /// Maximum `Busy` replies absorbed per request before giving up.
    pub busy_retries: u32,
}

impl Client {
    /// Connects to `spec`: `tcp:HOST:PORT`, `unix:PATH`, or a bare
    /// `HOST:PORT` (treated as TCP).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket cannot be opened.
    pub fn connect(spec: &str) -> Result<Client, ClientError> {
        let stream: Box<dyn ConnStream> = if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                Box::new(
                    UnixStream::connect(path)
                        .map_err(|e: io::Error| ClientError::Io(format!("{path}: {e}")))?,
                )
            }
            #[cfg(not(unix))]
            {
                return Err(ClientError::Io(format!(
                    "unix sockets are not supported on this platform: {path}"
                )));
            }
        } else {
            let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
            let s = TcpStream::connect(addr)
                .map_err(|e: io::Error| ClientError::Io(format!("{addr}: {e}")))?;
            let _ = s.set_nodelay(true);
            Box::new(s)
        };
        Ok(Client { framed: FramedStream::new(stream), busy_retries: 20 })
    }

    /// Sends `request` and returns the substantive reply, absorbing up
    /// to [`Client::busy_retries`] `Busy` frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] for typed `Error` replies,
    /// [`ClientError::Busy`] when retries run out, transport errors
    /// otherwise.
    pub fn request(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        for _ in 0..=self.busy_retries {
            self.framed.send(request)?;
            match self.framed.recv()? {
                Frame::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1_000)));
                }
                Frame::Error { code, message } => {
                    return Err(ClientError::Refused { code, message })
                }
                reply => return Ok(reply),
            }
        }
        Err(ClientError::Busy)
    }

    fn expect_answer(&mut self, request: &Frame) -> Result<Answer, ClientError> {
        match self.request(request)? {
            Frame::Answer(a) => Ok(*a),
            Frame::Archives { .. } => Err(ClientError::UnexpectedReply("Archives")),
            _ => Err(ClientError::UnexpectedReply("non-answer")),
        }
    }

    /// Remote `twpp query`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn query(&mut self, req: QueryReq, budget: BudgetSpec) -> Result<Answer, ClientError> {
        self.expect_answer(&Frame::Query { req, budget })
    }

    /// Remote `twpp slice`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn slice(&mut self, req: SliceReq, budget: BudgetSpec) -> Result<Answer, ClientError> {
        self.expect_answer(&Frame::Slice { req, budget })
    }

    /// Remote `twpp currency`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn currency(&mut self, req: CurrencyReq, budget: BudgetSpec) -> Result<Answer, ClientError> {
        self.expect_answer(&Frame::Currency { req, budget })
    }

    /// Enumerates the served fleet, name-sorted.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn list_archives(&mut self) -> Result<Vec<ArchiveStat>, ClientError> {
        match self.request(&Frame::ListArchives)? {
            Frame::Archives { entries } => Ok(entries),
            _ => Err(ClientError::UnexpectedReply("non-archives")),
        }
    }

    /// Stats one archive.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; `ERR_UNKNOWN_ARCHIVE` for absent names.
    pub fn stat(&mut self, archive: &str) -> Result<ArchiveStat, ClientError> {
        match self.request(&Frame::Stat { archive: archive.to_owned() })? {
            Frame::Archives { mut entries } if entries.len() == 1 => Ok(entries.remove(0)),
            Frame::Archives { .. } => Err(ClientError::UnexpectedReply("multi-entry stat")),
            _ => Err(ClientError::UnexpectedReply("non-archives")),
        }
    }
}
