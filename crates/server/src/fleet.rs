//! The archive fleet: every `*.twpa` directly under a root directory,
//! lazily opened as a *tenant* and kept registered across rescans.
//!
//! Opens are O(footer) ([`LazyArchive::open_with_cache`]), so a fleet of
//! hundreds of archives costs metadata reads only — decoded frames land
//! in one shared byte-capped [`FrameCache`], the single knob bounding
//! resident frame bytes across all tenants. A second byte-capped LRU
//! holds solved answer summaries keyed by `(archive uid, request bytes,
//! budget class)`; because the uid is process-unique *per open*, a
//! rescan that reopens a changed file invalidates both caches for the
//! old epoch automatically, and [`Fleet::rescan`] proactively purges
//! the dead uid's entries so the bytes come back immediately.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use twpp::cache::{ByteLruCache, CacheStats, FrameCache};
use twpp::lazy::LazyArchive;
use twpp::net::{valid_source_name, Answer, ArchiveStat};
use twpp::obs::Obs;

/// Default byte cap of the answer-summary cache.
pub const DEFAULT_SUMMARY_CACHE_BYTES: u64 = 8 << 20;

/// One archive under the fleet root, open lazily.
pub struct Tenant {
    /// Archive name: the file stem, a [`valid_source_name`].
    pub name: String,
    /// Absolute path of the backing file.
    pub path: PathBuf,
    /// Size of the backing file when (re)opened.
    pub file_bytes: u64,
    /// Modification fingerprint (`len`, mtime nanos) used to detect
    /// in-place replacement across rescans.
    fingerprint: (u64, u128),
    /// The lazily-opened archive.
    pub archive: LazyArchive,
}

impl Tenant {
    /// The [`ArchiveStat`] wire entry for this tenant.
    pub fn stat(&self) -> ArchiveStat {
        ArchiveStat {
            name: self.name.clone(),
            functions: self.archive.function_count() as u32,
            degraded: self.archive.is_degraded(),
            file_bytes: self.file_bytes,
        }
    }
}

/// What one [`Fleet::rescan`] changed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScanDelta {
    /// Archives newly opened (or reopened after an in-place change).
    pub opened: Vec<String>,
    /// Archives dropped because their file disappeared.
    pub removed: Vec<String>,
    /// Files that looked like archives but failed to open, with the
    /// error text. Retried on the next rescan.
    pub failed: Vec<(String, String)>,
}

impl ScanDelta {
    /// `true` when the rescan changed nothing.
    pub fn is_empty(&self) -> bool {
        self.opened.is_empty() && self.removed.is_empty() && self.failed.is_empty()
    }
}

/// A live registry of tenants over one fleet root.
pub struct Fleet {
    root: PathBuf,
    frames: Arc<FrameCache>,
    /// Answer summaries: `(archive uid, key bytes)` → cached reply.
    /// Key bytes are the encoded request frame plus the resolved budget
    /// class, so differently-budgeted requests never alias.
    summaries: ByteLruCache<(u64, Vec<u8>), Arc<Answer>>,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    /// Last rescan's open failures, for `/status`.
    failures: Mutex<Vec<(String, String)>>,
    obs: Obs,
}

impl Fleet {
    /// Creates an empty fleet over `root` (no scan yet) with the given
    /// cache byte caps.
    pub fn new(root: &Path, frame_cache_bytes: u64, summary_cache_bytes: u64, obs: Obs) -> Fleet {
        Fleet {
            root: root.to_path_buf(),
            frames: Arc::new(FrameCache::observed(frame_cache_bytes, obs.clone())),
            summaries: ByteLruCache::new(summary_cache_bytes),
            tenants: RwLock::new(HashMap::new()),
            failures: Mutex::new(Vec::new()),
            obs,
        }
    }

    /// The fleet root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The shared frame cache every tenant decodes into.
    pub fn frame_cache(&self) -> &Arc<FrameCache> {
        &self.frames
    }

    /// Scans the root and reconciles the registry: opens new `*.twpa`
    /// files, reopens ones whose `(len, mtime)` fingerprint changed, and
    /// drops ones whose file is gone — purging both caches for every
    /// retired uid. Open failures are recorded (visible in `/status`)
    /// and retried next time; they never take the fleet down.
    ///
    /// # Errors
    ///
    /// `Err` only when the root directory itself cannot be listed.
    pub fn rescan(&self) -> Result<ScanDelta, std::io::Error> {
        let mut delta = ScanDelta::default();
        let mut seen: HashMap<String, (PathBuf, (u64, u128))> = HashMap::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("twpa") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if !valid_source_name(stem) {
                delta
                    .failed
                    .push((stem.to_owned(), "invalid archive name".into()));
                continue;
            }
            let Ok(md) = entry.metadata() else { continue };
            if !md.is_file() {
                continue;
            }
            let mtime = md
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_nanos());
            seen.insert(stem.to_owned(), (path, (md.len(), mtime)));
        }

        let mut retired: Vec<u64> = Vec::new();
        {
            let mut tenants = write_unpoisoned(&self.tenants);
            // Drop tenants whose file vanished, remembering their uids.
            tenants.retain(|name, t| {
                if seen.contains_key(name) {
                    true
                } else {
                    retired.push(t.archive.archive_uid());
                    delta.removed.push(name.clone());
                    false
                }
            });
            // Open new files and reopen changed ones.
            for (name, (path, fingerprint)) in seen {
                if let Some(t) = tenants.get(&name) {
                    if t.fingerprint == fingerprint {
                        continue;
                    }
                    retired.push(t.archive.archive_uid());
                }
                match LazyArchive::open_with_cache(&path, Arc::clone(&self.frames), self.obs.clone())
                {
                    Ok(archive) => {
                        tenants.insert(
                            name.clone(),
                            Arc::new(Tenant {
                                name: name.clone(),
                                path,
                                file_bytes: fingerprint.0,
                                fingerprint,
                                archive,
                            }),
                        );
                        delta.opened.push(name);
                    }
                    Err(e) => delta.failed.push((name, e.to_string())),
                }
            }
        }
        for uid in retired {
            self.frames.invalidate_archive(uid);
            self.summaries.retain(|(u, _)| *u != uid);
        }
        delta.opened.sort();
        delta.removed.sort();
        delta.failed.sort();
        *lock_unpoisoned(&self.failures) = delta.failed.clone();
        if self.obs.is_enabled() {
            self.obs
                .counter("twpp_serve_rescans_total", "Fleet root rescans performed")
                .inc();
            if !delta.opened.is_empty() {
                self.obs
                    .counter("twpp_serve_archives_opened_total", "Archives (re)opened by rescans")
                    .add(delta.opened.len() as u64);
            }
            if !delta.removed.is_empty() {
                self.obs
                    .counter("twpp_serve_archives_removed_total", "Archives dropped by rescans")
                    .add(delta.removed.len() as u64);
            }
            if !delta.failed.is_empty() {
                self.obs
                    .counter("twpp_serve_open_failures_total", "Archive open failures during rescans")
                    .add(delta.failed.len() as u64);
            }
        }
        Ok(delta)
    }

    /// Looks up a tenant by archive name.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        read_unpoisoned(&self.tenants).get(name).cloned()
    }

    /// All tenants, sorted by name.
    pub fn list(&self) -> Vec<Arc<Tenant>> {
        let mut v: Vec<Arc<Tenant>> = read_unpoisoned(&self.tenants).values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.tenants).len()
    }

    /// `true` when no archive is registered.
    pub fn is_empty(&self) -> bool {
        read_unpoisoned(&self.tenants).is_empty()
    }

    /// Last rescan's open failures.
    pub fn open_failures(&self) -> Vec<(String, String)> {
        lock_unpoisoned(&self.failures).clone()
    }

    /// A cached answer for `(uid, key)`, if present. Counts
    /// `twpp_serve_summary_cache_{hits,misses}_total`.
    pub fn summary_get(&self, uid: u64, key: &[u8]) -> Option<Arc<Answer>> {
        let hit = self.summaries.get(&(uid, key.to_vec()));
        if self.obs.is_enabled() {
            let (name, help) = if hit.is_some() {
                ("twpp_serve_summary_cache_hits_total", "Answers served from the summary cache")
            } else {
                ("twpp_serve_summary_cache_misses_total", "Answers solved because the summary cache missed")
            };
            self.obs.counter(name, help).inc();
        }
        hit
    }

    /// Caches `answer` for `(uid, key)`, weighted by its rendered size.
    /// Returns the canonical entry (an earlier racing insert wins).
    pub fn summary_put(&self, uid: u64, key: Vec<u8>, answer: Arc<Answer>) -> Arc<Answer> {
        let bytes = (key.len() + answer.text.len() + 64) as u64;
        self.summaries.insert_or_get((uid, key), answer, bytes)
    }

    /// Summary-cache statistics.
    pub fn summary_stats(&self) -> CacheStats {
        self.summaries.stats()
    }

    /// Drops every cached summary (used when caching is disabled
    /// mid-flight or by tests).
    pub fn clear_summaries(&self) {
        self.summaries.clear();
    }
}

fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read_unpoisoned<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_unpoisoned<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}
