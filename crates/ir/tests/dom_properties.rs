//! Property-based validation of dominators, post-dominators and control
//! dependence against brute-force path-based definitions, on random CFGs.

use proptest::prelude::*;

use twpp_ir::cfg::Cfg;
use twpp_ir::dom::{ControlDeps, DomTree, PostDomTree};
use twpp_ir::{single_function_program, BlockId, Operand, Program, Terminator};

/// Builds a random CFG: `n` blocks, each terminated with a jump or branch
/// to arbitrary targets (the last block returns; others may too).
fn cfg_strategy() -> impl Strategy<Value = Program> {
    (2usize..10).prop_flat_map(|n| {
        let term = prop_oneof![
            Just(None),                                         // return
            (0..n).prop_map(Some).prop_map(|t| t.map(|x| (x, x))), // jump
            ((0..n), (0..n)).prop_map(|(a, b)| Some((a, b))),   // branch
        ];
        prop::collection::vec(term, n).prop_map(move |terms| {
            single_function_program(|fb| {
                let blocks: Vec<BlockId> = (0..terms.len())
                    .map(|i| if i == 0 { fb.entry() } else { fb.new_block() })
                    .collect();
                for (i, t) in terms.iter().enumerate() {
                    let term = match t {
                        None => Terminator::Return(None),
                        Some((a, b)) if a == b => Terminator::Jump(blocks[*a]),
                        Some((a, b)) => Terminator::Branch {
                            cond: Operand::Const(1),
                            then_dest: blocks[*a],
                            else_dest: blocks[*b],
                        },
                    };
                    fb.terminate(blocks[i], term);
                }
            })
            .expect("structurally valid")
        })
    })
}

/// Brute force: does every path from `entry` to `to` pass through `via`?
/// (Standard dominance via graph cut: remove `via`, check reachability.)
fn dominates_brute(cfg: &Cfg, via: BlockId, to: BlockId) -> bool {
    if via == to {
        return true;
    }
    // BFS from entry avoiding `via`.
    let mut seen = vec![false; cfg.block_count()];
    let mut work = vec![BlockId::ENTRY];
    if BlockId::ENTRY == via {
        return true; // entry dominates everything reachable
    }
    seen[BlockId::ENTRY.index()] = true;
    while let Some(b) = work.pop() {
        for &s in cfg.succs(b) {
            if s != via && !seen[s.index()] {
                seen[s.index()] = true;
                work.push(s);
            }
        }
    }
    !seen[to.index()]
}

/// Brute force post-dominance: every path from `from` to any exit passes
/// through `via`.
fn post_dominates_brute(cfg: &Cfg, via: BlockId, from: BlockId) -> bool {
    if via == from {
        return true;
    }
    // BFS from `from` avoiding `via`; if an exit is reachable, `via` does
    // not post-dominate.
    let mut seen = vec![false; cfg.block_count()];
    let mut work = vec![from];
    seen[from.index()] = true;
    while let Some(b) = work.pop() {
        if cfg.succs(b).is_empty() {
            return false;
        }
        for &s in cfg.succs(b) {
            if s != via && !seen[s.index()] {
                seen[s.index()] = true;
                work.push(s);
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominates_matches_brute_force(program in cfg_strategy()) {
        let func = program.func(program.main());
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func);
        let reachable = cfg.reachable();
        for a in func.block_ids() {
            for b in func.block_ids() {
                if !reachable[a.index()] || !reachable[b.index()] {
                    continue;
                }
                prop_assert_eq!(
                    dt.dominates(a, b),
                    dominates_brute(&cfg, a, b),
                    "dominates({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn post_dominates_matches_brute_force(program in cfg_strategy()) {
        let func = program.func(program.main());
        let cfg = Cfg::new(func);
        let pdt = PostDomTree::new(func);
        let reachable = cfg.reachable();
        // Only meaningful for blocks that can reach an exit.
        let reaches_exit = |from: BlockId| {
            let mut seen = vec![false; cfg.block_count()];
            let mut work = vec![from];
            seen[from.index()] = true;
            while let Some(b) = work.pop() {
                if cfg.succs(b).is_empty() {
                    return true;
                }
                for &s in cfg.succs(b) {
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        work.push(s);
                    }
                }
            }
            false
        };
        for a in func.block_ids() {
            for b in func.block_ids() {
                if !reachable[a.index()] || !reachable[b.index()] {
                    continue;
                }
                if !reaches_exit(b) || !reaches_exit(a) {
                    continue;
                }
                prop_assert_eq!(
                    pdt.post_dominates(a, b),
                    post_dominates_brute(&cfg, a, b),
                    "post_dominates({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn idom_strictly_dominates_and_chains_to_entry(program in cfg_strategy()) {
        let func = program.func(program.main());
        let cfg = Cfg::new(func);
        let dt = DomTree::new(func);
        let reachable = cfg.reachable();
        for b in func.block_ids() {
            if !reachable[b.index()] || b == BlockId::ENTRY {
                continue;
            }
            // Every reachable non-entry block has an idom chain ending at
            // the entry.
            let mut cur = b;
            let mut steps = 0;
            while let Some(d) = dt.idom(cur) {
                prop_assert!(dt.dominates(d, b));
                cur = d;
                steps += 1;
                prop_assert!(steps <= func.block_count(), "idom chain cycles");
            }
            prop_assert_eq!(cur, BlockId::ENTRY);
        }
    }

    #[test]
    fn control_dependence_matches_definition(program in cfg_strategy()) {
        // n is control dependent on m iff m has successors s1 (from which
        // n post-dominates) and s2 (from which it does not), per
        // Ferrante-Ottenstein-Warren.
        let func = program.func(program.main());
        let cfg = Cfg::new(func);
        let pdt = PostDomTree::new(func);
        let cds = ControlDeps::new(func);
        let reachable = cfg.reachable();
        for m in func.block_ids() {
            if !reachable[m.index()] || cfg.succs(m).len() < 2 {
                continue;
            }
            for n in func.block_ids() {
                if !reachable[n.index()] {
                    continue;
                }
                let some_arm = cfg
                    .succs(m)
                    .iter()
                    .any(|&s| pdt.post_dominates(n, s));
                let not_m = !pdt.post_dominates(n, m) || n == m;
                let expected = some_arm && not_m;
                let computed = cds.deps_of(n).contains(&m);
                prop_assert_eq!(
                    computed, expected,
                    "control dep of {} on {}", n, m
                );
            }
        }
    }
}
