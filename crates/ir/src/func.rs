//! Functions, basic blocks and whole programs.

use std::fmt;

use crate::ids::{BlockId, FuncId, Var};
use crate::stmt::{Stmt, Terminator};

/// A basic block: a straight-line sequence of statements ended by a
/// terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    pub(crate) stmts: Vec<Stmt>,
    pub(crate) term: Terminator,
}

impl BasicBlock {
    /// The statements of the block, in execution order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// The block terminator.
    pub fn terminator(&self) -> &Terminator {
        &self.term
    }

    /// Successor blocks of this block.
    pub fn successors(&self) -> Vec<BlockId> {
        self.term.successors()
    }

    /// Returns the callee of the first call statement in this block, if any.
    pub fn first_callee(&self) -> Option<FuncId> {
        self.stmts.iter().find_map(Stmt::callee)
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            writeln!(f, "    {s}")?;
        }
        writeln!(f, "    {}", self.term)
    }
}

/// A function: parameters, local variable slots and a control-flow graph of
/// basic blocks. The entry block is always [`BlockId::ENTRY`] (block 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    pub(crate) name: String,
    pub(crate) param_count: usize,
    pub(crate) var_count: usize,
    pub(crate) returns_value: bool,
    pub(crate) blocks: Vec<BasicBlock>,
}

impl Function {
    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters; parameters occupy variable slots
    /// `0..param_count`.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Total number of variable slots (parameters + locals).
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Whether the function returns a value.
    pub fn returns_value(&self) -> bool {
        self.returns_value
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; validated programs only contain
    /// in-range ids.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterates over `(id, block)` pairs in id order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Total number of statements in the function.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Iterates over all variable slots.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        (0..self.var_count).map(Var::from_index)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}({} params, {} vars){}:",
            self.name,
            self.param_count,
            self.var_count,
            if self.returns_value { " -> value" } else { "" }
        )?;
        for (id, b) in self.blocks() {
            writeln!(f, "  {id}:")?;
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A complete program: a set of functions and a designated `main`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    pub(crate) functions: Vec<Function>,
    pub(crate) main: FuncId,
}

impl Program {
    /// The entry function.
    pub fn main(&self) -> FuncId {
        self.main
    }

    /// Number of functions.
    pub fn func_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Iterates over `(id, function)` pairs in id order.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.functions.len()).map(FuncId::from_index)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, func) in self.funcs() {
            writeln!(f, "{id} = {func}")?;
        }
        writeln!(f, "main = {}", self.main)
    }
}
