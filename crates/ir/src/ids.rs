//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifier of a function within a [`Program`](crate::Program).
///
/// Function ids are dense indices assigned by
/// [`ProgramBuilder::declare`](crate::ProgramBuilder::declare) in declaration
/// order.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from its dense index.
    pub fn from_index(index: usize) -> FuncId {
        FuncId(u32::try_from(index).expect("function index exceeds u32"))
    }

    /// Returns the dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Creates a function id from a raw value previously obtained from
    /// [`FuncId::as_u32`].
    pub fn from_u32(raw: u32) -> FuncId {
        FuncId(raw)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Identifier of a basic block within a [`Function`](crate::Function).
///
/// Block ids are **1-based**, matching the paper's figures: the entry block
/// of every function is block 1.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(1);

    /// Creates a block id from its raw 1-based value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero; block ids are 1-based.
    pub fn new(raw: u32) -> BlockId {
        assert!(raw != 0, "block ids are 1-based; 0 is not a valid block id");
        BlockId(raw)
    }

    /// Creates a block id from a dense 0-based index (index 0 is block 1).
    pub fn from_index(index: usize) -> BlockId {
        BlockId(u32::try_from(index + 1).expect("block index exceeds u32"))
    }

    /// Returns the dense 0-based index of this block.
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Returns the raw 1-based id value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a local variable slot within a function.
///
/// Parameters occupy the first slots (`Var(0)..Var(param_count)`), followed
/// by locals in allocation order.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense slot index.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index exceeds u32"))
    }

    /// Returns the dense slot index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ids_are_one_based() {
        assert_eq!(BlockId::from_index(0), BlockId::ENTRY);
        assert_eq!(BlockId::new(3).index(), 2);
        assert_eq!(BlockId::from_index(2).as_u32(), 3);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_block_id_panics() {
        let _ = BlockId::new(0);
    }

    #[test]
    fn func_and_var_round_trip() {
        assert_eq!(FuncId::from_index(7).index(), 7);
        assert_eq!(FuncId::from_u32(7), FuncId::from_index(7));
        assert_eq!(Var::from_index(3).index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FuncId::from_index(2).to_string(), "fn2");
        assert_eq!(BlockId::new(4).to_string(), "b4");
        assert_eq!(Var::from_index(0).to_string(), "v0");
    }
}
