//! Static program representation for the TWPP reproduction.
//!
//! This crate provides the intermediate representation that every other crate
//! in the workspace consumes:
//!
//! * [`Program`], [`Function`] and [`BasicBlock`] — a control-flow-graph IR
//!   with executable statement semantics (assignments, loads/stores to a flat
//!   memory, calls, input/output), so the tracer can *run* programs and emit
//!   whole program paths.
//! * [`ProgramBuilder`] / [`FunctionBuilder`] — checked construction.
//! * [`cfg`](mod@cfg) — successor/predecessor views, reverse post-order and the static
//!   flowgraph sizes reported in Table 6 of the paper.
//! * [`dom`] — dominators, post-dominators and control dependence (needed by
//!   the dynamic slicing application).
//!
//! Block ids are 1-based, matching the figures of the paper (the entry block
//! of every function is block 1).
//!
//! # Example
//!
//! ```
//! use twpp_ir::{FunctionBuilder, Operand, ProgramBuilder, Rvalue, Stmt, Terminator};
//!
//! # fn main() -> Result<(), twpp_ir::IrError> {
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main", 0, false)?;
//! let mut fb = FunctionBuilder::new(0);
//! let b1 = fb.entry();
//! let v = fb.new_var();
//! fb.push(b1, Stmt::assign(v, Rvalue::Use(Operand::Const(42))));
//! fb.push(b1, Stmt::Print(Operand::Var(v)));
//! fb.terminate(b1, Terminator::Return(None));
//! pb.define(main, fb)?;
//! let program = pb.finish()?;
//! assert_eq!(program.func(program.main()).name(), "main");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod cfg;
pub mod checksum;
pub mod dom;
mod error;
mod func;
mod ids;
mod stmt;

pub use builder::{single_function_program, FunctionBuilder, ProgramBuilder};
pub use error::IrError;
pub use func::{BasicBlock, Function, Program};
pub use ids::{BlockId, FuncId, Var};
pub use stmt::{BinOp, Operand, Rvalue, Stmt, Terminator, UnOp};
