//! Static control-flow-graph views: successors, predecessors, traversal
//! orders and the flowgraph sizes reported in Table 6 of the paper.

use crate::func::Function;
use crate::ids::BlockId;

/// An immutable successor/predecessor view over a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG view of `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.block_count();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.blocks() {
            for succ in block.successors() {
                succs[id.index()].push(succ);
                preds[succ.index()].push(id);
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `block`, in branch order.
    pub fn succs(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.index()]
    }

    /// Predecessors of `block`, in discovery order.
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Total number of CFG edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Blocks with no successors (return blocks).
    pub fn exits(&self) -> Vec<BlockId> {
        (0..self.block_count())
            .map(BlockId::from_index)
            .filter(|b| self.succs(*b).is_empty())
            .collect()
    }

    /// Blocks in reverse post-order from the entry. Unreachable blocks are
    /// appended after the reachable ones, in id order.
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let n = self.block_count();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post = Vec::with_capacity(n);
        // Iterative DFS computing post-order.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        state[BlockId::ENTRY.index()] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.succs(b).len() {
                let s = self.succs(b)[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for (i, &st) in state.iter().enumerate() {
            if st == 0 {
                post.push(BlockId::from_index(i));
            }
        }
        post
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.block_count()];
        let mut work = vec![BlockId::ENTRY];
        seen[BlockId::ENTRY.index()] = true;
        while let Some(b) = work.pop() {
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

/// Node and edge counts of a flowgraph, as compared in Table 6.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct FlowgraphSize {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
}

impl FlowgraphSize {
    /// Measures the static flowgraph of `func`.
    pub fn of_function(func: &Function) -> FlowgraphSize {
        let cfg = Cfg::new(func);
        FlowgraphSize {
            nodes: cfg.block_count(),
            edges: cfg.edge_count(),
        }
    }
}

impl std::ops::Add for FlowgraphSize {
    type Output = FlowgraphSize;

    fn add(self, rhs: FlowgraphSize) -> FlowgraphSize {
        FlowgraphSize {
            nodes: self.nodes + rhs.nodes,
            edges: self.edges + rhs.edges,
        }
    }
}

impl std::iter::Sum for FlowgraphSize {
    fn sum<I: Iterator<Item = FlowgraphSize>>(iter: I) -> FlowgraphSize {
        iter.fold(FlowgraphSize::default(), std::ops::Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::single_function_program;
    use crate::stmt::{Operand, Terminator};

    /// Diamond: 1 -> {2, 3} -> 4.
    fn diamond() -> crate::Program {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: Operand::Const(1),
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b2, Terminator::Jump(b4));
            fb.terminate(b3, Terminator::Jump(b4));
            fb.terminate(b4, Terminator::Return(None));
        })
        .unwrap()
    }

    #[test]
    fn succs_and_preds() {
        let p = diamond();
        let cfg = Cfg::new(p.func(p.main()));
        assert_eq!(cfg.succs(BlockId::new(1)), &[BlockId::new(2), BlockId::new(3)]);
        assert_eq!(cfg.preds(BlockId::new(4)), &[BlockId::new(2), BlockId::new(3)]);
        assert_eq!(cfg.edge_count(), 4);
        assert_eq!(cfg.exits(), vec![BlockId::new(4)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_visits_all() {
        let p = diamond();
        let cfg = Cfg::new(p.func(p.main()));
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId::ENTRY);
        // Join block must come after both branch arms.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId::new(4)) > pos(BlockId::new(2)));
        assert!(pos(BlockId::new(4)) > pos(BlockId::new(3)));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let dead = fb.new_block();
            fb.terminate(b1, Terminator::Return(None));
            fb.terminate(dead, Terminator::Return(None));
        })
        .unwrap();
        let cfg = Cfg::new(p.func(p.main()));
        assert_eq!(cfg.reachable(), vec![true, false]);
        // RPO still lists the unreachable block last.
        assert_eq!(cfg.reverse_post_order().len(), 2);
    }

    #[test]
    fn flowgraph_size_sums() {
        let p = diamond();
        let s = FlowgraphSize::of_function(p.func(p.main()));
        assert_eq!(s, FlowgraphSize { nodes: 4, edges: 4 });
        let total: FlowgraphSize = [s, s].into_iter().sum();
        assert_eq!(total, FlowgraphSize { nodes: 8, edges: 8 });
    }
}
