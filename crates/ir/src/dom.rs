//! Dominators, post-dominators and control dependence.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
//! Dominance Algorithm"). Control dependence follows Ferrante–Ottenstein–
//! Warren: `n` is control dependent on `m` when `m` has a successor from
//! which `n` post-dominates, but `n` does not post-dominate `m` itself.
//! The dynamic slicing application in `twpp-dataflow` uses
//! [`ControlDeps`] to find the predicates controlling each block.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::ids::BlockId;

/// Immediate-dominator tree over a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn new(func: &Function) -> DomTree {
        let cfg = Cfg::new(func);
        let n = cfg.block_count();
        let rpo = cfg.reverse_post_order();
        let reachable = cfg.reachable();
        let order: Vec<usize> = rpo
            .iter()
            .filter(|b| reachable[b.index()])
            .map(|b| b.index())
            .collect();
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                cfg.preds(BlockId::from_index(i))
                    .iter()
                    .filter(|p| reachable[p.index()])
                    .map(|p| p.index())
                    .collect()
            })
            .collect();
        let idom = compute_idoms(n, BlockId::ENTRY.index(), &order, &preds);
        DomTree { idom }
    }

    /// The immediate dominator of `block`, or `None` for the entry block and
    /// unreachable blocks.
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        let i = block.index();
        match self.idom[i] {
            Some(d) if d != i => Some(BlockId::from_index(d)),
            _ => None,
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let a = a.index();
        let mut cur = b.index();
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// Immediate-post-dominator tree, computed over the reverse CFG with a
/// virtual exit joining all return blocks.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// `idom[i]` in the augmented reverse graph; index `n` is the virtual
    /// exit.
    idom: Vec<Option<usize>>,
    n: usize,
}

impl PostDomTree {
    /// Computes the post-dominator tree of `func`.
    pub fn new(func: &Function) -> PostDomTree {
        let cfg = Cfg::new(func);
        let n = cfg.block_count();
        let virtual_exit = n;
        // Reverse graph: preds of node i = successors of i in the CFG;
        // every real exit gets the virtual exit as a reverse-predecessor.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let b = BlockId::from_index(i);
            if cfg.succs(b).is_empty() {
                preds[i].push(virtual_exit);
            } else {
                for &s in cfg.succs(b) {
                    preds[i].push(s.index());
                }
            }
        }
        // RPO of the reverse graph from the virtual exit.
        let mut succs_rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs_rev[p].push(i);
            }
        }
        let order = rpo_of(&succs_rev, virtual_exit);
        let idom = compute_idoms(n + 1, virtual_exit, &order, &preds);
        PostDomTree { idom, n }
    }

    /// The immediate post-dominator of `block`. `None` means the block is
    /// immediately post-dominated by the virtual exit (e.g. a return block)
    /// or never reaches an exit.
    pub fn ipdom(&self, block: BlockId) -> Option<BlockId> {
        let i = block.index();
        match self.idom[i] {
            Some(d) if d != i && d != self.n => Some(BlockId::from_index(d)),
            _ => None,
        }
    }

    /// Returns `true` if `a` post-dominates `b` (reflexively).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let a = a.index();
        let mut cur = b.index();
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur && d != self.n => cur = d,
                Some(d) if d == self.n => return false,
                _ => return false,
            }
        }
    }

    fn ipdom_raw(&self, i: usize) -> Option<usize> {
        match self.idom[i] {
            Some(d) if d != i => Some(d),
            _ => None,
        }
    }
}

/// Control-dependence relation of a function.
#[derive(Clone, Debug)]
pub struct ControlDeps {
    /// `deps[i]` = blocks that block `i` is control dependent on.
    deps: Vec<Vec<BlockId>>,
}

impl ControlDeps {
    /// Computes control dependences for `func`.
    pub fn new(func: &Function) -> ControlDeps {
        let cfg = Cfg::new(func);
        let pdt = PostDomTree::new(func);
        let n = cfg.block_count();
        let mut deps: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for a_idx in 0..n {
            let a = BlockId::from_index(a_idx);
            for &b in cfg.succs(a) {
                // Walk the post-dominator tree from b up to (not including)
                // ipdom(a); every node on the way is control dependent on a.
                let stop = pdt.ipdom_raw(a_idx);
                let mut runner = Some(b.index());
                while let Some(r) = runner {
                    if Some(r) == stop {
                        break;
                    }
                    if r < n && !deps[r].contains(&a) {
                        deps[r].push(a);
                    }
                    runner = pdt.ipdom_raw(r);
                    if runner == Some(r) {
                        break;
                    }
                }
            }
        }
        ControlDeps { deps }
    }

    /// Blocks that `block` is control dependent on.
    pub fn deps_of(&self, block: BlockId) -> &[BlockId] {
        &self.deps[block.index()]
    }
}

/// Cooper–Harvey–Kennedy iterative immediate-dominator computation.
///
/// `order` must be a reverse post-order of the reachable nodes starting with
/// `root`; `preds` gives predecessors restricted to reachable nodes.
/// Returns `idom[i] = Some(root)`-rooted tree; unreachable nodes get `None`.
fn compute_idoms(
    n: usize,
    root: usize,
    order: &[usize],
    preds: &[Vec<usize>],
) -> Vec<Option<usize>> {
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    // Position of each node in RPO, for the intersection walk.
    let mut pos = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        pos[b] = i;
    }
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while pos[a] > pos[b] {
                a = idom[a].expect("processed node has idom");
            }
            while pos[b] > pos[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Reverse post-order of an arbitrary adjacency-list graph from `root`.
fn rpo_of(succs: &[Vec<usize>], root: usize) -> Vec<usize> {
    let n = succs.len();
    let mut state = vec![0u8; n];
    let mut post = Vec::with_capacity(n);
    let mut stack = vec![(root, 0usize)];
    state[root] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        if *next < succs[b].len() {
            let s = succs[b][*next];
            *next += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::single_function_program;
    use crate::stmt::{Operand, Terminator};
    use crate::Program;

    /// 1 -> {2,3}; 2 -> 4; 3 -> 4; 4 -> {5 (loop back to 1), 6}; 6 returns.
    fn looped() -> Program {
        single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            let b4 = fb.new_block();
            let b5 = fb.new_block();
            let b6 = fb.new_block();
            let c = Operand::Const(1);
            fb.terminate(
                b1,
                Terminator::Branch {
                    cond: c,
                    then_dest: b2,
                    else_dest: b3,
                },
            );
            fb.terminate(b2, Terminator::Jump(b4));
            fb.terminate(b3, Terminator::Jump(b4));
            fb.terminate(
                b4,
                Terminator::Branch {
                    cond: c,
                    then_dest: b5,
                    else_dest: b6,
                },
            );
            fb.terminate(b5, Terminator::Jump(b1));
            fb.terminate(b6, Terminator::Return(None));
        })
        .unwrap()
    }

    #[test]
    fn dominators_of_diamond_with_loop() {
        let p = looped();
        let f = p.func(p.main());
        let dt = DomTree::new(f);
        let b = BlockId::new;
        assert_eq!(dt.idom(b(1)), None);
        assert_eq!(dt.idom(b(2)), Some(b(1)));
        assert_eq!(dt.idom(b(3)), Some(b(1)));
        assert_eq!(dt.idom(b(4)), Some(b(1)));
        assert_eq!(dt.idom(b(5)), Some(b(4)));
        assert_eq!(dt.idom(b(6)), Some(b(4)));
        assert!(dt.dominates(b(1), b(6)));
        assert!(dt.dominates(b(4), b(5)));
        assert!(!dt.dominates(b(2), b(4)));
        assert!(dt.dominates(b(3), b(3)));
    }

    #[test]
    fn post_dominators() {
        let p = looped();
        let f = p.func(p.main());
        let pdt = PostDomTree::new(f);
        let b = BlockId::new;
        assert_eq!(pdt.ipdom(b(1)), Some(b(4)));
        assert_eq!(pdt.ipdom(b(2)), Some(b(4)));
        assert_eq!(pdt.ipdom(b(3)), Some(b(4)));
        assert_eq!(pdt.ipdom(b(4)), Some(b(6)));
        assert_eq!(pdt.ipdom(b(6)), None); // virtual exit
        assert!(pdt.post_dominates(b(4), b(1)));
        assert!(pdt.post_dominates(b(6), b(2)));
        assert!(!pdt.post_dominates(b(2), b(1)));
    }

    #[test]
    fn control_dependence_of_branch_arms() {
        let p = looped();
        let f = p.func(p.main());
        let cd = ControlDeps::new(f);
        let b = BlockId::new;
        // Branch arms depend on the branching block.
        assert!(cd.deps_of(b(2)).contains(&b(1)));
        assert!(cd.deps_of(b(3)).contains(&b(1)));
        // The join does not depend on the branch.
        assert!(!cd.deps_of(b(4)).contains(&b(1)));
        // Loop body: block 5 depends on block 4's branch; so does block 1
        // (it re-executes only if 4 takes the back edge).
        assert!(cd.deps_of(b(5)).contains(&b(4)));
        assert!(cd.deps_of(b(1)).contains(&b(4)));
    }

    #[test]
    fn straight_line_has_no_control_deps() {
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            fb.terminate(b1, Terminator::Jump(b2));
            fb.terminate(b2, Terminator::Return(None));
        })
        .unwrap();
        let cd = ControlDeps::new(p.func(p.main()));
        assert!(cd.deps_of(BlockId::new(1)).is_empty());
        assert!(cd.deps_of(BlockId::new(2)).is_empty());
    }

    #[test]
    fn dominates_is_transitive_on_chain() {
        let p = single_function_program(|fb| {
            let b1 = fb.entry();
            let b2 = fb.new_block();
            let b3 = fb.new_block();
            fb.terminate(b1, Terminator::Jump(b2));
            fb.terminate(b2, Terminator::Jump(b3));
            fb.terminate(b3, Terminator::Return(None));
        })
        .unwrap();
        let dt = DomTree::new(p.func(p.main()));
        let b = BlockId::new;
        assert!(dt.dominates(b(1), b(3)));
        assert!(dt.dominates(b(2), b(3)));
        assert!(!dt.dominates(b(3), b(2)));
    }
}
