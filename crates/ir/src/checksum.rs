//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used by the TWPA
//! archive container and the raw trace stream for region integrity checks.
//!
//! Lives in `twpp-ir` because it is the root crate of the workspace
//! dependency graph: both `twpp-tracer` (raw stream footer) and `twpp`
//! (archive regions) need the same checksum without depending on each
//! other.
//!
//! Table-driven, one table, built at compile time — fast enough for the
//! archive hot path (a few hundred MB/s) without unsafe or external
//! dependencies.

/// Lookup table for byte-at-a-time CRC32 (reflected, poly `0xEDB88320`).
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC32 hasher.
///
/// ```
/// use twpp_ir::checksum::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finalize(), 0xCBF4_3926); // the classic check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the finished checksum (the hasher may keep being updated;
    /// this just reads the current value).
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// One-shot CRC32 of a `u32` word slice in little-endian byte order —
/// matches hashing the serialized form without materialising it.
pub fn crc32_words(words: &[u32]) -> u32 {
    let mut h = Crc32::new();
    for w in words {
        h.update(&w.to_le_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // CRC-32/ISO-HDLC check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn words_match_bytes() {
        let words = [0xDEAD_BEEFu32, 0x0123_4567, 0, u32::MAX];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
