//! Statements, operands and terminators.

use std::fmt;

use crate::ids::{BlockId, FuncId, Var};

/// A value read by a statement: either a constant or a variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// An integer constant.
    Const(i64),
    /// The current value of a variable slot.
    Var(Var),
}

impl Operand {
    /// Returns the variable read by this operand, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Unary operators.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation (zero becomes 1, anything else 0).
    Not,
}

impl UnOp {
    /// Evaluates the operator on a concrete value.
    pub fn eval(self, v: i64) -> i64 {
        match self {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => i64::from(v == 0),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// Binary operators. Comparison and logical operators produce 0 or 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields 0 (the interpreter does not trap).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and of truthiness (non-zero operands).
    And,
    /// Logical or of truthiness.
    Or,
}

impl BinOp {
    /// Evaluates the operator on concrete values.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::And => i64::from(a != 0 && b != 0),
            BinOp::Or => i64::from(a != 0 || b != 0),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        })
    }
}

/// The right-hand side of an assignment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Rvalue {
    /// Copies an operand.
    Use(Operand),
    /// Applies a unary operator.
    Unary(UnOp, Operand),
    /// Applies a binary operator.
    Binary(BinOp, Operand, Operand),
    /// Loads the value stored at the given address in the flat memory.
    Load(Operand),
    /// Consumes the next value from the program's input stream (the paper's
    /// `read X`).
    Input,
    /// Calls a value-returning function.
    Call {
        /// The called function; must be declared with `returns_value`.
        callee: FuncId,
        /// Actual arguments, one per parameter.
        args: Vec<Operand>,
    },
}

impl Rvalue {
    /// Appends every variable read by this rvalue to `out`.
    pub fn collect_used_vars(&self, out: &mut Vec<Var>) {
        let mut push = |op: &Operand| {
            if let Operand::Var(v) = op {
                out.push(*v);
            }
        };
        match self {
            Rvalue::Use(a) | Rvalue::Unary(_, a) | Rvalue::Load(a) => push(a),
            Rvalue::Binary(_, a, b) => {
                push(a);
                push(b);
            }
            Rvalue::Input => {}
            Rvalue::Call { args, .. } => args.iter().for_each(push),
        }
    }

    /// Returns the function called by this rvalue, if it is a call.
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            Rvalue::Call { callee, .. } => Some(*callee),
            _ => None,
        }
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(a) => write!(f, "{a}"),
            Rvalue::Unary(op, a) => write!(f, "{op}{a}"),
            Rvalue::Binary(op, a, b) => write!(f, "{a} {op} {b}"),
            Rvalue::Load(a) => write!(f, "load({a})"),
            Rvalue::Input => f.write_str("input()"),
            Rvalue::Call { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A statement inside a basic block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `dest = rvalue`.
    Assign {
        /// The variable slot written.
        dest: Var,
        /// The computed value.
        rvalue: Rvalue,
    },
    /// `store(addr, value)` into the flat memory.
    Store {
        /// The address written.
        addr: Operand,
        /// The value stored.
        value: Operand,
    },
    /// Writes a value to the program's output stream.
    Print(Operand),
    /// Calls a function and discards its result (if any).
    Call {
        /// The called function.
        callee: FuncId,
        /// Actual arguments, one per parameter.
        args: Vec<Operand>,
    },
}

impl Stmt {
    /// Convenience constructor for [`Stmt::Assign`].
    pub fn assign(dest: Var, rvalue: Rvalue) -> Stmt {
        Stmt::Assign { dest, rvalue }
    }

    /// Returns the variable defined (written) by this statement, if any.
    pub fn defined_var(&self) -> Option<Var> {
        match self {
            Stmt::Assign { dest, .. } => Some(*dest),
            _ => None,
        }
    }

    /// Returns every variable read by this statement.
    pub fn used_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        match self {
            Stmt::Assign { rvalue, .. } => rvalue.collect_used_vars(&mut out),
            Stmt::Store { addr, value } => {
                out.extend(addr.as_var());
                out.extend(value.as_var());
            }
            Stmt::Print(a) => out.extend(a.as_var()),
            Stmt::Call { args, .. } => out.extend(args.iter().filter_map(|a| a.as_var())),
        }
        out
    }

    /// Returns the function called by this statement, if any.
    pub fn callee(&self) -> Option<FuncId> {
        match self {
            Stmt::Assign { rvalue, .. } => rvalue.callee(),
            Stmt::Call { callee, .. } => Some(*callee),
            _ => None,
        }
    }

    /// Returns `true` if this statement loads from memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Stmt::Assign {
                rvalue: Rvalue::Load(_),
                ..
            }
        )
    }

    /// Returns `true` if this statement stores to memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Stmt::Store { .. })
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign { dest, rvalue } => write!(f, "{dest} = {rvalue}"),
            Stmt::Store { addr, value } => write!(f, "store({addr}, {value})"),
            Stmt::Print(a) => write!(f, "print({a})"),
            Stmt::Call { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// The terminator of a basic block, deciding control transfer.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on the truthiness (non-zero) of `cond`.
    Branch {
        /// The branch condition.
        cond: Operand,
        /// Successor when `cond` is non-zero.
        then_dest: BlockId,
        /// Successor when `cond` is zero.
        else_dest: BlockId,
    },
    /// Returns from the function, optionally with a value.
    Return(Option<Operand>),
}

impl Terminator {
    /// Returns the possible successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(d) => vec![*d],
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => vec![*then_dest, *else_dest],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Returns every variable read by this terminator.
    pub fn used_vars(&self) -> Vec<Var> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_var().into_iter().collect(),
            Terminator::Return(Some(op)) => op.as_var().into_iter().collect(),
            _ => Vec::new(),
        }
    }

    /// Returns `true` if this terminator is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(d) => write!(f, "jump {d}"),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => write!(f, "branch {cond} ? {then_dest} : {else_dest}"),
            Terminator::Return(None) => f.write_str("return"),
            Terminator::Return(Some(op)) => write!(f, "return {op}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_matches_semantics() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::And.eval(2, 0), 0);
        assert_eq!(BinOp::Or.eval(0, -1), 1);
        assert_eq!(BinOp::Sub.eval(i64::MIN, 1), i64::MAX);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(3), 0);
    }

    #[test]
    fn def_use_sets() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        let s = Stmt::assign(
            v0,
            Rvalue::Binary(BinOp::Add, Operand::Var(v1), Operand::Const(1)),
        );
        assert_eq!(s.defined_var(), Some(v0));
        assert_eq!(s.used_vars(), vec![v1]);

        let store = Stmt::Store {
            addr: Operand::Var(v0),
            value: Operand::Var(v1),
        };
        assert_eq!(store.defined_var(), None);
        assert_eq!(store.used_vars(), vec![v0, v1]);
        assert!(store.is_store());
    }

    #[test]
    fn call_detection() {
        let f = FuncId::from_index(3);
        let s = Stmt::Call {
            callee: f,
            args: vec![Operand::Const(1)],
        };
        assert_eq!(s.callee(), Some(f));
        let a = Stmt::assign(
            Var::from_index(0),
            Rvalue::Call {
                callee: f,
                args: vec![],
            },
        );
        assert_eq!(a.callee(), Some(f));
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Const(1),
            then_dest: BlockId::new(2),
            else_dest: BlockId::new(3),
        };
        assert_eq!(t.successors(), vec![BlockId::new(2), BlockId::new(3)]);
        assert!(t.is_branch());
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn display_round() {
        let v = Var::from_index(1);
        let s = Stmt::assign(
            v,
            Rvalue::Binary(BinOp::Mul, Operand::Var(v), Operand::Const(2)),
        );
        assert_eq!(s.to_string(), "v1 = v1 * 2");
        assert_eq!(
            Terminator::Jump(BlockId::new(5)).to_string(),
            "jump b5"
        );
    }
}
