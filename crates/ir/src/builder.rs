//! Checked construction of programs and functions.

use std::collections::HashMap;

use crate::error::IrError;
use crate::func::{BasicBlock, Function, Program};
use crate::ids::{BlockId, FuncId, Var};
use crate::stmt::{Rvalue, Stmt, Terminator};

/// Incrementally builds one [`Function`] body.
///
/// A fresh builder already contains the (empty) entry block, block 1. Blocks
/// must be terminated with [`FunctionBuilder::terminate`] before the function
/// is handed to [`ProgramBuilder::define`].
#[derive(Clone, Debug)]
pub struct FunctionBuilder {
    param_count: usize,
    var_count: usize,
    returns_value: bool,
    blocks: Vec<(Vec<Stmt>, Option<Terminator>)>,
}

impl FunctionBuilder {
    /// Creates a builder for a function with `param_count` parameters that
    /// does not return a value.
    pub fn new(param_count: usize) -> FunctionBuilder {
        FunctionBuilder {
            param_count,
            var_count: param_count,
            returns_value: false,
            blocks: vec![(Vec::new(), None)],
        }
    }

    /// Creates a builder for a function that returns a value.
    pub fn new_returning(param_count: usize) -> FunctionBuilder {
        let mut fb = FunctionBuilder::new(param_count);
        fb.returns_value = true;
        fb
    }

    /// The entry block (always block 1).
    pub fn entry(&self) -> BlockId {
        BlockId::ENTRY
    }

    /// Returns the variable slot of the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid parameter index.
    pub fn param(&self, i: usize) -> Var {
        assert!(i < self.param_count, "parameter index out of range");
        Var::from_index(i)
    }

    /// Allocates a fresh local variable slot.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.var_count);
        self.var_count += 1;
        v
    }

    /// Allocates a fresh, empty basic block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId::from_index(self.blocks.len() - 1)
    }

    /// Appends a statement to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder or is already
    /// terminated.
    pub fn push(&mut self, block: BlockId, stmt: Stmt) -> &mut FunctionBuilder {
        let (stmts, term) = &mut self.blocks[block.index()];
        assert!(term.is_none(), "cannot append to a terminated block");
        stmts.push(stmt);
        self
    }

    /// Sets the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn terminate(&mut self, block: BlockId, term: Terminator) -> &mut FunctionBuilder {
        let slot = &mut self.blocks[block.index()].1;
        assert!(slot.is_none(), "block terminated twice");
        *slot = Some(term);
        self
    }

    /// Returns whether `block` already has a terminator.
    pub fn is_terminated(&self, block: BlockId) -> bool {
        self.blocks[block.index()].1.is_some()
    }

    fn finish(self, name: &str) -> Result<Function, IrError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, (stmts, term)) in self.blocks.into_iter().enumerate() {
            let term = term.ok_or_else(|| IrError::Unterminated {
                func: name.to_owned(),
                block: BlockId::from_index(i),
            })?;
            blocks.push(BasicBlock { stmts, term });
        }
        Ok(Function {
            name: name.to_owned(),
            param_count: self.param_count,
            var_count: self.var_count,
            returns_value: self.returns_value,
            blocks,
        })
    }
}

/// Builds a validated [`Program`].
///
/// Usage: [`declare`](ProgramBuilder::declare) every function first (so
/// mutually recursive calls can reference each other's [`FuncId`]s), then
/// [`define`](ProgramBuilder::define) each body, then
/// [`finish`](ProgramBuilder::finish).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    names: Vec<String>,
    signatures: Vec<(usize, bool)>,
    bodies: Vec<Option<FunctionBuilder>>,
    by_name: HashMap<String, FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a function and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateFunction`] if the name was already
    /// declared.
    pub fn declare(
        &mut self,
        name: &str,
        param_count: usize,
        returns_value: bool,
    ) -> Result<FuncId, IrError> {
        if self.by_name.contains_key(name) {
            return Err(IrError::DuplicateFunction(name.to_owned()));
        }
        let id = FuncId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.signatures.push((param_count, returns_value));
        self.bodies.push(None);
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up a previously declared function by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Supplies the body for a declared function.
    ///
    /// # Errors
    ///
    /// Returns an error if the body was already defined, a block is
    /// unterminated, or the builder's parameter count disagrees with the
    /// declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder's `declare`.
    pub fn define(&mut self, id: FuncId, body: FunctionBuilder) -> Result<(), IrError> {
        let (param_count, returns_value) = self.signatures[id.index()];
        assert_eq!(
            body.param_count, param_count,
            "body parameter count disagrees with declaration"
        );
        assert_eq!(
            body.returns_value, returns_value,
            "body return kind disagrees with declaration"
        );
        if self.bodies[id.index()].is_some() {
            return Err(IrError::DuplicateBody(id));
        }
        self.bodies[id.index()] = Some(body);
        Ok(())
    }

    /// Validates and produces the final program.
    ///
    /// # Errors
    ///
    /// Returns the first validation error found: missing bodies or `main`,
    /// out-of-range block/variable/function references, call arity and
    /// return-kind mismatches.
    pub fn finish(self) -> Result<Program, IrError> {
        let main = *self.by_name.get("main").ok_or(IrError::MissingMain)?;
        if self.signatures[main.index()].0 != 0 {
            return Err(IrError::MainHasParams);
        }
        let mut functions = Vec::with_capacity(self.names.len());
        for (i, body) in self.bodies.into_iter().enumerate() {
            let name = &self.names[i];
            let body = body.ok_or_else(|| IrError::MissingBody(name.clone()))?;
            functions.push(body.finish(name)?);
        }
        let program = Program { functions, main };
        validate(&program)?;
        Ok(program)
    }
}

/// Checks cross-references of a fully built program.
fn validate(program: &Program) -> Result<(), IrError> {
    for (_, func) in program.funcs() {
        if func.block_count() == 0 {
            return Err(IrError::EmptyFunction(func.name().to_owned()));
        }
        for (_, block) in func.blocks() {
            for stmt in block.stmts() {
                validate_stmt(program, func, stmt)?;
            }
            for succ in block.successors() {
                if succ.index() >= func.block_count() {
                    return Err(IrError::UnknownBlock {
                        func: func.name().to_owned(),
                        block: succ,
                    });
                }
            }
            for var in block.terminator().used_vars() {
                check_var(func, var)?;
            }
        }
    }
    Ok(())
}

fn validate_stmt(program: &Program, func: &Function, stmt: &Stmt) -> Result<(), IrError> {
    if let Some(def) = stmt.defined_var() {
        check_var(func, def)?;
    }
    for var in stmt.used_vars() {
        check_var(func, var)?;
    }
    let (callee, args, needs_value) = match stmt {
        Stmt::Call { callee, args } => (Some(*callee), args.len(), false),
        Stmt::Assign {
            rvalue: Rvalue::Call { callee, args },
            ..
        } => (Some(*callee), args.len(), true),
        _ => (None, 0, false),
    };
    if let Some(callee) = callee {
        if callee.index() >= program.func_count() {
            return Err(IrError::UnknownCallee {
                func: func.name().to_owned(),
                callee,
            });
        }
        let target = program.func(callee);
        if target.param_count() != args {
            return Err(IrError::ArityMismatch {
                func: func.name().to_owned(),
                callee: target.name().to_owned(),
                expected: target.param_count(),
                found: args,
            });
        }
        if needs_value && !target.returns_value() {
            return Err(IrError::VoidCallee {
                func: func.name().to_owned(),
                callee: target.name().to_owned(),
            });
        }
    }
    Ok(())
}

fn check_var(func: &Function, var: Var) -> Result<(), IrError> {
    if var.index() >= func.var_count() {
        return Err(IrError::UnknownVar {
            func: func.name().to_owned(),
            var,
        });
    }
    Ok(())
}

/// Convenience: builds the one-function program `main { <entry> }` from a
/// closure that populates the body. Useful in tests and examples.
///
/// # Errors
///
/// Propagates any validation error from the built program.
pub fn single_function_program(
    build: impl FnOnce(&mut FunctionBuilder),
) -> Result<Program, IrError> {
    let mut pb = ProgramBuilder::new();
    let main = pb.declare("main", 0, false)?;
    let mut fb = FunctionBuilder::new(0);
    build(&mut fb);
    pb.define(main, fb)?;
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{BinOp, Operand};

    fn trivially_terminated(fb: &mut FunctionBuilder) {
        let e = fb.entry();
        fb.terminate(e, Terminator::Return(None));
    }

    #[test]
    fn minimal_program_builds() {
        let p = single_function_program(trivially_terminated).unwrap();
        assert_eq!(p.func_count(), 1);
        assert_eq!(p.func(p.main()).block_count(), 1);
    }

    #[test]
    fn missing_main_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", 0, false).unwrap();
        let mut fb = FunctionBuilder::new(0);
        trivially_terminated(&mut fb);
        pb.define(f, fb).unwrap();
        assert_eq!(pb.finish().unwrap_err(), IrError::MissingMain);
    }

    #[test]
    fn duplicate_declaration_is_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.declare("f", 0, false).unwrap();
        assert!(matches!(
            pb.declare("f", 1, true),
            Err(IrError::DuplicateFunction(_))
        ));
    }

    #[test]
    fn unterminated_block_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0, false).unwrap();
        let fb = FunctionBuilder::new(0);
        pb.define(main, fb).unwrap();
        assert!(matches!(
            pb.finish(),
            Err(IrError::Unterminated { .. })
        ));
    }

    #[test]
    fn unknown_block_reference_is_rejected() {
        let result = single_function_program(|fb| {
            let e = fb.entry();
            fb.terminate(e, Terminator::Jump(BlockId::new(9)));
        });
        assert!(matches!(result, Err(IrError::UnknownBlock { .. })));
    }

    #[test]
    fn unknown_var_is_rejected() {
        let result = single_function_program(|fb| {
            let e = fb.entry();
            fb.push(
                e,
                Stmt::Print(Operand::Var(Var::from_index(10))),
            );
            fb.terminate(e, Terminator::Return(None));
        });
        assert!(matches!(result, Err(IrError::UnknownVar { .. })));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", 2, false).unwrap();
        let main = pb.declare("main", 0, false).unwrap();

        let mut fbody = FunctionBuilder::new(2);
        trivially_terminated(&mut fbody);
        pb.define(f, fbody).unwrap();

        let mut mb = FunctionBuilder::new(0);
        let e = mb.entry();
        mb.push(
            e,
            Stmt::Call {
                callee: f,
                args: vec![Operand::Const(1)],
            },
        );
        mb.terminate(e, Terminator::Return(None));
        pb.define(main, mb).unwrap();

        assert!(matches!(pb.finish(), Err(IrError::ArityMismatch { .. })));
    }

    #[test]
    fn void_callee_in_value_position_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", 0, false).unwrap();
        let main = pb.declare("main", 0, false).unwrap();

        let mut fbody = FunctionBuilder::new(0);
        trivially_terminated(&mut fbody);
        pb.define(f, fbody).unwrap();

        let mut mb = FunctionBuilder::new(0);
        let e = mb.entry();
        let v = mb.new_var();
        mb.push(
            e,
            Stmt::assign(
                v,
                Rvalue::Call {
                    callee: f,
                    args: vec![],
                },
            ),
        );
        mb.terminate(e, Terminator::Return(None));
        pb.define(main, mb).unwrap();

        assert!(matches!(pb.finish(), Err(IrError::VoidCallee { .. })));
    }

    #[test]
    fn main_with_params_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 1, false).unwrap();
        let mut fb = FunctionBuilder::new(1);
        trivially_terminated(&mut fb);
        pb.define(main, fb).unwrap();
        assert_eq!(pb.finish().unwrap_err(), IrError::MainHasParams);
    }

    #[test]
    fn builder_chains_and_loops() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let body = fb.new_block();
            let exit = fb.new_block();
            let i = fb.new_var();
            fb.push(e, Stmt::assign(i, Rvalue::Use(Operand::Const(0))));
            fb.terminate(e, Terminator::Jump(body));
            fb.push(
                body,
                Stmt::assign(
                    i,
                    Rvalue::Binary(BinOp::Add, Operand::Var(i), Operand::Const(1)),
                ),
            );
            fb.terminate(
                body,
                Terminator::Branch {
                    cond: Operand::Var(i),
                    then_dest: exit,
                    else_dest: body,
                },
            );
            fb.terminate(exit, Terminator::Return(None));
        })
        .unwrap();
        let f = p.func(p.main());
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.stmt_count(), 2);
    }
}
