//! Error type for IR construction and validation.

use std::error::Error;
use std::fmt;

use crate::ids::{BlockId, FuncId, Var};

/// Errors produced while building or validating a [`Program`](crate::Program).
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum IrError {
    /// Two functions were declared with the same name.
    DuplicateFunction(String),
    /// A function body was provided twice.
    DuplicateBody(FuncId),
    /// A declared function was never given a body.
    MissingBody(String),
    /// No function named `main` was declared.
    MissingMain,
    /// `main` must take no parameters.
    MainHasParams,
    /// A block id referenced by a terminator does not exist.
    UnknownBlock {
        /// Function containing the bad reference.
        func: String,
        /// The out-of-range block id.
        block: BlockId,
    },
    /// A block was never terminated.
    Unterminated {
        /// Function containing the block.
        func: String,
        /// The unterminated block.
        block: BlockId,
    },
    /// A call references a function id that does not exist.
    UnknownCallee {
        /// Function containing the call.
        func: String,
        /// The unknown callee id.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Function containing the call.
        func: String,
        /// Name of the callee.
        callee: String,
        /// Number of parameters the callee declares.
        expected: usize,
        /// Number of arguments passed.
        found: usize,
    },
    /// A value-returning call targets a function that returns nothing.
    VoidCallee {
        /// Function containing the call.
        func: String,
        /// Name of the void callee.
        callee: String,
    },
    /// A statement or terminator references a variable slot out of range.
    UnknownVar {
        /// Function containing the reference.
        func: String,
        /// The out-of-range variable.
        var: Var,
    },
    /// A function has no blocks at all.
    EmptyFunction(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateFunction(name) => {
                write!(f, "function `{name}` declared more than once")
            }
            IrError::DuplicateBody(id) => write!(f, "body for {id} defined more than once"),
            IrError::MissingBody(name) => write!(f, "function `{name}` has no body"),
            IrError::MissingMain => f.write_str("program has no `main` function"),
            IrError::MainHasParams => f.write_str("`main` must not take parameters"),
            IrError::UnknownBlock { func, block } => {
                write!(f, "function `{func}` references unknown block {block}")
            }
            IrError::Unterminated { func, block } => {
                write!(f, "block {block} of function `{func}` has no terminator")
            }
            IrError::UnknownCallee { func, callee } => {
                write!(f, "function `{func}` calls unknown function {callee}")
            }
            IrError::ArityMismatch {
                func,
                callee,
                expected,
                found,
            } => write!(
                f,
                "function `{func}` calls `{callee}` with {found} arguments, expected {expected}"
            ),
            IrError::VoidCallee { func, callee } => write!(
                f,
                "function `{func}` uses the result of `{callee}` which returns no value"
            ),
            IrError::UnknownVar { func, var } => {
                write!(f, "function `{func}` references unknown variable {var}")
            }
            IrError::EmptyFunction(name) => write!(f, "function `{name}` has no blocks"),
        }
    }
}

impl Error for IrError {}
