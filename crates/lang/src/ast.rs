//! Abstract syntax tree.

use crate::token::Pos;

/// A binary operator (strict evaluation; `&&`/`||` are not short-circuit in
/// this language).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// A unary operator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Var(String, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call in expression position.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position of the call.
        pos: Pos,
    },
    /// `input()` — read the next input value.
    Input,
    /// `load(addr)` — read memory.
    Load(Box<Expr>),
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
        /// Position of the declaration.
        pos: Pos,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Position of the assignment.
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// `print(expr);`
    Print(Expr),
    /// `store(addr, value);`
    Store(Expr, Expr),
    /// A call in statement position: `name(args);`
    CallStmt {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the call.
        pos: Pos,
    },
}

/// A function definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position of the `fn` keyword.
    pub pos: Pos,
}

/// A parsed source file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceFile {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
}

impl FnDef {
    /// Returns `true` if any (nested) statement is `return expr;`.
    pub fn returns_value(&self) -> bool {
        fn stmts_return(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Return(Some(_)) => true,
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => stmts_return(then_body) || stmts_return(else_body),
                Stmt::While { body, .. } => stmts_return(body),
                _ => false,
            })
        }
        stmts_return(&self.body)
    }
}
