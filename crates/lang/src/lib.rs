//! **twpp-lang** — a mini imperative language compiled to `twpp-ir` CFGs.
//!
//! The paper collected whole program paths from Trimaran-instrumented
//! SPECint95 binaries. This crate supplies the corresponding front end for
//! the reproduction: programs written in a small C-like language are
//! lowered to control-flow graphs, which `twpp-tracer` then executes to
//! collect WPPs.
//!
//! The language has functions, integers, `let`/assignment, `if`/`while`,
//! `print`, `input()`, and a flat memory accessed with `load`/`store`.
//! `&&`/`||` evaluate strictly (no short-circuit).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), twpp_lang::LangError> {
//! let program = twpp_lang::compile(
//!     "fn main() { let x = 6; print(x * 7); }",
//! )?;
//! assert_eq!(program.func(program.main()).name(), "main");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
pub mod programs;
pub mod token;

pub use error::LangError;
pub use lexer::lex;
pub use lower::{lower, lower_with_options, LowerOptions};
pub use parser::{parse, MAX_NESTING_DEPTH};

use twpp_ir::Program;

/// Compiles source text to an executable [`Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(src: &str) -> Result<Program, LangError> {
    lower(&parse(src)?)
}

/// Compiles source text with explicit lowering options (e.g. one statement
/// per basic block, the granularity used by the data flow figures).
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn compile_with_options(src: &str, opts: LowerOptions) -> Result<Program, LangError> {
    lower_with_options(&parse(src)?, opts)
}
