//! Compilation errors with source positions.

use std::error::Error;
use std::fmt;

use crate::token::Pos;

/// Errors produced while compiling mini-language source.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum LangError {
    /// An unexpected character in the source.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Its position.
        pos: Pos,
    },
    /// An integer literal out of `i64` range.
    BadNumber {
        /// Position of the literal.
        pos: Pos,
    },
    /// The parser expected something else.
    Unexpected {
        /// Human-readable description of what was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Position of the offending token.
        pos: Pos,
    },
    /// Use of an undeclared variable.
    UnknownVar {
        /// Variable name.
        name: String,
        /// Position of the use.
        pos: Pos,
    },
    /// Call of an undeclared function.
    UnknownFn {
        /// Function name.
        name: String,
        /// Position of the call.
        pos: Pos,
    },
    /// Call with the wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments passed.
        found: usize,
        /// Position of the call.
        pos: Pos,
    },
    /// A value was requested from a function that never returns one.
    VoidInExpr {
        /// Function name.
        name: String,
        /// Position of the call.
        pos: Pos,
    },
    /// Variable declared twice in the same scope.
    Redeclared {
        /// Variable name.
        name: String,
        /// Position of the redeclaration.
        pos: Pos,
    },
    /// Expression or block nesting exceeded the parser's recursion
    /// limit. The input is syntactically pathological (e.g. thousands of
    /// nested parentheses); rejecting it keeps the recursive-descent
    /// parser's stack bounded instead of overflowing it.
    TooDeep {
        /// The nesting limit that was exceeded.
        limit: usize,
        /// Position at which the limit was hit.
        pos: Pos,
    },
    /// Two functions share a name, or `main` is missing/has parameters.
    Program(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::UnexpectedChar { ch, pos } => {
                write!(f, "{pos}: unexpected character {ch:?}")
            }
            LangError::BadNumber { pos } => write!(f, "{pos}: integer literal out of range"),
            LangError::Unexpected {
                found,
                expected,
                pos,
            } => write!(f, "{pos}: expected {expected}, found {found}"),
            LangError::UnknownVar { name, pos } => {
                write!(f, "{pos}: unknown variable `{name}`")
            }
            LangError::UnknownFn { name, pos } => {
                write!(f, "{pos}: unknown function `{name}`")
            }
            LangError::Arity {
                name,
                expected,
                found,
                pos,
            } => write!(
                f,
                "{pos}: `{name}` takes {expected} arguments, {found} given"
            ),
            LangError::VoidInExpr { name, pos } => {
                write!(f, "{pos}: `{name}` returns no value but is used in an expression")
            }
            LangError::Redeclared { name, pos } => {
                write!(f, "{pos}: variable `{name}` already declared in this scope")
            }
            LangError::TooDeep { limit, pos } => {
                write!(f, "{pos}: nesting deeper than {limit} levels")
            }
            LangError::Program(msg) => f.write_str(msg),
        }
    }
}

impl Error for LangError {}
