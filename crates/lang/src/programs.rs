//! The paper's example programs, written in the mini language.
//!
//! These sources reproduce the structures of the paper's figures and are
//! shared by tests, examples and the table-regeneration harness.

/// Figure 1's running example: `main` iterates 5 times calling `f`; `f`
/// loops 3 times per call and follows one of two paths through its body
/// depending on its argument, so redundant path trace elimination finds
/// exactly 2 unique traces over 5 calls.
pub const FIGURE1: &str = "
// Figure 1 of the paper: a loop in main calling f, which loops itself.
fn f(x) {
    let j = 0;
    while (j < 3) {
        if (x % 2 == 0) {
            print(x + j);
        } else {
            print(x - j);
        }
        j = j + 1;
    }
}
fn main() {
    let i = 0;
    while (i < 5) {
        f(i);
        i = i + 1;
    }
}
";

/// Figure 9's load-redundancy example: a loop of 100 iterations; the load
/// in the frequent branch (60 executions) is always redundant with respect
/// to the loop-header load because the killing store (40 executions) sits
/// on the other path.
pub const FIGURE9: &str = "
// Figure 9 of the paper: detecting dynamic load redundancy.
fn main() {
    let i = 0;
    while (i < 100) {
        let t = load(100);      // 1_Load: executes 100 times
        if (i % 5 < 3) {        // 60 of 100 iterations
            let u = load(100);  // 4_Load: executes 60 times, 100% redundant
            print(u);
        } else {
            store(100, i);      // 6_Store: executes 40 times
        }
        i = i + 1;
    }
}
";

/// Figure 10's dynamic slicing example (run with input `N = 3, X = -4, 3,
/// -2`): the slice of `z` at the final print distinguishes the three
/// Agrawal–Horgan algorithms.
pub const FIGURE10: &str = "
// Figure 10 of the paper: the dynamic slicing example.
fn f1(x) { return 0 - x; }
fn f2(x) { return x * 2; }
fn f3(y) { return y + 1; }
fn main() {
    let n = input();        // 1: read N
    let i = 1;              // 2: I = 1
    let j = 0;              // 3: J = 0
    let x = 0;
    let y = 0;
    let z = 0;
    while (i <= n) {        // 4: while I <= N
        x = input();        // 5: read X
        if (x < 0) {        // 6: if X < 0
            y = f1(x);      // 7: Y = f1(X)
        } else {
            y = f2(x);      // 8: Y = f2(X)
        }
        z = f3(y);          // 9: Z = f3(Y)
        print(z);           // 10: write Z
        j = 1;              // 11: J = 1
        i = i + 1;          // 12: I = I + 1
    }
    z = z + j;              // 13: Z = Z + J
    print(z);               // 14: breakpoint - request slice for Z
}
";

/// The input of Figure 10: `N = 3`, then `X = -4, 3, -2`.
pub const FIGURE10_INPUT: &[i64] = &[3, -4, 3, -2];

/// A compute-heavy program exercising every language feature; used as a
/// realistic end-to-end compilation workload.
pub const KITCHEN_SINK: &str = "
fn gcd(a, b) {
    while (b != 0) {
        let t = b;
        b = a % b;
        a = t;
    }
    return a;
}
fn collatz_len(n) {
    let len = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        len = len + 1;
    }
    return len;
}
fn main() {
    print(gcd(252, 105));
    let i = 1;
    let longest = 0;
    while (i <= 30) {
        let l = collatz_len(i);
        if (l > longest) { longest = l; }
        store(i, l);
        i = i + 1;
    }
    print(longest);
    print(load(27));
}
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use twpp_tracer::{run, ExecLimits};

    #[test]
    fn figure1_compiles_and_runs() {
        let p = compile(FIGURE1).unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output.len(), 15); // 5 calls x 3 iterations
    }

    #[test]
    fn figure9_compiles_and_runs() {
        let p = compile(FIGURE9).unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output.len(), 60);
    }

    #[test]
    fn figure10_produces_paper_values() {
        let p = compile(FIGURE10).unwrap();
        let exec = run(&p, FIGURE10_INPUT, ExecLimits::default()).unwrap();
        // z values: f3(f1(-4)) = 5, f3(f2(3)) = 7, f3(f1(-2)) = 3,
        // then z + j = 4 at the breakpoint.
        assert_eq!(exec.output, vec![5, 7, 3, 4]);
    }

    #[test]
    fn kitchen_sink_runs() {
        let p = compile(KITCHEN_SINK).unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output[0], 21); // gcd(252, 105)
        assert_eq!(exec.output[1], 111); // longest collatz chain <= 30 (27)
        assert_eq!(exec.output[2], 111); // load(27)
    }
}
