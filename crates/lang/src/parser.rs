//! Recursive-descent parser.

use crate::ast::{BinOp, Expr, FnDef, SourceFile, Stmt, UnOp};
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Pos, Token, TokenKind};

/// Parses a source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse(src: &str) -> Result<SourceFile, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut fns = Vec::new();
    while !p.at(&TokenKind::Eof) {
        fns.push(p.fn_def()?);
    }
    Ok(SourceFile { fns })
}

/// Maximum combined nesting depth of blocks and expressions. Each level
/// costs a constant number of recursive-descent stack frames (which are
/// sizable in unoptimized builds), so this bound keeps pathological
/// inputs (e.g. ten thousand nested parentheses) from overflowing even a
/// 2 MiB test-thread stack while staying far above anything a real
/// program needs.
pub const MAX_NESTING_DEPTH: usize = 96;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current nesting depth of blocks/expressions being parsed.
    depth: usize,
}

impl Parser {
    /// Enters one nesting level, failing with [`LangError::TooDeep`] when
    /// [`MAX_NESTING_DEPTH`] is exceeded. Every `enter` is paired with a
    /// `leave` by the wrapper methods below.
    fn enter(&mut self) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(LangError::TooDeep {
                limit: MAX_NESTING_DEPTH,
                pos: self.peek().pos,
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, LangError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> LangError {
        LangError::Unexpected {
            found: self.peek().kind.to_string(),
            expected: expected.to_owned(),
            pos: self.peek().pos,
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let pos = self.peek().pos;
                self.bump();
                Ok((name, pos))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn fn_def(&mut self) -> Result<FnDef, LangError> {
        let kw = self.expect(TokenKind::Fn, "`fn`")?;
        let (name, _) = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (p, _) = self.ident("parameter name")?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            body,
            pos: kw.pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.enter()?;
        let result = self.block_inner();
        self.leave();
        result
    }

    fn block_inner(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // `}`
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Let => {
                self.bump();
                let (name, pos) = self.ident("variable name")?;
                self.expect(TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Let { name, value, pos })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if self.at(&TokenKind::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Print => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Print(e))
            }
            TokenKind::Store => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let addr = self.expr()?;
                self.expect(TokenKind::Comma, "`,`")?;
                let value = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::Store(addr, value))
            }
            TokenKind::Ident(name) => {
                let pos = self.peek().pos;
                self.bump();
                if self.eat(&TokenKind::Assign) {
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Assign { name, value, pos })
                } else if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    self.expect(TokenKind::Semi, "`;`")?;
                    Ok(Stmt::CallStmt { name, args, pos })
                } else {
                    Err(self.unexpected("`=` or `(`"))
                }
            }
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.enter()?;
        let result = self.binary(0);
        self.leave();
        result
    }

    /// Precedence climbing. Levels: `||` < `&&` < `== !=` < `< <= > >=` <
    /// `+ -` < `* / %`.
    fn binary(&mut self, min_level: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek().kind {
                TokenKind::OrOr => (BinOp::Or, 1),
                TokenKind::AndAnd => (BinOp::And, 2),
                TokenKind::EqEq => (BinOp::Eq, 3),
                TokenKind::Ne => (BinOp::Ne, 3),
                TokenKind::Lt => (BinOp::Lt, 4),
                TokenKind::Le => (BinOp::Le, 4),
                TokenKind::Gt => (BinOp::Gt, 4),
                TokenKind::Ge => (BinOp::Ge, 4),
                TokenKind::Plus => (BinOp::Add, 5),
                TokenKind::Minus => (BinOp::Sub, 5),
                TokenKind::Star => (BinOp::Mul, 6),
                TokenKind::Slash => (BinOp::Div, 6),
                TokenKind::Percent => (BinOp::Rem, 6),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        self.enter()?;
        let result = self.unary_inner();
        self.leave();
        result
    }

    fn unary_inner(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            TokenKind::Input => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(Expr::Input)
            }
            TokenKind::Load => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let addr = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(Expr::Load(Box::new(addr)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let pos = self.peek().pos;
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let sf = parse("fn main() { print(1); }").unwrap();
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "main");
        assert_eq!(sf.fns[0].body.len(), 1);
    }

    #[test]
    fn precedence_binds_correctly() {
        let sf = parse("fn main() { let x = 1 + 2 * 3 < 4 && 5 == 6; }").unwrap();
        let Stmt::Let { value, .. } = &sf.fns[0].body[0] else {
            panic!()
        };
        // ((1 + (2*3)) < 4) && (5 == 6)
        let Expr::Binary(BinOp::And, lhs, rhs) = value else {
            panic!("expected && at top: {value:?}")
        };
        assert!(matches!(**lhs, Expr::Binary(BinOp::Lt, _, _)));
        assert!(matches!(**rhs, Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn else_if_chains() {
        let sf = parse(
            "fn main() { if (1) { print(1); } else if (2) { print(2); } else { print(3); } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &sf.fns[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn calls_statements_and_expressions() {
        let sf = parse("fn f(x, y) { return x + y; } fn main() { f(1, 2); let z = f(3, f(4, 5)); }")
            .unwrap();
        assert_eq!(sf.fns[0].params, vec!["x", "y"]);
        assert!(sf.fns[0].returns_value());
        assert!(!sf.fns[1].returns_value());
    }

    #[test]
    fn memory_and_io_forms() {
        parse("fn main() { store(1, input()); let v = load(1); print(v); }").unwrap();
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse("fn main() { let = 3; }").unwrap_err();
        assert!(err.to_string().contains("variable name"), "{err}");
        let err = parse("fn main() { x 3; }").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
        assert!(parse("fn main() {").is_err());
        assert!(parse("main() {}").is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let sf = parse("fn main() { let x = - - 1; let y = !!x; }").unwrap();
        assert_eq!(sf.fns[0].body.len(), 2);
    }

    #[test]
    fn pathological_paren_nesting_is_rejected_not_overflowed() {
        // 10_000 nested parentheses once overflowed the recursive-descent
        // stack; the depth guard must reject them with a typed error.
        let deep = format!(
            "fn main() {{ let x = {}1{}; }}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let err = parse(&deep).unwrap_err();
        assert!(
            matches!(err, LangError::TooDeep { limit, .. } if limit == MAX_NESTING_DEPTH),
            "expected TooDeep, got {err}"
        );
        assert!(err.to_string().contains("nesting deeper than"), "{err}");
    }

    #[test]
    fn pathological_block_nesting_is_rejected() {
        let deep = format!(
            "fn main() {{ {} print(1); {} }}",
            "if (1) {".repeat(10_000),
            "}".repeat(10_000)
        );
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err, LangError::TooDeep { .. }), "got {err}");
        // Deep unary chains hit the same guard.
        let deep = format!("fn main() {{ let x = {}1; }}", "-".repeat(10_000));
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err, LangError::TooDeep { .. }), "got {err}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        // 40 levels of parens and 40 nested ifs are well below the limit.
        let src = format!(
            "fn main() {{ let x = {}1{}; {} print(x); {} }}",
            "(".repeat(40),
            ")".repeat(40),
            "if (1) {".repeat(40),
            "}".repeat(40)
        );
        parse(&src).unwrap();
    }
}
