//! Lowering from AST to the `twpp-ir` control-flow-graph representation.

use std::collections::HashMap;

use twpp_ir::{
    BlockId, FuncId, FunctionBuilder, Operand, Program, ProgramBuilder, Rvalue, Terminator, Var,
};

use crate::ast::{self, Expr, FnDef, SourceFile, Stmt};
use crate::error::LangError;
use crate::token::Pos;

/// Options controlling lowering.
#[derive(Copy, Clone, Debug, Default)]
pub struct LowerOptions {
    /// Place every simple statement in its own basic block (jump-linked).
    ///
    /// The paper's data flow figures (9–12) number individual statements as
    /// trace nodes; this mode reproduces that granularity so timestamps
    /// identify statement instances.
    pub stmt_per_block: bool,
}

/// Lowers a parsed source file with default options.
///
/// # Errors
///
/// Returns the first semantic error (unknown names, arity mismatches,
/// missing `main`, …).
pub fn lower(sf: &SourceFile) -> Result<Program, LangError> {
    lower_with_options(sf, LowerOptions::default())
}

/// Lowers a parsed source file.
///
/// # Errors
///
/// Returns the first semantic error encountered.
pub fn lower_with_options(sf: &SourceFile, opts: LowerOptions) -> Result<Program, LangError> {
    let mut pb = ProgramBuilder::new();
    let mut sigs: HashMap<String, (FuncId, usize, bool)> = HashMap::new();
    for f in &sf.fns {
        let returns = f.returns_value();
        let id = pb
            .declare(&f.name, f.params.len(), returns)
            .map_err(|e| LangError::Program(e.to_string()))?;
        sigs.insert(f.name.clone(), (id, f.params.len(), returns));
    }
    for f in &sf.fns {
        let (id, _, returns) = sigs[&f.name];
        let body = lower_fn(f, returns, &sigs, opts)?;
        pb.define(id, body)
            .map_err(|e| LangError::Program(e.to_string()))?;
    }
    pb.finish().map_err(|e| LangError::Program(e.to_string()))
}

struct Ctx<'a> {
    fb: FunctionBuilder,
    scopes: Vec<HashMap<String, Var>>,
    sigs: &'a HashMap<String, (FuncId, usize, bool)>,
    current: BlockId,
    opts: LowerOptions,
}

fn lower_fn(
    f: &FnDef,
    returns: bool,
    sigs: &HashMap<String, (FuncId, usize, bool)>,
    opts: LowerOptions,
) -> Result<FunctionBuilder, LangError> {
    let fb = if returns {
        FunctionBuilder::new_returning(f.params.len())
    } else {
        FunctionBuilder::new(f.params.len())
    };
    let mut scope = HashMap::new();
    for (i, p) in f.params.iter().enumerate() {
        if scope.insert(p.clone(), fb.param(i)).is_some() {
            return Err(LangError::Redeclared {
                name: p.clone(),
                pos: f.pos,
            });
        }
    }
    let entry = fb.entry();
    let mut ctx = Ctx {
        fb,
        scopes: vec![scope],
        sigs,
        current: entry,
        opts,
    };
    ctx.lower_stmts(&f.body)?;
    if !ctx.fb.is_terminated(ctx.current) {
        let term = if returns {
            Terminator::Return(Some(Operand::Const(0)))
        } else {
            Terminator::Return(None)
        };
        ctx.fb.terminate(ctx.current, term);
    }
    Ok(ctx.fb)
}

impl Ctx<'_> {
    fn lookup(&self, name: &str, pos: Pos) -> Result<Var, LangError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .copied()
            .ok_or_else(|| LangError::UnknownVar {
                name: name.to_owned(),
                pos,
            })
    }

    fn signature(&self, name: &str, pos: Pos) -> Result<(FuncId, usize, bool), LangError> {
        self.sigs
            .get(name)
            .copied()
            .ok_or_else(|| LangError::UnknownFn {
                name: name.to_owned(),
                pos,
            })
    }

    fn check_arity(
        &self,
        name: &str,
        expected: usize,
        found: usize,
        pos: Pos,
    ) -> Result<(), LangError> {
        if expected != found {
            return Err(LangError::Arity {
                name: name.to_owned(),
                expected,
                found,
                pos,
            });
        }
        Ok(())
    }

    /// Starts a fresh block after a simple statement when `stmt_per_block`
    /// is on.
    fn break_block(&mut self) {
        if self.opts.stmt_per_block && !self.fb.is_terminated(self.current) {
            let next = self.fb.new_block();
            self.fb.terminate(self.current, Terminator::Jump(next));
            self.current = next;
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let { name, value, pos } => {
                let op = self.lower_expr(value)?;
                let scope = self.scopes.last_mut().expect("scope stack never empty");
                if scope.contains_key(name) {
                    return Err(LangError::Redeclared {
                        name: name.clone(),
                        pos: *pos,
                    });
                }
                let v = self.fb.new_var();
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), v);
                self.fb
                    .push(self.current, twpp_ir::Stmt::assign(v, Rvalue::Use(op)));
                self.break_block();
            }
            Stmt::Assign { name, value, pos } => {
                let op = self.lower_expr(value)?;
                let v = self.lookup(name, *pos)?;
                self.fb
                    .push(self.current, twpp_ir::Stmt::assign(v, Rvalue::Use(op)));
                self.break_block();
            }
            Stmt::Print(e) => {
                let op = self.lower_expr(e)?;
                self.fb.push(self.current, twpp_ir::Stmt::Print(op));
                self.break_block();
            }
            Stmt::Store(addr, value) => {
                let a = self.lower_expr(addr)?;
                let v = self.lower_expr(value)?;
                self.fb
                    .push(self.current, twpp_ir::Stmt::Store { addr: a, value: v });
                self.break_block();
            }
            Stmt::CallStmt { name, args, pos } => {
                let (id, expected, _) = self.signature(name, *pos)?;
                self.check_arity(name, expected, args.len(), *pos)?;
                let argv = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.fb.push(
                    self.current,
                    twpp_ir::Stmt::Call {
                        callee: id,
                        args: argv,
                    },
                );
                self.break_block();
            }
            Stmt::Return(value) => {
                let term = match value {
                    Some(e) => Terminator::Return(Some(self.lower_expr(e)?)),
                    None => Terminator::Return(None),
                };
                self.fb.terminate(self.current, term);
                // Anything after a return in the same source block is
                // unreachable; give it a fresh block.
                self.current = self.fb.new_block();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.lower_expr(cond)?;
                let then_b = self.fb.new_block();
                let else_b = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.terminate(
                    self.current,
                    Terminator::Branch {
                        cond: c,
                        then_dest: then_b,
                        else_dest: else_b,
                    },
                );
                self.current = then_b;
                self.lower_stmts(then_body)?;
                if !self.fb.is_terminated(self.current) {
                    self.fb.terminate(self.current, Terminator::Jump(join));
                }
                self.current = else_b;
                self.lower_stmts(else_body)?;
                if !self.fb.is_terminated(self.current) {
                    self.fb.terminate(self.current, Terminator::Jump(join));
                }
                self.current = join;
            }
            Stmt::While { cond, body } => {
                let head = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.terminate(self.current, Terminator::Jump(head));
                self.current = head;
                let c = self.lower_expr(cond)?;
                self.fb.terminate(
                    self.current,
                    Terminator::Branch {
                        cond: c,
                        then_dest: body_b,
                        else_dest: exit,
                    },
                );
                self.current = body_b;
                self.lower_stmts(body)?;
                if !self.fb.is_terminated(self.current) {
                    self.fb.terminate(self.current, Terminator::Jump(head));
                }
                self.current = exit;
            }
        }
        Ok(())
    }

    /// Lowers an expression, emitting intermediate assignments into the
    /// current block, and returns the operand holding its value.
    fn lower_expr(&mut self, e: &Expr) -> Result<Operand, LangError> {
        Ok(match e {
            Expr::Num(n) => Operand::Const(*n),
            Expr::Var(name, pos) => Operand::Var(self.lookup(name, *pos)?),
            Expr::Unary(op, inner) => {
                let a = self.lower_expr(inner)?;
                let ir_op = match op {
                    ast::UnOp::Neg => twpp_ir::UnOp::Neg,
                    ast::UnOp::Not => twpp_ir::UnOp::Not,
                };
                self.emit_tmp(Rvalue::Unary(ir_op, a))
            }
            Expr::Binary(op, lhs, rhs) => {
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                self.emit_tmp(Rvalue::Binary(bin_op(*op), a, b))
            }
            Expr::Call { name, args, pos } => {
                let (id, expected, returns) = self.signature(name, *pos)?;
                if !returns {
                    return Err(LangError::VoidInExpr {
                        name: name.clone(),
                        pos: *pos,
                    });
                }
                self.check_arity(name, expected, args.len(), *pos)?;
                let argv = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.emit_tmp(Rvalue::Call {
                    callee: id,
                    args: argv,
                })
            }
            Expr::Input => self.emit_tmp(Rvalue::Input),
            Expr::Load(addr) => {
                let a = self.lower_expr(addr)?;
                self.emit_tmp(Rvalue::Load(a))
            }
        })
    }

    fn emit_tmp(&mut self, rv: Rvalue) -> Operand {
        let v = self.fb.new_var();
        self.fb.push(self.current, twpp_ir::Stmt::assign(v, rv));
        Operand::Var(v)
    }
}

fn bin_op(op: ast::BinOp) -> twpp_ir::BinOp {
    match op {
        ast::BinOp::Add => twpp_ir::BinOp::Add,
        ast::BinOp::Sub => twpp_ir::BinOp::Sub,
        ast::BinOp::Mul => twpp_ir::BinOp::Mul,
        ast::BinOp::Div => twpp_ir::BinOp::Div,
        ast::BinOp::Rem => twpp_ir::BinOp::Rem,
        ast::BinOp::Lt => twpp_ir::BinOp::Lt,
        ast::BinOp::Le => twpp_ir::BinOp::Le,
        ast::BinOp::Gt => twpp_ir::BinOp::Gt,
        ast::BinOp::Ge => twpp_ir::BinOp::Ge,
        ast::BinOp::Eq => twpp_ir::BinOp::Eq,
        ast::BinOp::Ne => twpp_ir::BinOp::Ne,
        ast::BinOp::And => twpp_ir::BinOp::And,
        ast::BinOp::Or => twpp_ir::BinOp::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use twpp_tracer::{run, ExecLimits};

    fn compile(src: &str) -> Program {
        lower(&parse(src).unwrap()).unwrap()
    }

    fn output_of(src: &str, input: &[i64]) -> Vec<i64> {
        run(&compile(src), input, ExecLimits::default())
            .unwrap()
            .output
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(output_of("fn main() { print(1 + 2 * 3); }", &[]), vec![7]);
        assert_eq!(output_of("fn main() { print((1 + 2) * 3); }", &[]), vec![9]);
        assert_eq!(output_of("fn main() { print(-3 + 1); }", &[]), vec![-2]);
        assert_eq!(output_of("fn main() { print(!0 + !5); }", &[]), vec![1]);
    }

    #[test]
    fn control_flow_loops_and_branches() {
        let src = "
            fn main() {
                let i = 0;
                let sum = 0;
                while (i < 10) {
                    if (i % 2 == 0) { sum = sum + i; }
                    i = i + 1;
                }
                print(sum);
            }";
        assert_eq!(output_of(src, &[]), vec![20]);
    }

    #[test]
    fn functions_recursion_and_returns() {
        let src = "
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { print(fib(10)); }";
        assert_eq!(output_of(src, &[]), vec![55]);
    }

    #[test]
    fn io_and_memory() {
        let src = "
            fn main() {
                let a = input();
                store(7, a * 2);
                print(load(7));
                print(load(8));
            }";
        assert_eq!(output_of(src, &[21]), vec![42, 0]);
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let src = "
            fn main() {
                let x = 1;
                if (1) { let x = 2; print(x); } else { }
                print(x);
            }";
        assert_eq!(output_of(src, &[]), vec![2, 1]);
    }

    #[test]
    fn semantic_errors() {
        let check = |src: &str| lower(&parse(src).unwrap()).unwrap_err();
        assert!(matches!(
            check("fn main() { print(x); }"),
            LangError::UnknownVar { .. }
        ));
        assert!(matches!(
            check("fn main() { g(); }"),
            LangError::UnknownFn { .. }
        ));
        assert!(matches!(
            check("fn f(a) { print(a); } fn main() { f(); }"),
            LangError::Arity { .. }
        ));
        assert!(matches!(
            check("fn f() { print(1); } fn main() { let x = f(); }"),
            LangError::VoidInExpr { .. }
        ));
        assert!(matches!(
            check("fn main() { let a = 1; let a = 2; }"),
            LangError::Redeclared { .. }
        ));
        assert!(matches!(
            check("fn f() {} fn f() {} fn main() {}"),
            LangError::Program(_)
        ));
        assert!(matches!(check("fn f() {}"), LangError::Program(_)));
    }

    #[test]
    fn stmt_per_block_increases_block_count() {
        let src = "fn main() { let a = 1; let b = 2; print(a + b); }";
        let coarse = compile(src);
        let sf = parse(src).unwrap();
        let fine = lower_with_options(&sf, LowerOptions { stmt_per_block: true }).unwrap();
        let f_coarse = coarse.func(coarse.main());
        let f_fine = fine.func(fine.main());
        assert_eq!(f_coarse.block_count(), 1);
        assert!(f_fine.block_count() > f_coarse.block_count());
        // Behaviour is unchanged.
        let out = run(&fine, &[], ExecLimits::default()).unwrap().output;
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn return_mid_block_leaves_valid_cfg() {
        let src = "
            fn f(x) {
                if (x > 0) { return 1; }
                return 0;
            }
            fn main() { print(f(5)); print(f(-5)); }";
        assert_eq!(output_of(src, &[]), vec![1, 0]);
    }

    #[test]
    fn value_function_falls_back_to_zero() {
        let src = "
            fn f(x) { if (x > 0) { return 7; } }
            fn main() { print(f(1)); print(f(-1)); }";
        assert_eq!(output_of(src, &[]), vec![7, 0]);
    }
}
