//! Hand-written lexer.

use crate::error::LangError;
use crate::token::{Pos, Token, TokenKind};

/// Tokenizes `src`.
///
/// Line comments start with `//`. Whitespace separates tokens.
///
/// # Errors
///
/// Returns [`LangError::UnexpectedChar`] or [`LangError::BadNumber`].
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        // Skip whitespace and comments.
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('/') => {
                    // Peek one further for a comment.
                    let mut clone = chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            tokens.push(Token {
                kind: TokenKind::Eof,
                pos,
            });
            return Ok(tokens);
        };
        let kind = match c {
            '0'..='9' => {
                let mut value: i64 = 0;
                let mut overflow = false;
                while let Some(&d) = chars.peek() {
                    let Some(digit) = d.to_digit(10) else { break };
                    bump!();
                    value = match value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i64::from(digit)))
                    {
                        Some(v) => v,
                        None => {
                            overflow = true;
                            0
                        }
                    };
                }
                if overflow {
                    return Err(LangError::BadNumber { pos });
                }
                TokenKind::Num(value)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                match ident.as_str() {
                    "fn" => TokenKind::Fn,
                    "let" => TokenKind::Let,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "return" => TokenKind::Return,
                    "print" => TokenKind::Print,
                    "input" => TokenKind::Input,
                    "load" => TokenKind::Load,
                    "store" => TokenKind::Store,
                    _ => TokenKind::Ident(ident),
                }
            }
            '(' => {
                bump!();
                TokenKind::LParen
            }
            ')' => {
                bump!();
                TokenKind::RParen
            }
            '{' => {
                bump!();
                TokenKind::LBrace
            }
            '}' => {
                bump!();
                TokenKind::RBrace
            }
            ',' => {
                bump!();
                TokenKind::Comma
            }
            ';' => {
                bump!();
                TokenKind::Semi
            }
            '+' => {
                bump!();
                TokenKind::Plus
            }
            '-' => {
                bump!();
                TokenKind::Minus
            }
            '*' => {
                bump!();
                TokenKind::Star
            }
            '/' => {
                bump!();
                TokenKind::Slash
            }
            '%' => {
                bump!();
                TokenKind::Percent
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    TokenKind::Ne
                } else {
                    TokenKind::Bang
                }
            }
            '&' => {
                bump!();
                if chars.peek() == Some(&'&') {
                    bump!();
                    TokenKind::AndAnd
                } else {
                    return Err(LangError::UnexpectedChar { ch: '&', pos });
                }
            }
            '|' => {
                bump!();
                if chars.peek() == Some(&'|') {
                    bump!();
                    TokenKind::OrOr
                } else {
                    return Err(LangError::UnexpectedChar { ch: '|', pos });
                }
            }
            other => return Err(LangError::UnexpectedChar { ch: other, pos }),
        };
        tokens.push(Token { kind, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_idents_numbers() {
        assert_eq!(
            kinds("fn foo(x) { let y1 = 42; }"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::Let,
                TokenKind::Ident("y1".into()),
                TokenKind::Assign,
                TokenKind::Num(42),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_including_two_char() {
        assert_eq!(
            kinds("< <= > >= == != && || ! = + - * / %"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("let a = 1; // comment\nlet b = 2;").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!((b.pos.line, b.pos.col), (2, 5));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lex("let a = $;"),
            Err(LangError::UnexpectedChar { ch: '$', .. })
        ));
        assert!(matches!(
            lex("99999999999999999999"),
            Err(LangError::BadNumber { .. })
        ));
        assert!(matches!(
            lex("a & b"),
            Err(LangError::UnexpectedChar { ch: '&', .. })
        ));
    }
}
