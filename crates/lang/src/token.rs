//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the mini language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An integer literal.
    Num(i64),
    /// An identifier.
    Ident(String),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `print`
    Print,
    /// `input`
    Input,
    /// `load`
    Load,
    /// `store`
    Store,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Num(n) => write!(f, "number `{n}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Fn => f.write_str("`fn`"),
            TokenKind::Let => f.write_str("`let`"),
            TokenKind::If => f.write_str("`if`"),
            TokenKind::Else => f.write_str("`else`"),
            TokenKind::While => f.write_str("`while`"),
            TokenKind::Return => f.write_str("`return`"),
            TokenKind::Print => f.write_str("`print`"),
            TokenKind::Input => f.write_str("`input`"),
            TokenKind::Load => f.write_str("`load`"),
            TokenKind::Store => f.write_str("`store`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Assign => f.write_str("`=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Percent => f.write_str("`%`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::AndAnd => f.write_str("`&&`"),
            TokenKind::OrOr => f.write_str("`||`"),
            TokenKind::Bang => f.write_str("`!`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind (and payload).
    pub kind: TokenKind,
    /// Where the token starts.
    pub pos: Pos,
}
