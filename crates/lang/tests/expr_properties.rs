//! Property test: random expressions printed as source, compiled through
//! the full front end, executed by the CFG interpreter, and compared to a
//! direct big-step evaluation of the expression tree.

use proptest::prelude::*;

use twpp_lang::compile;
use twpp_tracer::{run, ExecLimits};

/// A small expression tree with its own evaluator and printer.
#[derive(Clone, Debug)]
enum E {
    Num(i64),
    Var(usize),
    Neg(Box<E>),
    Not(Box<E>),
    Bin(Op, Box<E>, Box<E>),
}

#[derive(Copy, Clone, Debug)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

const VARS: usize = 3;
const VAR_VALUES: [i64; VARS] = [7, -3, 0];

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::Num(n) => *n,
            E::Var(i) => VAR_VALUES[*i],
            E::Neg(e) => e.eval().wrapping_neg(),
            E::Not(e) => i64::from(e.eval() == 0),
            E::Bin(op, a, b) => {
                let (a, b) = (a.eval(), b.eval());
                match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    Op::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    Op::Lt => i64::from(a < b),
                    Op::Le => i64::from(a <= b),
                    Op::Gt => i64::from(a > b),
                    Op::Ge => i64::from(a >= b),
                    Op::Eq => i64::from(a == b),
                    Op::Ne => i64::from(a != b),
                    Op::And => i64::from(a != 0 && b != 0),
                    Op::Or => i64::from(a != 0 || b != 0),
                }
            }
        }
    }

    /// Prints with full parenthesisation, so precedence in the parsed form
    /// must reproduce exactly this tree.
    fn print(&self) -> String {
        match self {
            E::Num(n) => {
                if *n < 0 {
                    format!("(0 - {})", -n)
                } else {
                    n.to_string()
                }
            }
            E::Var(i) => format!("v{i}"),
            E::Neg(e) => format!("(-{})", e.print()),
            E::Not(e) => format!("(!{})", e.print()),
            E::Bin(op, a, b) => {
                let sym = match op {
                    Op::Add => "+",
                    Op::Sub => "-",
                    Op::Mul => "*",
                    Op::Div => "/",
                    Op::Rem => "%",
                    Op::Lt => "<",
                    Op::Le => "<=",
                    Op::Gt => ">",
                    Op::Ge => ">=",
                    Op::Eq => "==",
                    Op::Ne => "!=",
                    Op::And => "&&",
                    Op::Or => "||",
                };
                format!("({} {} {})", a.print(), sym, b.print())
            }
        }
    }

    /// Prints without redundant parentheses around additive chains, to
    /// exercise the parser's precedence rules (only shapes whose printed
    /// form is unambiguous under standard precedence).
    fn print_loose(&self) -> String {
        match self {
            E::Bin(op @ (Op::Add | Op::Sub), a, b) => {
                let sym = if matches!(op, Op::Add) { "+" } else { "-" };
                // Left side may be an additive chain; right side must bind
                // tighter, so parenthesise it.
                format!("{} {} ({})", a.print_loose(), sym, b.print())
            }
            other => other.print(),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(E::Num),
        (0..VARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        let op = prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Div),
            Just(Op::Rem),
            Just(Op::Lt),
            Just(Op::Le),
            Just(Op::Gt),
            Just(Op::Ge),
            Just(Op::Eq),
            Just(Op::Ne),
            Just(Op::And),
            Just(Op::Or),
        ];
        prop_oneof![
            inner.clone().prop_map(|e| E::Neg(Box::new(e))),
            inner.clone().prop_map(|e| E::Not(Box::new(e))),
            (op, inner.clone(), inner).prop_map(|(o, a, b)| E::Bin(o, Box::new(a), Box::new(b))),
        ]
    })
}

fn run_source_expr(expr_src: &str) -> i64 {
    let src = format!(
        "fn main() {{
            let v0 = {};
            let v1 = 0 - {};
            let v2 = {};
            print({expr_src});
        }}",
        VAR_VALUES[0], -VAR_VALUES[1], VAR_VALUES[2]
    );
    let program = compile(&src).expect("generated source compiles");
    let exec = run(&program, &[], ExecLimits::default()).expect("expression evaluates");
    exec.output[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_expressions_match_direct_evaluation(e in expr_strategy()) {
        prop_assert_eq!(run_source_expr(&e.print()), e.eval());
    }

    #[test]
    fn precedence_of_additive_chains(e in expr_strategy()) {
        prop_assert_eq!(run_source_expr(&e.print_loose()), e.eval());
    }
}
