//! Property test: random structured programs behave identically under
//! coarse lowering and statement-per-block lowering, and never crash the
//! front end or the interpreter.

use proptest::prelude::*;

use twpp_lang::{compile, compile_with_options, LowerOptions};
use twpp_tracer::{run, run_traced, ExecLimits};

/// A bounded statement tree printed as mini-language source. Loops are
/// always of the shape `while (i < k)` with a fresh counter so programs
/// terminate.
#[derive(Clone, Debug)]
enum S {
    Print(i64),
    Assign(usize, i64),
    AddVar(usize, usize),
    Store(i64, usize),
    LoadPrint(i64),
    If(usize, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>),
}

const VARS: usize = 4;

fn print_stmts(stmts: &[S], depth: usize, counter: &mut usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            S::Print(n) => out.push_str(&format!("{pad}print({n});\n")),
            S::Assign(v, n) => out.push_str(&format!("{pad}v{v} = {n};\n")),
            S::AddVar(a, b) => out.push_str(&format!("{pad}v{a} = v{a} + v{b};\n")),
            S::Store(addr, v) => out.push_str(&format!("{pad}store({addr}, v{v});\n")),
            S::LoadPrint(addr) => out.push_str(&format!("{pad}print(load({addr}));\n")),
            S::If(v, then_b, else_b) => {
                out.push_str(&format!("{pad}if (v{v} % 2 == 0) {{\n"));
                print_stmts(then_b, depth + 1, counter, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                print_stmts(else_b, depth + 1, counter, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Loop(k, body) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("{pad}let loop{c} = 0;\n"));
                out.push_str(&format!("{pad}while (loop{c} < {k}) {{\n"));
                print_stmts(body, depth + 1, counter, out);
                out.push_str(&format!("{}loop{c} = loop{c} + 1;\n", "    ".repeat(depth + 2)));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn to_source(stmts: &[S]) -> String {
    let mut body = String::new();
    let mut counter = 0usize;
    print_stmts(stmts, 0, &mut counter, &mut body);
    let decls: String = (0..VARS)
        .map(|i| format!("    let v{i} = {};\n", i as i64 + 1))
        .collect();
    format!("fn main() {{\n{decls}{body}}}\n")
}

fn stmt_strategy() -> impl Strategy<Value = Vec<S>> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(S::Print),
        ((0..VARS), -20i64..20).prop_map(|(v, n)| S::Assign(v, n)),
        ((0..VARS), (0..VARS)).prop_map(|(a, b)| S::AddVar(a, b)),
        ((0i64..8), (0..VARS)).prop_map(|(a, v)| S::Store(a, v)),
        (0i64..8).prop_map(S::LoadPrint),
    ];
    let stmt = leaf.prop_recursive(3, 32, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            ((0..VARS), block.clone(), block.clone())
                .prop_map(|(v, t, e)| S::If(v, t, e)),
            ((1u8..4), block).prop_map(|(k, b)| S::Loop(k, b)),
        ]
    });
    prop::collection::vec(stmt, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn coarse_and_fine_lowering_agree(stmts in stmt_strategy()) {
        let src = to_source(&stmts);
        let coarse = compile(&src).expect("generated source compiles");
        let fine = compile_with_options(
            &src,
            LowerOptions { stmt_per_block: true },
        )
        .expect("generated source compiles (fine)");
        let limits = ExecLimits::default();
        let out_coarse = run(&coarse, &[], limits).expect("runs").output;
        let out_fine = run(&fine, &[], limits).expect("runs (fine)").output;
        prop_assert_eq!(out_coarse, out_fine);
    }

    #[test]
    fn traces_of_random_programs_compact_losslessly(stmts in stmt_strategy()) {
        let src = to_source(&stmts);
        let program = compile(&src).expect("generated source compiles");
        let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("runs");
        let compacted = twpp::compact(&wpp).expect("compacts");
        prop_assert_eq!(compacted.reconstruct(), wpp);
    }
}
