//! Whole-program-path collection: a CFG interpreter that executes
//! [`twpp_ir::Program`]s and records the complete control flow trace, plus
//! the raw (uncompacted) WPP representation the paper starts from.
//!
//! The paper generated WPPs by instrumenting SPECint95 binaries with the
//! Trimaran infrastructure; here the "instrumentation" is a [`TraceSink`]
//! that the interpreter notifies on every function entry/exit and basic
//! block execution. Everything downstream (`twpp`, `twpp-sequitur`,
//! `twpp-dataflow`) consumes only the resulting event stream.
//!
//! # Example
//!
//! ```
//! use twpp_ir::{single_function_program, Operand, Stmt, Terminator};
//! use twpp_tracer::{run_traced, ExecLimits};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = single_function_program(|fb| {
//!     let entry = fb.entry();
//!     fb.push(entry, Stmt::Print(Operand::Const(7)));
//!     fb.terminate(entry, Terminator::Return(None));
//! })?;
//! let (execution, wpp) = run_traced(&program, &[], ExecLimits::default())?;
//! assert_eq!(execution.output, vec![7]);
//! assert_eq!(wpp.event_count(), 3); // Enter(main), Block(1), Exit
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod interp;
pub mod raw;

pub use event::WppEvent;
pub use interp::{
    run, run_to_breakpoint, run_traced, BreakpointSink, ExecError, ExecLimits, Execution, Interp,
    TraceSink,
};
pub use raw::{RawSalvage, RawWpp, RawWppError};
