//! The WPP event alphabet and its 4-byte word encoding.

use std::fmt;

use twpp_ir::{BlockId, FuncId};

/// One event of a whole program path.
///
/// A WPP is the complete control-flow trace of one program execution:
/// function entries and exits (the dynamic call structure) interleaved with
/// the basic blocks executed at each activation's own nesting level.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum WppEvent {
    /// A function activation begins.
    Enter(FuncId),
    /// A basic block of the current activation executes.
    Block(BlockId),
    /// The current activation returns.
    Exit,
}

impl WppEvent {
    const TAG_BLOCK: u32 = 0;
    const TAG_ENTER: u32 = 1 << 30;
    const TAG_EXIT: u32 = 2 << 30;
    const TAG_MASK: u32 = 3 << 30;
    const PAYLOAD_MASK: u32 = !Self::TAG_MASK;

    /// Maximum representable block/function id (30 payload bits).
    pub const MAX_ID: u32 = Self::PAYLOAD_MASK;

    /// Encodes the event as one 4-byte word.
    ///
    /// # Panics
    ///
    /// Panics if a block or function id exceeds [`WppEvent::MAX_ID`].
    pub fn encode(self) -> u32 {
        match self {
            WppEvent::Block(b) => {
                assert!(b.as_u32() <= Self::MAX_ID, "block id exceeds 30 bits");
                Self::TAG_BLOCK | b.as_u32()
            }
            WppEvent::Enter(f) => {
                assert!(f.as_u32() <= Self::MAX_ID, "function id exceeds 30 bits");
                Self::TAG_ENTER | f.as_u32()
            }
            WppEvent::Exit => Self::TAG_EXIT,
        }
    }

    /// Decodes an event from its word form.
    ///
    /// Returns `None` for words with the reserved tag `11` or a zero block
    /// id (block ids are 1-based).
    pub fn decode(word: u32) -> Option<WppEvent> {
        let payload = word & Self::PAYLOAD_MASK;
        match word & Self::TAG_MASK {
            Self::TAG_BLOCK => {
                if payload == 0 {
                    None
                } else {
                    Some(WppEvent::Block(BlockId::new(payload)))
                }
            }
            Self::TAG_ENTER => Some(WppEvent::Enter(FuncId::from_u32(payload))),
            Self::TAG_EXIT => Some(WppEvent::Exit),
            _ => None,
        }
    }

    /// Returns `true` for [`WppEvent::Block`].
    pub fn is_block(self) -> bool {
        matches!(self, WppEvent::Block(_))
    }
}

impl fmt::Display for WppEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WppEvent::Enter(id) => write!(f, "enter({id})"),
            WppEvent::Block(id) => write!(f, "{}", id.as_u32()),
            WppEvent::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let events = [
            WppEvent::Enter(FuncId::from_index(0)),
            WppEvent::Enter(FuncId::from_index(12345)),
            WppEvent::Block(BlockId::new(1)),
            WppEvent::Block(BlockId::new(WppEvent::MAX_ID)),
            WppEvent::Exit,
        ];
        for e in events {
            assert_eq!(WppEvent::decode(e.encode()), Some(e));
        }
    }

    #[test]
    fn reserved_tag_and_zero_block_decode_to_none() {
        assert_eq!(WppEvent::decode(3 << 30), None);
        assert_eq!(WppEvent::decode(0), None); // Block with id 0
    }

    #[test]
    #[should_panic(expected = "30 bits")]
    fn oversized_block_id_panics() {
        let _ = WppEvent::Block(BlockId::new(WppEvent::MAX_ID + 1)).encode();
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(WppEvent::Block(BlockId::new(7)).to_string(), "7");
        assert_eq!(WppEvent::Exit.to_string(), "exit");
    }
}
