//! The CFG interpreter that executes programs and emits WPP events.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use twpp_ir::{BlockId, FuncId, Function, Operand, Program, Rvalue, Stmt, Terminator, Var};

use crate::event::WppEvent;
use crate::raw::RawWpp;

/// Receives trace events as the interpreter runs.
///
/// This plays the role of the paper's binary instrumentation: every function
/// entry/exit and basic block execution is reported in program order.
pub trait TraceSink {
    /// A function activation begins.
    fn enter(&mut self, func: FuncId);
    /// A basic block executes at the current activation's level.
    fn block(&mut self, block: BlockId);
    /// The current activation returns.
    fn exit(&mut self);

    /// Polled after every block: returning `true` stops execution (used by
    /// breakpoints — the paper's debugging scenario analyzes the WPP of the
    /// partial execution up to a breakpoint).
    fn should_stop(&self) -> bool {
        false
    }
}

impl TraceSink for Vec<WppEvent> {
    fn enter(&mut self, func: FuncId) {
        self.push(WppEvent::Enter(func));
    }

    fn block(&mut self, block: BlockId) {
        self.push(WppEvent::Block(block));
    }

    fn exit(&mut self) {
        self.push(WppEvent::Exit);
    }
}

/// A sink that discards all events (for running untraced).
#[derive(Copy, Clone, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enter(&mut self, _: FuncId) {}
    fn block(&mut self, _: BlockId) {}
    fn exit(&mut self) {}
}

/// Resource limits protecting the interpreter from runaway programs.
#[derive(Copy, Clone, Debug)]
pub struct ExecLimits {
    /// Maximum number of executed basic blocks.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Optional wall-clock deadline, measured from [`Interp::new`].
    /// Checked at the same cadence as `max_steps` (once per executed
    /// block), so an overrun is detected within one block step.
    pub max_wall: Option<std::time::Duration>,
}

impl Default for ExecLimits {
    fn default() -> ExecLimits {
        ExecLimits {
            max_steps: 50_000_000,
            max_call_depth: 512,
            max_wall: None,
        }
    }
}

impl ExecLimits {
    /// Returns these limits with a wall-clock deadline of `ms`
    /// milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> ExecLimits {
        self.max_wall = Some(std::time::Duration::from_millis(ms));
        self
    }
}

/// Errors raised during execution.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ExecError {
    /// The block step limit was exceeded.
    StepLimit(u64),
    /// The call depth limit was exceeded.
    DepthLimit(usize),
    /// The wall-clock deadline was exceeded.
    Deadline(std::time::Duration),
    /// An `input()` expression ran past the end of the input stream.
    InputExhausted,
    /// Internal control signal: the trace sink requested a stop. Never
    /// escapes [`Interp::run`], which reports a stopped execution as a
    /// normal completion (check the sink, e.g.
    /// [`BreakpointSink::hit`], to distinguish).
    Stopped,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit(n) => write!(f, "execution exceeded {n} block steps"),
            ExecError::DepthLimit(n) => write!(f, "execution exceeded call depth {n}"),
            ExecError::Deadline(d) => {
                write!(f, "execution exceeded wall-clock deadline of {} ms", d.as_millis())
            }
            ExecError::InputExhausted => f.write_str("input stream exhausted"),
            ExecError::Stopped => f.write_str("execution stopped at a breakpoint"),
        }
    }
}

impl Error for ExecError {}

/// The observable result of a completed execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    /// Values printed by the program, in order.
    pub output: Vec<i64>,
    /// Number of basic blocks executed.
    pub steps: u64,
}

/// The interpreter. Create one with [`Interp::new`], then call
/// [`Interp::run`].
///
/// Memory is a flat `i64 -> i64` map initialised to zeroes; variables are
/// per-activation slots initialised to zero (parameters receive argument
/// values).
pub struct Interp<'p, S> {
    program: &'p Program,
    sink: S,
    limits: ExecLimits,
    input: Vec<i64>,
    input_pos: usize,
    output: Vec<i64>,
    memory: HashMap<i64, i64>,
    steps: u64,
    started: std::time::Instant,
}

impl<'p, S: TraceSink> Interp<'p, S> {
    /// Creates an interpreter for `program` reading from `input` and
    /// reporting trace events to `sink`.
    pub fn new(program: &'p Program, input: &[i64], sink: S, limits: ExecLimits) -> Interp<'p, S> {
        Interp {
            program,
            sink,
            limits,
            input: input.to_vec(),
            input_pos: 0,
            output: Vec::new(),
            memory: HashMap::new(),
            steps: 0,
            started: std::time::Instant::now(),
        }
    }

    /// Runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Returns an error if a resource limit is hit or the input stream is
    /// exhausted; the trace emitted so far remains in the sink.
    pub fn run(mut self) -> Result<(Execution, S), ExecError> {
        match self.call(self.program.main(), &[], 0) {
            Ok(_) | Err(ExecError::Stopped) => Ok((
                Execution {
                    output: self.output,
                    steps: self.steps,
                },
                self.sink,
            )),
            Err(e) => Err(e),
        }
    }

    fn call(&mut self, func_id: FuncId, args: &[i64], depth: usize) -> Result<Option<i64>, ExecError> {
        if depth >= self.limits.max_call_depth {
            return Err(ExecError::DepthLimit(self.limits.max_call_depth));
        }
        let func = self.program.func(func_id);
        debug_assert_eq!(args.len(), func.param_count());
        let mut vars = vec![0i64; func.var_count()];
        vars[..args.len()].copy_from_slice(args);

        self.sink.enter(func_id);
        let result = self.run_body(func, &mut vars, depth);
        if result.is_ok() {
            self.sink.exit();
        }
        result
    }

    fn run_body(
        &mut self,
        func: &Function,
        vars: &mut [i64],
        depth: usize,
    ) -> Result<Option<i64>, ExecError> {
        let mut block = BlockId::ENTRY;
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(ExecError::StepLimit(self.limits.max_steps));
            }
            if let Some(max_wall) = self.limits.max_wall {
                if self.started.elapsed() >= max_wall {
                    return Err(ExecError::Deadline(max_wall));
                }
            }
            self.sink.block(block);
            if self.sink.should_stop() {
                return Err(ExecError::Stopped);
            }
            let bb = func.block(block);
            for stmt in bb.stmts() {
                self.exec_stmt(stmt, vars, depth)?;
            }
            match bb.terminator() {
                Terminator::Jump(d) => block = *d,
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    block = if self.eval_operand(*cond, vars) != 0 {
                        *then_dest
                    } else {
                        *else_dest
                    };
                }
                Terminator::Return(op) => {
                    return Ok(op.map(|o| self.eval_operand(o, vars)));
                }
            }
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt, vars: &mut [i64], depth: usize) -> Result<(), ExecError> {
        match stmt {
            Stmt::Assign { dest, rvalue } => {
                let value = self.eval_rvalue(rvalue, vars, depth)?;
                vars[dest.index()] = value;
            }
            Stmt::Store { addr, value } => {
                let addr = self.eval_operand(*addr, vars);
                let value = self.eval_operand(*value, vars);
                self.memory.insert(addr, value);
            }
            Stmt::Print(op) => {
                let value = self.eval_operand(*op, vars);
                self.output.push(value);
            }
            Stmt::Call { callee, args } => {
                let argv: Vec<i64> = args.iter().map(|a| self.eval_operand(*a, vars)).collect();
                self.call(*callee, &argv, depth + 1)?;
            }
        }
        Ok(())
    }

    fn eval_rvalue(
        &mut self,
        rvalue: &Rvalue,
        vars: &mut [i64],
        depth: usize,
    ) -> Result<i64, ExecError> {
        Ok(match rvalue {
            Rvalue::Use(op) => self.eval_operand(*op, vars),
            Rvalue::Unary(un, op) => un.eval(self.eval_operand(*op, vars)),
            Rvalue::Binary(bin, a, b) => {
                bin.eval(self.eval_operand(*a, vars), self.eval_operand(*b, vars))
            }
            Rvalue::Load(addr) => {
                let addr = self.eval_operand(*addr, vars);
                self.memory.get(&addr).copied().unwrap_or(0)
            }
            Rvalue::Input => {
                let v = *self
                    .input
                    .get(self.input_pos)
                    .ok_or(ExecError::InputExhausted)?;
                self.input_pos += 1;
                v
            }
            Rvalue::Call { callee, args } => {
                let argv: Vec<i64> = args.iter().map(|a| self.eval_operand(*a, vars)).collect();
                self.call(*callee, &argv, depth + 1)?
                    .expect("validated value-returning callee returned no value")
            }
        })
    }

    fn eval_operand(&self, op: Operand, vars: &[i64]) -> i64 {
        match op {
            Operand::Const(c) => c,
            Operand::Var(v) => self.read_var(v, vars),
        }
    }

    fn read_var(&self, v: Var, vars: &[i64]) -> i64 {
        vars[v.index()]
    }
}

/// Runs `program` on `input`, collecting the raw WPP alongside the output.
///
/// # Errors
///
/// Propagates any [`ExecError`].
pub fn run_traced(
    program: &Program,
    input: &[i64],
    limits: ExecLimits,
) -> Result<(Execution, RawWpp), ExecError> {
    let (execution, events) = Interp::new(program, input, Vec::new(), limits).run()?;
    Ok((execution, RawWpp::from_events(&events)))
}

/// A sink wrapper that stops execution when a given block of a given
/// function has executed `hits` times — a debugger breakpoint.
#[derive(Clone, Debug)]
pub struct BreakpointSink<S> {
    inner: S,
    func: FuncId,
    block: BlockId,
    remaining: u32,
    /// Activation stack: `true` while inside the target function.
    stack: Vec<bool>,
}

impl<S: TraceSink> BreakpointSink<S> {
    /// Wraps `inner`, stopping at the `hits`-th execution of `block` inside
    /// `func`.
    ///
    /// # Panics
    ///
    /// Panics if `hits` is zero.
    pub fn new(inner: S, func: FuncId, block: BlockId, hits: u32) -> BreakpointSink<S> {
        assert!(hits >= 1, "a breakpoint needs at least one hit");
        BreakpointSink {
            inner,
            func,
            block,
            remaining: hits,
            stack: Vec::new(),
        }
    }

    /// Consumes the wrapper, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// `true` once the breakpoint has been hit.
    pub fn hit(&self) -> bool {
        self.remaining == 0
    }
}

impl<S: TraceSink> TraceSink for BreakpointSink<S> {
    fn enter(&mut self, func: FuncId) {
        self.stack.push(func == self.func);
        self.inner.enter(func);
    }

    fn block(&mut self, block: BlockId) {
        if self.remaining > 0
            && block == self.block
            && self.stack.last().copied().unwrap_or(false)
        {
            self.remaining -= 1;
        }
        self.inner.block(block);
    }

    fn exit(&mut self) {
        self.stack.pop();
        self.inner.exit();
    }

    fn should_stop(&self) -> bool {
        self.remaining == 0 || self.inner.should_stop()
    }
}

/// Runs `program` until `block` in `func` has executed `hits` times (or the
/// program ends first), returning the output so far, the partial WPP and
/// whether the breakpoint was actually reached.
///
/// The partial WPP ends mid-activation; `twpp::partition` accepts such
/// truncated streams, which is exactly the paper's debugging setup (§4.3.2:
/// "the TWPP corresponding to partial program execution up to the
/// breakpoint").
///
/// # Errors
///
/// Propagates resource-limit and input errors.
pub fn run_to_breakpoint(
    program: &Program,
    input: &[i64],
    limits: ExecLimits,
    func: FuncId,
    block: BlockId,
    hits: u32,
) -> Result<(Execution, RawWpp, bool), ExecError> {
    let sink = BreakpointSink::new(Vec::new(), func, block, hits);
    let (execution, sink) = Interp::new(program, input, sink, limits).run()?;
    let hit = sink.hit();
    Ok((execution, RawWpp::from_events(&sink.into_inner()), hit))
}

/// Runs `program` on `input` without tracing.
///
/// # Errors
///
/// Propagates any [`ExecError`].
pub fn run(program: &Program, input: &[i64], limits: ExecLimits) -> Result<Execution, ExecError> {
    let (execution, _) = Interp::new(program, input, NullSink, limits).run()?;
    Ok(execution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twpp_ir::{
        single_function_program, BinOp, FunctionBuilder, ProgramBuilder, Rvalue, Stmt, Terminator,
    };

    #[test]
    fn straight_line_arithmetic() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let v = fb.new_var();
            fb.push(e, Stmt::assign(v, Rvalue::Use(Operand::Const(2))));
            fb.push(
                e,
                Stmt::assign(
                    v,
                    Rvalue::Binary(BinOp::Mul, Operand::Var(v), Operand::Const(21)),
                ),
            );
            fb.push(e, Stmt::Print(Operand::Var(v)));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output, vec![42]);
        assert_eq!(exec.steps, 1);
    }

    #[test]
    fn loop_counts_iterations() {
        // i = 0; while i < 5 { print i; i = i + 1 }
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let head = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            let i = fb.new_var();
            let c = fb.new_var();
            fb.push(e, Stmt::assign(i, Rvalue::Use(Operand::Const(0))));
            fb.terminate(e, Terminator::Jump(head));
            fb.push(
                head,
                Stmt::assign(
                    c,
                    Rvalue::Binary(BinOp::Lt, Operand::Var(i), Operand::Const(5)),
                ),
            );
            fb.terminate(
                head,
                Terminator::Branch {
                    cond: Operand::Var(c),
                    then_dest: body,
                    else_dest: exit,
                },
            );
            fb.push(body, Stmt::Print(Operand::Var(i)));
            fb.push(
                body,
                Stmt::assign(
                    i,
                    Rvalue::Binary(BinOp::Add, Operand::Var(i), Operand::Const(1)),
                ),
            );
            fb.terminate(body, Terminator::Jump(head));
            fb.terminate(exit, Terminator::Return(None));
        })
        .unwrap();
        let (exec, wpp) = run_traced(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output, vec![0, 1, 2, 3, 4]);
        // Events: enter + 1 entry block + 6 head + 5 body + 1 exit block + exit.
        assert_eq!(wpp.event_count(), 2 + 1 + 6 + 5 + 1);
    }

    fn call_program() -> Program {
        // fn double(x) -> x * 2; main { print(double(21)) }
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double", 1, true).unwrap();
        let main = pb.declare("main", 0, false).unwrap();

        let mut db = FunctionBuilder::new_returning(1);
        let de = db.entry();
        let x = db.param(0);
        let r = db.new_var();
        db.push(
            de,
            Stmt::assign(
                r,
                Rvalue::Binary(BinOp::Mul, Operand::Var(x), Operand::Const(2)),
            ),
        );
        db.terminate(de, Terminator::Return(Some(Operand::Var(r))));
        pb.define(double, db).unwrap();

        let mut mb = FunctionBuilder::new(0);
        let me = mb.entry();
        let v = mb.new_var();
        mb.push(
            me,
            Stmt::assign(
                v,
                Rvalue::Call {
                    callee: double,
                    args: vec![Operand::Const(21)],
                },
            ),
        );
        mb.push(me, Stmt::Print(Operand::Var(v)));
        mb.terminate(me, Terminator::Return(None));
        pb.define(main, mb).unwrap();
        pb.finish().unwrap()
    }

    use twpp_ir::Program;

    #[test]
    fn calls_nest_in_trace() {
        let p = call_program();
        let (exec, events) = Interp::new(&p, &[], Vec::new(), ExecLimits::default())
            .run()
            .unwrap();
        assert_eq!(exec.output, vec![42]);
        let (main_id, _) = p.func_by_name("main").unwrap();
        let (double_id, _) = p.func_by_name("double").unwrap();
        assert_eq!(
            events,
            vec![
                WppEvent::Enter(main_id),
                WppEvent::Block(BlockId::new(1)),
                WppEvent::Enter(double_id),
                WppEvent::Block(BlockId::new(1)),
                WppEvent::Exit,
                WppEvent::Exit,
            ]
        );
    }

    #[test]
    fn input_stream_and_exhaustion() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let v = fb.new_var();
            fb.push(e, Stmt::assign(v, Rvalue::Input));
            fb.push(e, Stmt::Print(Operand::Var(v)));
            fb.push(e, Stmt::assign(v, Rvalue::Input));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        assert_eq!(
            run(&p, &[9], ExecLimits::default()).unwrap_err(),
            ExecError::InputExhausted
        );
        let ok = run(&p, &[9, 10], ExecLimits::default()).unwrap();
        assert_eq!(ok.output, vec![9]);
    }

    #[test]
    fn memory_load_store() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let v = fb.new_var();
            fb.push(
                e,
                Stmt::Store {
                    addr: Operand::Const(100),
                    value: Operand::Const(55),
                },
            );
            fb.push(e, Stmt::assign(v, Rvalue::Load(Operand::Const(100))));
            fb.push(e, Stmt::Print(Operand::Var(v)));
            // Uninitialised memory reads as zero.
            fb.push(e, Stmt::assign(v, Rvalue::Load(Operand::Const(999))));
            fb.push(e, Stmt::Print(Operand::Var(v)));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output, vec![55, 0]);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            fb.terminate(e, Terminator::Jump(e));
        })
        .unwrap();
        let limits = ExecLimits {
            max_steps: 100,
            ..ExecLimits::default()
        };
        assert_eq!(run(&p, &[], limits).unwrap_err(), ExecError::StepLimit(100));
    }

    #[test]
    fn wall_clock_deadline_stops_infinite_loop() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            fb.terminate(e, Terminator::Jump(e));
        })
        .unwrap();
        // Generous step limit; the 5 ms deadline must fire first.
        let limits = ExecLimits {
            max_steps: u64::MAX,
            ..ExecLimits::default()
        }
        .with_deadline_ms(5);
        let started = std::time::Instant::now();
        let err = run(&p, &[], limits).unwrap_err();
        assert_eq!(err, ExecError::Deadline(std::time::Duration::from_millis(5)));
        assert!(err.to_string().contains("deadline"));
        // The stop happened promptly, not after the 50M default steps.
        assert!(started.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn no_deadline_means_no_wall_clock_checks() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            fb.push(e, Stmt::Print(Operand::Const(1)));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        let exec = run(&p, &[], ExecLimits::default()).unwrap();
        assert_eq!(exec.output, vec![1]);
    }

    #[test]
    fn breakpoint_stops_mid_execution_with_partial_trace() {
        // main loops 5 times printing i; break at the 3rd execution of the
        // loop body block.
        let p = single_function_program(|fb| {
            let e = fb.entry();
            let head = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            let i = fb.new_var();
            let c = fb.new_var();
            fb.push(e, Stmt::assign(i, Rvalue::Use(Operand::Const(0))));
            fb.terminate(e, Terminator::Jump(head));
            fb.push(
                head,
                Stmt::assign(
                    c,
                    Rvalue::Binary(BinOp::Lt, Operand::Var(i), Operand::Const(5)),
                ),
            );
            fb.terminate(
                head,
                Terminator::Branch {
                    cond: Operand::Var(c),
                    then_dest: body,
                    else_dest: exit,
                },
            );
            fb.push(body, Stmt::Print(Operand::Var(i)));
            fb.push(
                body,
                Stmt::assign(
                    i,
                    Rvalue::Binary(BinOp::Add, Operand::Var(i), Operand::Const(1)),
                ),
            );
            fb.terminate(body, Terminator::Jump(head));
            fb.terminate(exit, Terminator::Return(None));
        })
        .unwrap();
        let body_block = BlockId::new(3);
        let (exec, wpp, hit) =
            run_to_breakpoint(&p, &[], ExecLimits::default(), p.main(), body_block, 3)
                .unwrap();
        assert!(hit);
        // The breakpoint fires before the body's statements run: two full
        // iterations printed.
        assert_eq!(exec.output, vec![0, 1]);
        // The partial trace ends exactly at the 3rd body execution and is
        // still consumable (open activation).
        let blocks: Vec<BlockId> = wpp
            .iter()
            .filter_map(|e| match e {
                WppEvent::Block(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(blocks.last(), Some(&body_block));
        assert_eq!(blocks.iter().filter(|&&b| b == body_block).count(), 3);
    }

    #[test]
    fn breakpoint_never_hit_runs_to_completion() {
        let p = single_function_program(|fb| {
            let e = fb.entry();
            fb.push(e, Stmt::Print(Operand::Const(1)));
            fb.terminate(e, Terminator::Return(None));
        })
        .unwrap();
        let (exec, wpp, hit) = run_to_breakpoint(
            &p,
            &[],
            ExecLimits::default(),
            p.main(),
            BlockId::new(1),
            5,
        )
        .unwrap();
        assert!(!hit);
        assert_eq!(exec.output, vec![1]);
        // Completed run: balanced trace.
        assert_eq!(wpp.event_count(), 3);
    }

    #[test]
    fn breakpoint_matches_function_scope() {
        // Block 1 exists in both functions; the breakpoint targets f only.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("f", 0, false).unwrap();
        let main = pb.declare("main", 0, false).unwrap();
        let mut fbody = FunctionBuilder::new(0);
        let fe = fbody.entry();
        fbody.push(fe, Stmt::Print(Operand::Const(7)));
        fbody.terminate(fe, Terminator::Return(None));
        pb.define(f, fbody).unwrap();
        let mut mb = FunctionBuilder::new(0);
        let me = mb.entry();
        mb.push(me, Stmt::Print(Operand::Const(1)));
        mb.push(
            me,
            Stmt::Call {
                callee: f,
                args: vec![],
            },
        );
        mb.push(me, Stmt::Print(Operand::Const(2)));
        mb.terminate(me, Terminator::Return(None));
        pb.define(main, mb).unwrap();
        let p = pb.finish().unwrap();
        let (exec, _, hit) =
            run_to_breakpoint(&p, &[], ExecLimits::default(), f, BlockId::new(1), 1).unwrap();
        assert!(hit);
        // main's block 1 ran its first print and the call, but f's body
        // stops before printing.
        assert_eq!(exec.output, vec![1]);
    }

    #[test]
    fn depth_limit_stops_infinite_recursion() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0, false).unwrap();
        let mut mb = FunctionBuilder::new(0);
        let e = mb.entry();
        mb.push(
            e,
            Stmt::Call {
                callee: main,
                args: vec![],
            },
        );
        mb.terminate(e, Terminator::Return(None));
        pb.define(main, mb).unwrap();
        let p = pb.finish().unwrap();
        let limits = ExecLimits {
            max_call_depth: 16,
            ..ExecLimits::default()
        };
        assert_eq!(run(&p, &[], limits).unwrap_err(), ExecError::DepthLimit(16));
    }
}
