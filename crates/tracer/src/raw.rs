//! The raw (uncompacted) WPP representation: a flat stream of 4-byte event
//! words, exactly the form whose sizes Table 1 of the paper reports.
//!
//! The raw form also provides the *uncompacted access* baseline of Table 4:
//! [`RawWpp::scan_function`] must scan the entire stream to collect the path
//! traces of a single function.
//!
//! Serialized streams carry a `WPP0` magic header and — since the
//! integrity rework — a trailing `WPPZ` footer holding the event count
//! and a CRC32 of the event words, so a tracer killed mid-write leaves a
//! detectably incomplete file. [`RawWpp::read_from`] verifies the footer
//! when present (older footer-less streams still load);
//! [`RawWpp::read_salvage`] truncates a damaged stream to its longest
//! decodable event prefix instead of failing.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use twpp_ir::checksum::crc32;
use twpp_ir::{BlockId, FuncId};

use crate::event::WppEvent;

const MAGIC: [u8; 4] = *b"WPP0";
const FOOTER_MAGIC: [u8; 4] = *b"WPPZ";
/// The footer magic as a little-endian word.
const FOOTER_WORD: u32 = u32::from_le_bytes(FOOTER_MAGIC);
/// Footer length in words: magic, event count, CRC32.
const FOOTER_WORDS: usize = 3;

/// A raw whole program path: the complete control-flow trace of one
/// execution, stored as encoded 4-byte words.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RawWpp {
    words: Vec<u32>,
}

/// Byte-size breakdown of a raw WPP, mirroring Table 1's split of a WPP into
/// the dynamic call graph (enter/exit events) and the per-call traces (block
/// events).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RawSizes {
    /// Bytes attributable to the dynamic call structure (enter/exit words).
    pub dcg_bytes: usize,
    /// Bytes attributable to the path traces (block words).
    pub trace_bytes: usize,
}

impl RawSizes {
    /// Total size in bytes.
    pub fn total(&self) -> usize {
        self.dcg_bytes + self.trace_bytes
    }
}

/// Errors produced while decoding a serialized raw WPP.
#[derive(Debug)]
#[non_exhaustive]
pub enum RawWppError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `WPP0` magic.
    BadMagic,
    /// The stream length is not a whole number of words: it was cut
    /// mid-word (as opposed to ending cleanly between events).
    TruncatedWord,
    /// A word failed to decode as an event.
    BadWord(u32),
    /// The stream ends inside the `WPPZ` footer: the write was cut off
    /// after the footer magic but before the CRC.
    TruncatedFooter,
    /// The stream carries a `WPPZ` footer whose event count or CRC32
    /// does not match the words actually present: the trace was
    /// interrupted or damaged after writing began.
    FooterMismatch {
        /// The CRC stored in the footer.
        expected: u32,
        /// The CRC computed over the event words present.
        actual: u32,
    },
}

impl fmt::Display for RawWppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawWppError::Io(e) => write!(f, "WPP stream I/O error: {e}"),
            RawWppError::BadMagic => f.write_str("missing WPP0 magic header"),
            RawWppError::TruncatedWord => f.write_str("WPP stream cut mid-word"),
            RawWppError::BadWord(w) => write!(f, "undecodable WPP word {w:#010x}"),
            RawWppError::TruncatedFooter => f.write_str("WPP stream cut inside its footer"),
            RawWppError::FooterMismatch { expected, actual } => write!(
                f,
                "WPP footer mismatch: stored CRC {expected:#010x}, computed {actual:#010x}"
            ),
        }
    }
}

impl Error for RawWppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RawWppError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RawWppError {
    fn from(e: io::Error) -> RawWppError {
        RawWppError::Io(e)
    }
}

/// What [`RawWpp::read_salvage`] managed to keep from a damaged stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawSalvage {
    /// The longest decodable event prefix.
    pub wpp: RawWpp,
    /// Whole words dropped from the tail (undecodable events; footer
    /// words are not counted).
    pub words_dropped: usize,
    /// Trailing bytes dropped because the stream was cut mid-word.
    pub bytes_dropped: usize,
    /// Whether a footer was present and verified against the kept words.
    pub footer_verified: bool,
}

impl RawSalvage {
    /// Whether the stream was fully intact (requires a verified footer,
    /// so legacy footer-less streams always report damage-unknown).
    pub fn is_clean(&self) -> bool {
        self.footer_verified && self.words_dropped == 0 && self.bytes_dropped == 0
    }
}

/// How the trailing `WPPZ` footer of a stream presented itself.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum FooterState {
    /// No footer: a legacy (pre-integrity) stream.
    Absent,
    /// Complete footer with the stored CRC32.
    Full(u32),
    /// The footer magic is present but the stream was cut before the CRC.
    Partial,
}

impl RawWpp {
    /// Creates an empty WPP.
    pub fn new() -> RawWpp {
        RawWpp::default()
    }

    /// Builds a raw WPP from decoded events.
    pub fn from_events(events: &[WppEvent]) -> RawWpp {
        RawWpp {
            words: events.iter().map(|e| e.encode()).collect(),
        }
    }

    /// Builds a raw WPP directly from encoded words.
    ///
    /// # Errors
    ///
    /// Returns [`RawWppError::BadWord`] if any word does not decode.
    pub fn from_words(words: Vec<u32>) -> Result<RawWpp, RawWppError> {
        if let Some(&bad) = words.iter().find(|w| WppEvent::decode(**w).is_none()) {
            return Err(RawWppError::BadWord(bad));
        }
        Ok(RawWpp { words })
    }

    /// The encoded words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes of the uncompacted representation (4 bytes per event).
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Decodes all events.
    pub fn events(&self) -> Vec<WppEvent> {
        self.words
            .iter()
            .map(|w| WppEvent::decode(*w).expect("RawWpp contains only valid words"))
            .collect()
    }

    /// Iterates over decoded events without allocating.
    pub fn iter(&self) -> impl Iterator<Item = WppEvent> + '_ {
        self.words
            .iter()
            .map(|w| WppEvent::decode(*w).expect("RawWpp contains only valid words"))
    }

    /// Splits the byte size into call-structure and trace components
    /// (Table 1).
    pub fn size_breakdown(&self) -> RawSizes {
        let mut sizes = RawSizes::default();
        for e in self.iter() {
            if e.is_block() {
                sizes.trace_bytes += 4;
            } else {
                sizes.dcg_bytes += 4;
            }
        }
        sizes
    }

    /// Number of calls (enter events) per function.
    pub fn call_counts(&self) -> HashMap<FuncId, u64> {
        let mut counts = HashMap::new();
        for e in self.iter() {
            if let WppEvent::Enter(f) = e {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Collects the path traces of every call to `func` by scanning the
    /// **entire** stream — the uncompacted-access baseline of Table 4.
    ///
    /// A path trace contains the block events at the activation's own
    /// nesting level; blocks executed by callees belong to the callees'
    /// traces.
    pub fn scan_function(&self, func: FuncId) -> Vec<Vec<BlockId>> {
        let mut result = Vec::new();
        // Stack of activations; each entry is Some(trace) when the
        // activation belongs to `func`, None otherwise.
        let mut stack: Vec<Option<Vec<BlockId>>> = Vec::new();
        for e in self.iter() {
            match e {
                WppEvent::Enter(f) => {
                    stack.push(if f == func { Some(Vec::new()) } else { None });
                }
                WppEvent::Block(b) => {
                    if let Some(Some(trace)) = stack.last_mut() {
                        trace.push(b);
                    }
                }
                WppEvent::Exit => {
                    if let Some(Some(trace)) = stack.pop() {
                        result.push(trace);
                    }
                }
            }
        }
        // Unbalanced streams (e.g. truncated executions) still yield the
        // completed activations; drain any open ones of `func` too.
        while let Some(top) = stack.pop() {
            if let Some(trace) = top {
                result.push(trace);
            }
        }
        result
    }

    /// The CRC32 of the encoded event words (what the `WPPZ` footer
    /// stores).
    fn words_crc(words: &[u32]) -> u32 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        crc32(&bytes)
    }

    /// Serializes the trace with a `WPP0` magic header and a trailing
    /// `WPPZ` footer (event count + CRC32), so interrupted writes are
    /// detectable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`. A `&mut` reference can be passed
    /// as the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&MAGIC)?;
        for w in &self.words {
            writer.write_all(&w.to_le_bytes())?;
        }
        writer.write_all(&FOOTER_MAGIC)?;
        writer.write_all(&(self.words.len() as u32).to_le_bytes())?;
        writer.write_all(&RawWpp::words_crc(&self.words).to_le_bytes())?;
        Ok(())
    }

    /// Splits a word stream into events and a footer state. A complete
    /// footer is recognized only when the magic *and* the event count
    /// line up, so a legacy footer-less stream is never misread; a footer
    /// cut at a word boundary is detected so its magic is not mistaken
    /// for an event.
    fn split_footer(words: &[u32]) -> (&[u32], FooterState) {
        let n = words.len();
        if n >= FOOTER_WORDS
            && words[n - 3] == FOOTER_WORD
            && words[n - 2] as usize == n - FOOTER_WORDS
        {
            return (&words[..n - FOOTER_WORDS], FooterState::Full(words[n - 1]));
        }
        if n >= 2 && words[n - 2] == FOOTER_WORD && words[n - 1] as usize == n - 2 {
            return (&words[..n - 2], FooterState::Partial);
        }
        if n >= 1 && words[n - 1] == FOOTER_WORD {
            return (&words[..n - 1], FooterState::Partial);
        }
        (words, FooterState::Absent)
    }

    /// Deserializes a trace previously written with [`RawWpp::write_to`].
    /// The footer's CRC is verified when present; streams from before the
    /// footer was introduced still load.
    ///
    /// # Errors
    ///
    /// Returns a [`RawWppError`] for malformed input
    /// ([`RawWppError::FooterMismatch`] when the trace was interrupted or
    /// damaged after writing began) or I/O failures from `reader`. A
    /// `&mut` reference can be passed as the reader.
    pub fn read_from<R: Read>(mut reader: R) -> Result<RawWpp, RawWppError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(RawWppError::BadMagic);
        }
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        if bytes.len() % 4 != 0 {
            return Err(RawWppError::TruncatedWord);
        }
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let (events, footer) = RawWpp::split_footer(&words);
        match footer {
            FooterState::Full(expected) => {
                let actual = RawWpp::words_crc(events);
                if expected != actual {
                    return Err(RawWppError::FooterMismatch { expected, actual });
                }
            }
            FooterState::Partial => return Err(RawWppError::TruncatedFooter),
            FooterState::Absent => {}
        }
        let events = events.to_vec();
        RawWpp::from_words(events)
    }

    /// Reads a possibly damaged stream, keeping the longest decodable
    /// event prefix instead of failing: trailing partial words, an
    /// unverifiable footer and undecodable tail words are all dropped and
    /// reported in the returned [`RawSalvage`].
    ///
    /// # Errors
    ///
    /// Only unusable input errors: a missing `WPP0` magic or an I/O
    /// failure.
    pub fn read_salvage<R: Read>(mut reader: R) -> Result<RawSalvage, RawWppError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(RawWppError::BadMagic);
        }
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        let bytes_dropped = bytes.len() % 4;
        let words: Vec<u32> = bytes[..bytes.len() - bytes_dropped]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let (events, footer) = RawWpp::split_footer(&words);
        let footer_verified = matches!(
            footer,
            FooterState::Full(stored) if stored == RawWpp::words_crc(events)
        );
        // Keep the longest prefix of decodable events.
        let keep = events
            .iter()
            .position(|w| WppEvent::decode(*w).is_none())
            .unwrap_or(events.len());
        let words_dropped = events.len() - keep;
        let wpp = RawWpp {
            words: events[..keep].to_vec(),
        };
        Ok(RawSalvage {
            wpp,
            words_dropped,
            bytes_dropped,
            footer_verified: footer_verified && words_dropped == 0,
        })
    }
}

/// An incremental push-parser for serialized WPP streams: the streaming
/// counterpart of [`RawWpp::read_from`], built for ingestion paths that
/// see the bytes in arbitrary chunks (a socket, a tailed file, stdin)
/// and must not buffer the whole stream.
///
/// Feed chunks with [`WppStream::push`]; decoded events are appended to
/// the caller's vector as soon as they are unambiguous. Because the
/// `WPPZ` footer magic also decodes as a valid `Enter` event, the parser
/// holds back the last [`FOOTER_WORDS`] words until [`WppStream::finish`]
/// resolves whether they are the footer or trailing events — so the
/// emitted prefix never contains footer words, and the two entry points
/// classify every malformed stream identically (asserted by tests).
#[derive(Debug)]
pub struct WppStream {
    /// Bytes of the magic still outstanding (4 at birth, 0 once checked).
    magic_pending: usize,
    /// Partial word bytes carried between pushes (0..4 of them).
    partial: Vec<u8>,
    /// The last up-to-[`FOOTER_WORDS`] words, withheld from emission.
    holdback: Vec<u32>,
    /// Running CRC over the emitted event words.
    crc: twpp_ir::checksum::Crc32,
    /// Events emitted so far.
    emitted: u64,
    /// Total bytes accepted by [`WppStream::push`].
    consumed: u64,
}

impl Default for WppStream {
    fn default() -> WppStream {
        WppStream::new()
    }
}

impl WppStream {
    /// A parser expecting the `WPP0` magic first.
    pub fn new() -> WppStream {
        WppStream {
            magic_pending: MAGIC.len(),
            partial: Vec::new(),
            holdback: Vec::new(),
            crc: twpp_ir::checksum::Crc32::new(),
            emitted: 0,
            consumed: 0,
        }
    }

    /// Events emitted so far (excludes held-back tail words).
    pub fn events_emitted(&self) -> u64 {
        self.emitted
    }

    /// Total bytes pushed into the parser.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes one chunk, appending newly-unambiguous events to `out`.
    ///
    /// # Errors
    ///
    /// [`RawWppError::BadMagic`] if the stream does not open with `WPP0`;
    /// [`RawWppError::BadWord`] the moment an undecodable non-tail word
    /// is seen. After an error the parser is poisoned and must be
    /// discarded.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<WppEvent>) -> Result<(), RawWppError> {
        self.consumed += bytes.len() as u64;
        let mut rest = bytes;
        if self.magic_pending > 0 {
            let take = rest.len().min(self.magic_pending);
            let at = MAGIC.len() - self.magic_pending;
            if rest[..take] != MAGIC[at..at + take] {
                return Err(RawWppError::BadMagic);
            }
            self.magic_pending -= take;
            rest = &rest[take..];
        }
        for &b in rest {
            self.partial.push(b);
            if self.partial.len() == 4 {
                let word =
                    u32::from_le_bytes([self.partial[0], self.partial[1], self.partial[2], self.partial[3]]);
                self.partial.clear();
                self.holdback.push(word);
                if self.holdback.len() > FOOTER_WORDS {
                    let ready = self.holdback.remove(0);
                    match WppEvent::decode(ready) {
                        Some(e) => {
                            self.crc.update(&ready.to_le_bytes());
                            self.emitted += 1;
                            out.push(e);
                        }
                        None => return Err(RawWppError::BadWord(ready)),
                    }
                }
            }
        }
        Ok(())
    }

    /// Ends the stream: resolves the held-back tail against the footer
    /// grammar of [`RawWpp::read_from`], appending any trailing events to
    /// `out`. Returns `true` if a complete footer was present and its
    /// CRC verified, `false` for a legacy footer-less stream.
    ///
    /// # Errors
    ///
    /// Exactly the classifications of [`RawWpp::read_from`]: `Io`
    /// (unexpected EOF before the magic completed), `TruncatedWord`,
    /// `TruncatedFooter`, `FooterMismatch`, or `BadWord` in the tail.
    pub fn finish(self, out: &mut Vec<WppEvent>) -> Result<bool, RawWppError> {
        if self.magic_pending > 0 {
            return Err(RawWppError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        if !self.partial.is_empty() {
            return Err(RawWppError::TruncatedWord);
        }
        let h = &self.holdback;
        let n = self.emitted + h.len() as u64;
        // Mirror RawWpp::split_footer over the virtual full word vector:
        // only the last FOOTER_WORDS words are materialized, but every
        // pattern it matches lives inside them.
        if n >= FOOTER_WORDS as u64
            && h.len() == FOOTER_WORDS
            && h[0] == FOOTER_WORD
            && u64::from(h[1]) == n - FOOTER_WORDS as u64
        {
            let expected = h[2];
            let actual = self.crc.finalize();
            if expected != actual {
                return Err(RawWppError::FooterMismatch { expected, actual });
            }
            return Ok(true);
        }
        if n >= 2 && h.len() >= 2 {
            let last = h[h.len() - 1];
            let prev = h[h.len() - 2];
            if prev == FOOTER_WORD && u64::from(last) == n - 2 {
                return Err(RawWppError::TruncatedFooter);
            }
        }
        if h.last() == Some(&FOOTER_WORD) {
            return Err(RawWppError::TruncatedFooter);
        }
        // Legacy footer-less stream: the tail words are plain events.
        for &word in h {
            match WppEvent::decode(word) {
                Some(e) => out.push(e),
                None => return Err(RawWppError::BadWord(word)),
            }
        }
        Ok(false)
    }
}

impl FromIterator<WppEvent> for RawWpp {
    fn from_iter<I: IntoIterator<Item = WppEvent>>(iter: I) -> RawWpp {
        RawWpp {
            words: iter.into_iter().map(|e| e.encode()).collect(),
        }
    }
}

impl Extend<WppEvent> for RawWpp {
    fn extend<I: IntoIterator<Item = WppEvent>>(&mut self, iter: I) {
        self.words.extend(iter.into_iter().map(|e| e.encode()));
    }
}

impl fmt::Display for RawWpp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for e in self.iter() {
            if !first {
                f.write_str(".")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    fn sample() -> RawWpp {
        // main: 1 . f(1.2) . 2 . f(1.3) . 3
        RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(1)),
            WppEvent::Block(b(2)),
            WppEvent::Exit,
            WppEvent::Block(b(2)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(1)),
            WppEvent::Block(b(3)),
            WppEvent::Exit,
            WppEvent::Block(b(3)),
            WppEvent::Exit,
        ])
    }

    #[test]
    fn scan_function_collects_per_call_traces() {
        let wpp = sample();
        assert_eq!(
            wpp.scan_function(f(1)),
            vec![vec![b(1), b(2)], vec![b(1), b(3)]]
        );
        assert_eq!(wpp.scan_function(f(0)), vec![vec![b(1), b(2), b(3)]]);
        assert!(wpp.scan_function(f(9)).is_empty());
    }

    #[test]
    fn size_breakdown_splits_dcg_and_traces() {
        let wpp = sample();
        let sizes = wpp.size_breakdown();
        assert_eq!(sizes.dcg_bytes, 6 * 4); // 3 enters + 3 exits
        assert_eq!(sizes.trace_bytes, 7 * 4);
        assert_eq!(sizes.total(), wpp.byte_len());
    }

    #[test]
    fn call_counts() {
        let wpp = sample();
        let counts = wpp.call_counts();
        assert_eq!(counts[&f(0)], 1);
        assert_eq!(counts[&f(1)], 2);
    }

    #[test]
    fn io_round_trip() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        let back = RawWpp::read_from(&buf[..]).unwrap();
        assert_eq!(back, wpp);
    }

    #[test]
    fn read_rejects_bad_magic_and_truncation() {
        assert!(matches!(
            RawWpp::read_from(&b"NOPE"[..]),
            Err(RawWppError::BadMagic)
        ));
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.pop();
        assert!(matches!(
            RawWpp::read_from(&buf[..]),
            Err(RawWppError::TruncatedWord)
        ));
    }

    #[test]
    fn footer_detects_interrupted_writes() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        // Cut the CRC word: the footer magic is found but unverifiable.
        let cut_crc = &buf[..buf.len() - 4];
        assert!(matches!(
            RawWpp::read_from(cut_crc),
            Err(RawWppError::TruncatedFooter)
        ));
        // Cut the count and CRC words: same.
        let cut_count = &buf[..buf.len() - 8];
        assert!(matches!(
            RawWpp::read_from(cut_count),
            Err(RawWppError::TruncatedFooter)
        ));
        // Flip an event byte: the CRC no longer matches.
        let mut flipped = buf.clone();
        flipped[6] ^= 0x01;
        assert!(matches!(
            RawWpp::read_from(&flipped[..]),
            Err(RawWppError::FooterMismatch { .. })
        ));
    }

    #[test]
    fn legacy_footerless_streams_still_load() {
        let wpp = sample();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        for w in wpp.words() {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(RawWpp::read_from(&buf[..]).unwrap(), wpp);
    }

    #[test]
    fn salvage_keeps_longest_decodable_prefix() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        // Intact stream salvages cleanly.
        let s = RawWpp::read_salvage(&buf[..]).unwrap();
        assert!(s.is_clean(), "{s:?}");
        assert_eq!(s.wpp, wpp);
        // Cut mid-word inside the events: partial word dropped, footer
        // gone, the whole-event prefix survives.
        let cut = &buf[..4 + 5 * 4 + 2];
        let s = RawWpp::read_salvage(cut).unwrap();
        assert!(!s.is_clean());
        assert_eq!(s.bytes_dropped, 2);
        assert_eq!(s.wpp.words(), &wpp.words()[..5]);
        // An undecodable word in the middle truncates to before it.
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        for w in &wpp.words()[..3] {
            bad.extend_from_slice(&w.to_le_bytes());
        }
        bad.extend_from_slice(&(3u32 << 30).to_le_bytes());
        for w in &wpp.words()[3..] {
            bad.extend_from_slice(&w.to_le_bytes());
        }
        let s = RawWpp::read_salvage(&bad[..]).unwrap();
        assert_eq!(s.wpp.words(), &wpp.words()[..3]);
        assert!(s.words_dropped > 0);
        // Garbage without the magic is rejected outright.
        assert!(matches!(
            RawWpp::read_salvage(&b"JUNKJUNK"[..]),
            Err(RawWppError::BadMagic)
        ));
    }

    #[test]
    fn from_words_validates() {
        assert!(RawWpp::from_words(vec![3 << 30]).is_err());
        assert!(RawWpp::from_words(vec![WppEvent::Exit.encode()]).is_ok());
    }

    #[test]
    fn display_matches_paper_style() {
        let wpp = RawWpp::from_events(&[
            WppEvent::Block(b(1)),
            WppEvent::Block(b(2)),
            WppEvent::Exit,
        ]);
        assert_eq!(wpp.to_string(), "1.2.exit");
    }

    /// Classifies a byte stream through WppStream at the given chunk
    /// size, mirroring the Result shape of `RawWpp::read_from`.
    fn stream_parse(bytes: &[u8], chunk: usize) -> Result<(Vec<WppEvent>, bool), RawWppError> {
        let mut parser = WppStream::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            parser.push(piece, &mut out)?;
        }
        let verified = parser.finish(&mut out)?;
        Ok((out, verified))
    }

    #[test]
    fn wpp_stream_matches_read_from_on_clean_streams() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        for chunk in [1, 2, 3, 5, 7, buf.len()] {
            let (events, verified) = stream_parse(&buf, chunk).unwrap();
            assert!(verified);
            assert_eq!(events, wpp.events(), "chunk size {chunk}");
        }
        // Legacy footer-less stream: same events, unverified.
        let legacy = &buf[..buf.len() - FOOTER_WORDS * 4];
        for chunk in [1, 4, legacy.len()] {
            let (events, verified) = stream_parse(legacy, chunk).unwrap();
            assert!(!verified);
            assert_eq!(events, wpp.events());
        }
        // Empty trace with footer.
        let mut empty = Vec::new();
        RawWpp::new().write_to(&mut empty).unwrap();
        let (events, verified) = stream_parse(&empty, 1).unwrap();
        assert!(verified);
        assert!(events.is_empty());
    }

    #[test]
    fn wpp_stream_classifies_damage_like_read_from() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();

        // Every truncation point classifies identically to read_from.
        for cut in 0..buf.len() {
            let prefix = &buf[..cut];
            let batch = RawWpp::read_from(prefix);
            let streamed = stream_parse(prefix, 3);
            match (&batch, &streamed) {
                (Ok(w), Ok((events, _))) => assert_eq!(&w.events(), events, "cut {cut}"),
                (Err(a), Err(b)) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "cut {cut}: batch {a:?} vs streamed {b:?}"
                ),
                _ => panic!("cut {cut}: batch {batch:?} vs streamed {streamed:?}"),
            }
        }

        // Flipped event byte → FooterMismatch from both.
        let mut flipped = buf.clone();
        flipped[6] ^= 0x01;
        assert!(matches!(
            stream_parse(&flipped, 2),
            Err(RawWppError::FooterMismatch { .. })
        ));

        // Bad magic and an undecodable interior word.
        assert!(matches!(
            stream_parse(b"JUNKJUNKJUNK", 5),
            Err(RawWppError::BadMagic)
        ));
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.extend_from_slice(&(3u32 << 30).to_le_bytes());
        for w in sample().words() {
            bad.extend_from_slice(&w.to_le_bytes());
        }
        assert!(matches!(
            stream_parse(&bad, 4),
            Err(RawWppError::BadWord(_))
        ));
    }

    #[test]
    fn wpp_stream_holds_back_footer_lookalike_events() {
        // FOOTER_WORD decodes as a valid Enter event; a stream whose
        // *events* include it must still round-trip.
        let lookalike = WppEvent::decode(FOOTER_WORD).expect("footer word is a decodable event");
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            lookalike,
            WppEvent::Block(b(1)),
            lookalike,
            WppEvent::Exit,
        ]);
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        for chunk in [1, 4, 9] {
            let (events, verified) = stream_parse(&buf, chunk).unwrap();
            assert!(verified);
            assert_eq!(events, wpp.events());
        }
    }

    #[test]
    fn scan_handles_unbalanced_stream() {
        // Enter without matching exit (truncated run).
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(4)),
        ]);
        assert_eq!(wpp.scan_function(f(1)), vec![vec![b(4)]]);
        assert_eq!(wpp.scan_function(f(0)), vec![vec![b(1)]]);
    }
}
