//! The raw (uncompacted) WPP representation: a flat stream of 4-byte event
//! words, exactly the form whose sizes Table 1 of the paper reports.
//!
//! The raw form also provides the *uncompacted access* baseline of Table 4:
//! [`RawWpp::scan_function`] must scan the entire stream to collect the path
//! traces of a single function.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use twpp_ir::{BlockId, FuncId};

use crate::event::WppEvent;

const MAGIC: [u8; 4] = *b"WPP0";

/// A raw whole program path: the complete control-flow trace of one
/// execution, stored as encoded 4-byte words.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RawWpp {
    words: Vec<u32>,
}

/// Byte-size breakdown of a raw WPP, mirroring Table 1's split of a WPP into
/// the dynamic call graph (enter/exit events) and the per-call traces (block
/// events).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RawSizes {
    /// Bytes attributable to the dynamic call structure (enter/exit words).
    pub dcg_bytes: usize,
    /// Bytes attributable to the path traces (block words).
    pub trace_bytes: usize,
}

impl RawSizes {
    /// Total size in bytes.
    pub fn total(&self) -> usize {
        self.dcg_bytes + self.trace_bytes
    }
}

/// Errors produced while decoding a serialized raw WPP.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RawWppError {
    /// The stream does not start with the `WPP0` magic.
    BadMagic,
    /// The stream length is not a whole number of words.
    Truncated,
    /// A word failed to decode as an event.
    BadWord(u32),
}

impl fmt::Display for RawWppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawWppError::BadMagic => f.write_str("missing WPP0 magic header"),
            RawWppError::Truncated => f.write_str("truncated WPP stream"),
            RawWppError::BadWord(w) => write!(f, "undecodable WPP word {w:#010x}"),
        }
    }
}

impl Error for RawWppError {}

impl RawWpp {
    /// Creates an empty WPP.
    pub fn new() -> RawWpp {
        RawWpp::default()
    }

    /// Builds a raw WPP from decoded events.
    pub fn from_events(events: &[WppEvent]) -> RawWpp {
        RawWpp {
            words: events.iter().map(|e| e.encode()).collect(),
        }
    }

    /// Builds a raw WPP directly from encoded words.
    ///
    /// # Errors
    ///
    /// Returns [`RawWppError::BadWord`] if any word does not decode.
    pub fn from_words(words: Vec<u32>) -> Result<RawWpp, RawWppError> {
        if let Some(&bad) = words.iter().find(|w| WppEvent::decode(**w).is_none()) {
            return Err(RawWppError::BadWord(bad));
        }
        Ok(RawWpp { words })
    }

    /// The encoded words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of events.
    pub fn event_count(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes of the uncompacted representation (4 bytes per event).
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Decodes all events.
    pub fn events(&self) -> Vec<WppEvent> {
        self.words
            .iter()
            .map(|w| WppEvent::decode(*w).expect("RawWpp contains only valid words"))
            .collect()
    }

    /// Iterates over decoded events without allocating.
    pub fn iter(&self) -> impl Iterator<Item = WppEvent> + '_ {
        self.words
            .iter()
            .map(|w| WppEvent::decode(*w).expect("RawWpp contains only valid words"))
    }

    /// Splits the byte size into call-structure and trace components
    /// (Table 1).
    pub fn size_breakdown(&self) -> RawSizes {
        let mut sizes = RawSizes::default();
        for e in self.iter() {
            if e.is_block() {
                sizes.trace_bytes += 4;
            } else {
                sizes.dcg_bytes += 4;
            }
        }
        sizes
    }

    /// Number of calls (enter events) per function.
    pub fn call_counts(&self) -> HashMap<FuncId, u64> {
        let mut counts = HashMap::new();
        for e in self.iter() {
            if let WppEvent::Enter(f) = e {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Collects the path traces of every call to `func` by scanning the
    /// **entire** stream — the uncompacted-access baseline of Table 4.
    ///
    /// A path trace contains the block events at the activation's own
    /// nesting level; blocks executed by callees belong to the callees'
    /// traces.
    pub fn scan_function(&self, func: FuncId) -> Vec<Vec<BlockId>> {
        let mut result = Vec::new();
        // Stack of activations; each entry is Some(trace) when the
        // activation belongs to `func`, None otherwise.
        let mut stack: Vec<Option<Vec<BlockId>>> = Vec::new();
        for e in self.iter() {
            match e {
                WppEvent::Enter(f) => {
                    stack.push(if f == func { Some(Vec::new()) } else { None });
                }
                WppEvent::Block(b) => {
                    if let Some(Some(trace)) = stack.last_mut() {
                        trace.push(b);
                    }
                }
                WppEvent::Exit => {
                    if let Some(Some(trace)) = stack.pop() {
                        result.push(trace);
                    }
                }
            }
        }
        // Unbalanced streams (e.g. truncated executions) still yield the
        // completed activations; drain any open ones of `func` too.
        while let Some(top) = stack.pop() {
            if let Some(trace) = top {
                result.push(trace);
            }
        }
        result
    }

    /// Serializes the trace with a `WPP0` magic header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`. A `&mut` reference can be passed
    /// as the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&MAGIC)?;
        for w in &self.words {
            writer.write_all(&w.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a trace previously written with [`RawWpp::write_to`].
    ///
    /// # Errors
    ///
    /// Returns a decoding error wrapped in `io::Error` for malformed input,
    /// or propagates I/O errors from `reader`. A `&mut` reference can be
    /// passed as the reader.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<RawWpp> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, RawWppError::BadMagic));
        }
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        if bytes.len() % 4 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                RawWppError::Truncated,
            ));
        }
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        RawWpp::from_words(words).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl FromIterator<WppEvent> for RawWpp {
    fn from_iter<I: IntoIterator<Item = WppEvent>>(iter: I) -> RawWpp {
        RawWpp {
            words: iter.into_iter().map(|e| e.encode()).collect(),
        }
    }
}

impl Extend<WppEvent> for RawWpp {
    fn extend<I: IntoIterator<Item = WppEvent>>(&mut self, iter: I) {
        self.words.extend(iter.into_iter().map(|e| e.encode()));
    }
}

impl fmt::Display for RawWpp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for e in self.iter() {
            if !first {
                f.write_str(".")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    fn sample() -> RawWpp {
        // main: 1 . f(1.2) . 2 . f(1.3) . 3
        RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(1)),
            WppEvent::Block(b(2)),
            WppEvent::Exit,
            WppEvent::Block(b(2)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(1)),
            WppEvent::Block(b(3)),
            WppEvent::Exit,
            WppEvent::Block(b(3)),
            WppEvent::Exit,
        ])
    }

    #[test]
    fn scan_function_collects_per_call_traces() {
        let wpp = sample();
        assert_eq!(
            wpp.scan_function(f(1)),
            vec![vec![b(1), b(2)], vec![b(1), b(3)]]
        );
        assert_eq!(wpp.scan_function(f(0)), vec![vec![b(1), b(2), b(3)]]);
        assert!(wpp.scan_function(f(9)).is_empty());
    }

    #[test]
    fn size_breakdown_splits_dcg_and_traces() {
        let wpp = sample();
        let sizes = wpp.size_breakdown();
        assert_eq!(sizes.dcg_bytes, 6 * 4); // 3 enters + 3 exits
        assert_eq!(sizes.trace_bytes, 7 * 4);
        assert_eq!(sizes.total(), wpp.byte_len());
    }

    #[test]
    fn call_counts() {
        let wpp = sample();
        let counts = wpp.call_counts();
        assert_eq!(counts[&f(0)], 1);
        assert_eq!(counts[&f(1)], 2);
    }

    #[test]
    fn io_round_trip() {
        let wpp = sample();
        let mut buf = Vec::new();
        wpp.write_to(&mut buf).unwrap();
        let back = RawWpp::read_from(&buf[..]).unwrap();
        assert_eq!(back, wpp);
    }

    #[test]
    fn read_rejects_bad_magic_and_truncation() {
        assert!(RawWpp::read_from(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        sample().write_to(&mut buf).unwrap();
        buf.pop();
        assert!(RawWpp::read_from(&buf[..]).is_err());
    }

    #[test]
    fn from_words_validates() {
        assert!(RawWpp::from_words(vec![3 << 30]).is_err());
        assert!(RawWpp::from_words(vec![WppEvent::Exit.encode()]).is_ok());
    }

    #[test]
    fn display_matches_paper_style() {
        let wpp = RawWpp::from_events(&[
            WppEvent::Block(b(1)),
            WppEvent::Block(b(2)),
            WppEvent::Exit,
        ]);
        assert_eq!(wpp.to_string(), "1.2.exit");
    }

    #[test]
    fn scan_handles_unbalanced_stream() {
        // Enter without matching exit (truncated run).
        let wpp = RawWpp::from_events(&[
            WppEvent::Enter(f(0)),
            WppEvent::Block(b(1)),
            WppEvent::Enter(f(1)),
            WppEvent::Block(b(4)),
        ]);
        assert_eq!(wpp.scan_function(f(1)), vec![vec![b(4)]]);
        assert_eq!(wpp.scan_function(f(0)), vec![vec![b(1)]]);
    }
}
