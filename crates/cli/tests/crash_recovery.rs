//! The kill-point harness: `twpp ingest` is aborted at **every**
//! durability point in turn (`TWPP_INJECT_KILL_AT=n`), resumed by simply
//! rerunning the same command, and the recovered `merged.twpa` must be
//! byte-identical to an uninterrupted run's. This is the executable form
//! of the crash-safety contract in DESIGN.md §15: a durability point is
//! exactly a moment the process may die with its latest write already on
//! disk, and recovery must continue — not restart — from there.
//!
//! The sweep spawns two real processes per kill point (one that aborts,
//! one that recovers), so the fixture stream is kept small enough that
//! the whole matrix stays in the hundreds of milliseconds.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_twpp")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twpp-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs `twpp` with `args`, optionally with a kill point injected.
fn twpp(args: &[&str], kill_at: Option<u64>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    // The sweep must control the fault plan exactly: clear any injection
    // the outer environment (e.g. the CI matrix) set for *this* process.
    cmd.env_remove("TWPP_INJECT_KILL_AT");
    if let Some(n) = kill_at {
        cmd.env("TWPP_INJECT_KILL_AT", n.to_string());
    }
    cmd.output().expect("spawn twpp")
}

fn ok_stdout(output: Output, what: &str) -> String {
    assert!(
        output.status.success(),
        "{what} failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

/// Writes the fixture program and traces it; returns the `.wpp` path.
fn fixture_wpp(dir: &Path) -> PathBuf {
    let src = dir.join("prog.twl");
    // Nested calls, loops and a branch: enough structure that the stream
    // seals into several segments at --seal-bytes 256 and the open
    // activation stack is non-trivial at most window boundaries.
    std::fs::write(
        &src,
        "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
         fn g(x) { f(x); f(x + 1); }
         fn main() { let i = 0; while (i < 24) { g(i); i = i + 1; } }",
    )
    .expect("write fixture program");
    let wpp = dir.join("prog.wpp");
    ok_stdout(
        twpp(&["trace", src.to_str().unwrap(), "-o", wpp.to_str().unwrap()], None),
        "trace",
    );
    wpp
}

fn ingest_args<'a>(dir: &'a str, wpp: &'a str) -> Vec<&'a str> {
    // Durability::None keeps the sweep fast; the durability *points* are
    // identical across modes (same writes, different flush strength), so
    // the recovery claim carries over to --durability sync.
    vec![
        "ingest", dir, "--from", wpp, "--seal-bytes", "256", "--chunk-events", "13",
        "--durability", "none",
    ]
}

/// Parses the `durability points: N` line `twpp ingest` prints.
fn durability_points(stdout: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("durability points: "))
        .expect("ingest must report its durability points")
        .trim()
        .parse()
        .expect("point count")
}

#[test]
fn every_kill_point_recovers_to_identical_bytes() {
    let root = temp_dir("sweep");
    let wpp = fixture_wpp(&root);
    let wpp = wpp.to_str().unwrap();

    // Uninterrupted baseline: the reference bytes and the sweep bound.
    let base_dir = root.join("baseline");
    let stdout = ok_stdout(twpp(&ingest_args(base_dir.to_str().unwrap(), wpp), None), "baseline");
    let points = durability_points(&stdout);
    let baseline = std::fs::read(base_dir.join("merged.twpa")).expect("baseline merged.twpa");
    assert!(
        points >= 10,
        "fixture too small to exercise the state machine ({points} durability points)"
    );

    for kill in 1..=points {
        let dir = root.join(format!("kill-{kill}"));
        let dir = dir.to_str().unwrap();
        let killed = twpp(&ingest_args(dir, wpp), Some(kill));
        assert!(
            !killed.status.success(),
            "kill point {kill} of {points} did not abort the process"
        );
        let recovered = ok_stdout(twpp(&ingest_args(dir, wpp), None), "recovery");
        assert!(
            kill == 1 || recovered.contains("resumed"),
            "kill point {kill}: recovery should resume, not restart:\n{recovered}"
        );
        let merged = std::fs::read(Path::new(dir).join("merged.twpa"))
            .unwrap_or_else(|e| panic!("kill point {kill}: no merged.twpa after recovery: {e}"));
        assert_eq!(
            merged, baseline,
            "kill point {kill} of {points}: recovered archive differs from baseline"
        );
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn double_crash_still_recovers() {
    // Crashing *during recovery* must also be recoverable: kill the
    // first run mid-stream, kill the resumed run at its first durable
    // write, then finish cleanly.
    let root = temp_dir("double");
    let wpp = fixture_wpp(&root);
    let wpp = wpp.to_str().unwrap();

    let base_dir = root.join("baseline");
    ok_stdout(twpp(&ingest_args(base_dir.to_str().unwrap(), wpp), None), "baseline");
    let baseline = std::fs::read(base_dir.join("merged.twpa")).expect("baseline");

    for kill in [3u64, 9, 17] {
        let dir = root.join(format!("double-{kill}"));
        let dir = dir.to_str().unwrap();
        assert!(!twpp(&ingest_args(dir, wpp), Some(kill)).status.success());
        assert!(!twpp(&ingest_args(dir, wpp), Some(2)).status.success());
        ok_stdout(twpp(&ingest_args(dir, wpp), None), "second recovery");
        let merged = std::fs::read(Path::new(dir).join("merged.twpa")).expect("merged");
        assert_eq!(merged, baseline, "double crash at {kill} then 2 diverged");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn torn_wal_tail_is_survivable_end_to_end() {
    // A crash can also tear the final WAL record mid-write (no kill
    // point lands there because the append never completed). `fsck`
    // must call the directory degraded-but-resumable, and rerunning
    // ingest must converge to the baseline bytes anyway.
    let root = temp_dir("torn");
    let wpp_path = fixture_wpp(&root);
    let wpp = wpp_path.to_str().unwrap();

    let base_dir = root.join("baseline");
    ok_stdout(twpp(&ingest_args(base_dir.to_str().unwrap(), wpp), None), "baseline");
    let baseline = std::fs::read(base_dir.join("merged.twpa")).expect("baseline");

    let dir = root.join("torn");
    // Die mid-stream with a non-empty WAL tail, then shear its last
    // bytes off as an interrupted write would.
    assert!(!twpp(&ingest_args(dir.to_str().unwrap(), wpp), Some(8)).status.success());
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).expect("wal");
    assert!(bytes.len() > 11, "kill point 8 should leave WAL records");
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).expect("tear");

    let fsck = twpp(&["fsck", dir.to_str().unwrap()], None);
    assert_eq!(
        fsck.status.code(),
        Some(3),
        "torn tail should be degraded-but-resumable: {}",
        String::from_utf8_lossy(&fsck.stdout)
    );
    let report = String::from_utf8_lossy(&fsck.stdout).to_string();
    assert!(report.contains("torn tail"), "{report}");

    let recovered = ok_stdout(twpp(&ingest_args(dir.to_str().unwrap(), wpp), None), "recovery");
    assert!(recovered.contains("torn WAL tail dropped"), "{recovered}");
    let merged = std::fs::read(dir.join("merged.twpa")).expect("merged");
    assert_eq!(merged, baseline);

    std::fs::remove_dir_all(&root).ok();
}
