//! End-to-end drills for `twpp serve`, the multi-tenant query server
//! over an archive fleet:
//!
//! * remote answers are **byte-identical** to one-shot local CLI answers
//!   for every request kind (query/slice/currency) across a seeded
//!   ten-archive fleet, with the caches cold and hot;
//! * concurrent clients hammering the daemon — with the answer cache on
//!   and off (`--no-cache`) — all receive the expected bytes;
//! * a budget-exhausted request yields a *sound* partial: exit 3, the
//!   partial text (minus its truncation line) is a prefix of the
//!   complete text, and the rendered count is monotone in the budget;
//! * the rescan loop picks up archives added and removed mid-flight
//!   without disturbing requests against untouched tenants;
//! * a connection feeding garbage is quarantined without affecting a
//!   well-behaved client on the same daemon;
//! * SIGKILL leaves the fleet readable, and a restarted daemon answers
//!   over the same root.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_twpp")
}

/// Fault-plan variables cleared from every spawned process so a dirty
/// environment can't skew the drills.
const INJECT_VARS: &[&str] = &[
    "TWPP_INJECT_KILL_AT",
    "TWPP_INJECT_IO_FAULTS",
    "TWPP_INJECT_NET_FAULT",
    "TWPP_INJECT_READ_FAULT_AT",
    "TWPP_INJECT_PANIC",
    "TWPP_INJECT_DELAY_MS",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twpp-serve-fleet-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn twpp(args: &[&str]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for var in INJECT_VARS {
        cmd.env_remove(var);
    }
    cmd.output().expect("spawn twpp")
}

fn ok_stdout(output: Output, what: &str) -> String {
    assert!(
        output.status.success(),
        "{what} failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

/// Seeds `dir` with a generated fleet and returns the name-sorted
/// archive stems (the tenant names the server exposes).
fn gen_fleet(dir: &Path, archives: usize) -> Vec<String> {
    ok_stdout(
        twpp(&[
            "gen-fleet",
            dir.to_str().unwrap(),
            "--archives",
            &archives.to_string(),
            "--seed",
            "42",
            "--scale",
            "0.01",
        ]),
        "gen-fleet",
    );
    fleet_stems(dir)
}

fn fleet_stems(dir: &Path) -> Vec<String> {
    let mut stems: Vec<String> = std::fs::read_dir(dir)
        .expect("read fleet dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "twpa"))
                .then(|| p.file_stem().unwrap().to_str().unwrap().to_owned())
        })
        .collect();
    stems.sort();
    stems
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `twpp serve` on an ephemeral port and waits for its port
/// file. `--drain-after-ms` is a stray-process safety net far beyond
/// any drill's runtime.
fn spawn_serve(dir: &Path, port_file: &Path, extra: &[&str]) -> Daemon {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve",
        dir.to_str().unwrap(),
        "--listen",
        "tcp:127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--drain-after-ms",
        "60000",
    ]);
    cmd.args(extra);
    for var in INJECT_VARS {
        cmd.env_remove(var);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn serve daemon");
    for _ in 0..1000 {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.is_empty() {
                return Daemon { child, addr };
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("daemon output");
            panic!(
                "serve daemon died before listening: {status}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    panic!("serve daemon never wrote its port file");
}

/// Picks a (func, trace-0 criterion, trace-0 def block) triple with a
/// non-empty dynamic CFG — the same derivation the conformance oracle
/// uses — so slice/currency requests are well-formed.
fn slice_target(path: &Path) -> Option<(u32, u32, u32)> {
    let la = twpp::lazy::LazyArchive::open(path).ok()?;
    for func in la.function_ids() {
        let Ok(record) = la.read_function(func) else {
            continue;
        };
        if record.traces.is_empty() {
            continue;
        }
        let (dict_idx, tt) = &record.traces[0];
        let dcfg = twpp_dataflow::dyncfg::DynCfg::new(tt, &record.dicts[*dict_idx as usize]);
        if dcfg.node_count() == 0 {
            continue;
        }
        let criterion = dcfg.node(dcfg.node_count() - 1).head.as_u32();
        let def = dcfg.node(0).head.as_u32();
        return Some((func.as_u32(), criterion, def));
    }
    None
}

/// The acceptance drill: for every archive in a ten-tenant fleet, the
/// remote answer for each request kind is byte-identical to the local
/// one-shot CLI answer — on a cold cache and again on a hot one.
#[test]
fn remote_answers_are_byte_identical_across_the_fleet() {
    let root = temp_dir("identity");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 10);
    assert_eq!(stems.len(), 10, "gen-fleet must seed ten archives");
    let daemon = spawn_serve(&fleet, &root.join("port"), &[]);
    let addr = daemon.addr.clone();

    for stem in &stems {
        let path = fleet.join(format!("{stem}.twpa"));
        let path = path.to_str().unwrap();

        let local = ok_stdout(twpp(&["query", path, "0"]), "local query");
        for pass in ["cold", "hot"] {
            let remote = ok_stdout(
                twpp(&["query", "--remote", &addr, stem, "0"]),
                "remote query",
            );
            assert_eq!(remote, local, "{stem} query ({pass} cache) diverges");
        }

        let Some((func, criterion, def)) = slice_target(Path::new(path)) else {
            panic!("{stem}: no sliceable function in a generated workload");
        };
        let func = func.to_string();
        let criterion = criterion.to_string();
        let def = def.to_string();

        let local = ok_stdout(
            twpp(&["slice", path, &func, "0", &criterion]),
            "local slice",
        );
        for pass in ["cold", "hot"] {
            let remote = ok_stdout(
                twpp(&["slice", "--remote", &addr, stem, &func, "0", &criterion]),
                "remote slice",
            );
            assert_eq!(remote, local, "{stem} slice ({pass} cache) diverges");
        }

        let local = ok_stdout(
            twpp(&["currency", path, &func, "0", &def, &criterion]),
            "local currency",
        );
        for pass in ["cold", "hot"] {
            let remote = ok_stdout(
                twpp(&["currency", "--remote", &addr, stem, &func, "0", &def, &criterion]),
                "remote currency",
            );
            assert_eq!(remote, local, "{stem} currency ({pass} cache) diverges");
        }
    }

    // The typed client agrees on the fleet roster.
    let mut client = twpp_server::Client::connect(&addr).expect("client connect");
    let listed: Vec<String> = client
        .list_archives()
        .expect("list archives")
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(listed, stems, "served roster diverges from the fleet dir");

    let _ = std::fs::remove_dir_all(&root);
}

/// N client threads × M requests hammer the daemon; every reply must be
/// the expected bytes. Run twice: answer cache on (default) and off.
#[test]
fn concurrent_clients_all_get_the_expected_bytes() {
    let root = temp_dir("hammer");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 5);

    for mode in [&[][..], &["--no-cache"][..]] {
        let daemon = spawn_serve(&fleet, &root.join("port"), mode);
        let addr = daemon.addr.clone();

        // Expected bytes per tenant, from one-shot local answers.
        let expected: Vec<(String, String)> = stems
            .iter()
            .map(|stem| {
                let path = fleet.join(format!("{stem}.twpa"));
                let local =
                    ok_stdout(twpp(&["query", path.to_str().unwrap(), "0"]), "local query");
                (stem.clone(), local)
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..4usize {
                let addr = &addr;
                let expected = &expected;
                scope.spawn(move || {
                    for r in 0..8usize {
                        let (stem, want) = &expected[(t + r) % expected.len()];
                        let got = ok_stdout(
                            twpp(&["query", "--remote", addr, stem, "0"]),
                            "hammer query",
                        );
                        assert_eq!(
                            &got, want,
                            "thread {t} request {r}: {stem} diverges (mode {mode:?})"
                        );
                    }
                });
            }
        });
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Budget-exhausted queries are sound partials: exit 3, the partial
/// text minus its truncation line is a prefix of the complete text, and
/// the rendered-trace count is monotone in the step budget.
#[test]
fn budget_partials_are_sound_prefixes() {
    let root = temp_dir("partial");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 5);
    let daemon = spawn_serve(&fleet, &root.join("port"), &[]);
    let addr = daemon.addr.clone();

    // Pick the (tenant, function) rendering the most unique traces, so
    // small step budgets are guaranteed to truncate.
    let (stem, func, traces) = stems
        .iter()
        .flat_map(|stem| {
            let la = twpp::lazy::LazyArchive::open(&fleet.join(format!("{stem}.twpa")))
                .expect("open archive");
            la.function_ids()
                .into_iter()
                .filter_map(|f| {
                    let record = la.read_function(f).ok()?;
                    Some((stem.clone(), f.as_u32().to_string(), record.traces.len()))
                })
                .collect::<Vec<_>>()
        })
        .max_by_key(|(_, _, traces)| *traces)
        .expect("non-empty fleet");
    assert!(
        traces >= 2,
        "seeded fleet has no multi-trace function; the drill cannot bite"
    );
    let full = ok_stdout(
        twpp(&["query", "--remote", &addr, &stem, &func]),
        "full remote query",
    );

    let mut last_rendered = 0u64;
    let mut saw_partial = false;
    for k in ["1", "2", "4", "8"] {
        let output = twpp(&["query", "--remote", &addr, &stem, &func, "--max-events", k]);
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        if output.status.success() {
            // Budget large enough for this tenant: complete answer,
            // byte-identical to the unbudgeted one.
            let got = String::from_utf8(output.stdout).expect("utf-8");
            assert_eq!(got, full, "complete budgeted answer diverges");
            continue;
        }
        saw_partial = true;
        assert_eq!(
            output.status.code(),
            Some(3),
            "partial answers must exit 3 (degraded): {stderr}"
        );
        let rendered: u64 = stderr
            .lines()
            .find_map(|l| l.split("truncated after ").nth(1))
            .and_then(|rest| rest.split(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no truncation message in: {stderr}"));
        assert!(
            rendered >= last_rendered,
            "rendered traces regressed: {rendered} < {last_rendered} at budget {k}"
        );
        last_rendered = rendered;

        // Prefix soundness: everything before the truncation line must
        // be literally what the complete answer starts with.
        let partial = String::from_utf8(output.stdout).expect("utf-8");
        let body = partial.trim_end_matches('\n');
        let prefix = match body.rfind('\n') {
            Some(cut) => &body[..=cut],
            None => "",
        };
        assert!(
            full.starts_with(prefix),
            "partial at budget {k} is not a prefix of the complete answer:\n\
             partial prefix:\n{prefix}\nfull:\n{full}"
        );
    }
    assert!(
        saw_partial,
        "no step budget in 1..=8 truncated {stem}; the drill never bit"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// Polls `probe` until it returns true or the deadline passes.
fn eventually(what: &str, mut probe: impl FnMut() -> bool) {
    for _ in 0..200 {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("{what}: condition not reached within 10s");
}

/// The rescan loop registers added archives and retires removed ones
/// mid-flight, leaving untouched tenants byte-stable throughout.
#[test]
fn rescan_tracks_added_and_removed_archives() {
    let root = temp_dir("rescan");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 2);
    let daemon = spawn_serve(&fleet, &root.join("port"), &["--rescan-ms", "100"]);
    let addr = daemon.addr.clone();

    let keep = &stems[0];
    let victim = &stems[1];
    let baseline = ok_stdout(
        twpp(&["query", "--remote", &addr, keep, "0"]),
        "baseline query",
    );

    // Add: copy an existing archive under a fresh tenant name; the next
    // rescan must make it queryable.
    let newcomer = "newcomer";
    std::fs::copy(
        fleet.join(format!("{keep}.twpa")),
        fleet.join(format!("{newcomer}.twpa")),
    )
    .expect("copy archive");
    eventually("added archive becomes queryable", || {
        twpp(&["query", "--remote", &addr, newcomer, "0"])
            .status
            .success()
    });
    let adopted = ok_stdout(
        twpp(&["query", "--remote", &addr, newcomer, "0"]),
        "adopted query",
    );
    assert_eq!(adopted, baseline, "copied tenant must answer identically");

    // Remove: delete a tenant's file; the next rescan must refuse it by
    // name with the fleet-membership error (exit 4, not a hang).
    std::fs::remove_file(fleet.join(format!("{victim}.twpa"))).expect("remove archive");
    eventually("removed archive is refused", || {
        let out = twpp(&["query", "--remote", &addr, victim, "0"]);
        out.status.code() == Some(4)
            && String::from_utf8_lossy(&out.stderr).contains("is not in the served fleet")
    });

    // The untouched tenant never wavered.
    let after = ok_stdout(
        twpp(&["query", "--remote", &addr, keep, "0"]),
        "post-churn query",
    );
    assert_eq!(after, baseline, "untouched tenant diverged across rescans");

    let _ = std::fs::remove_dir_all(&root);
}

/// A connection feeding garbage bytes is quarantined; a well-behaved
/// client on the same daemon still gets the expected answer.
#[test]
fn garbage_connections_are_quarantined_without_collateral() {
    let root = temp_dir("garbage");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 2);
    let mut daemon = spawn_serve(&fleet, &root.join("port"), &[]);
    let addr = daemon.addr.clone();
    let stem = &stems[0];

    let expected = ok_stdout(
        twpp(&["query", "--remote", &addr, stem, "0"]),
        "pre-garbage query",
    );

    let host_port = addr.strip_prefix("tcp:").expect("tcp spec");
    for garbage in [
        &b"\xff\xff\xff\xff\xff\xff\xff\xff"[..], // nonsense magic
        &b"GET / HTTP/1.1\r\n\r\n"[..],           // wrong protocol entirely
        &b"\x00\x00\x00\x04"[..],                 // length prefix, then hang up
    ] {
        use std::io::Write as _;
        let mut sock = std::net::TcpStream::connect(host_port).expect("connect");
        let _ = sock.write_all(garbage);
        let _ = sock.flush();
        drop(sock);
    }
    // Quarantining is asynchronous; give the daemon a beat, then prove
    // it is both alive and still correct.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        daemon.child.try_wait().expect("try_wait").is_none(),
        "daemon died on garbage input"
    );
    for _ in 0..3 {
        let got = ok_stdout(
            twpp(&["query", "--remote", &addr, stem, "0"]),
            "post-garbage query",
        );
        assert_eq!(got, expected, "good client disturbed by garbage peer");
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// SIGKILL mid-serve corrupts nothing (the server never writes to the
/// fleet), and a restarted daemon over the same root answers again —
/// byte-identical to local reads.
#[test]
fn kill_and_restart_leaves_the_fleet_readable() {
    let root = temp_dir("kill");
    let fleet = root.join("fleet");
    let stems = gen_fleet(&fleet, 3);
    let stem = &stems[0];
    let path = fleet.join(format!("{stem}.twpa"));
    let path = path.to_str().unwrap();

    let mut daemon = spawn_serve(&fleet, &root.join("port"), &[]);
    let warm = ok_stdout(
        twpp(&["query", "--remote", &daemon.addr, stem, "0"]),
        "pre-kill query",
    );
    daemon.child.kill().expect("SIGKILL daemon");
    let _ = daemon.child.wait();
    drop(daemon);

    // The fleet is untouched: local reads still work and still agree.
    let local = ok_stdout(twpp(&["query", path, "0"]), "post-kill local query");
    assert_eq!(local, warm, "fleet bytes changed across a SIGKILL");

    let daemon = spawn_serve(&fleet, &root.join("port2"), &[]);
    let revived = ok_stdout(
        twpp(&["query", "--remote", &daemon.addr, stem, "0"]),
        "post-restart query",
    );
    assert_eq!(revived, local, "restarted daemon diverges from the fleet");

    let _ = std::fs::remove_dir_all(&root);
}
