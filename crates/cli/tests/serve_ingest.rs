//! End-to-end fault drills for `twpp serve-ingest`, the streaming
//! ingestion daemon — the daemon-shaped extension of the kill-point
//! harness in `crash_recovery.rs`:
//!
//! * the kill sweep: a daemon aborted at **every** durability point in
//!   turn (`TWPP_INJECT_KILL_AT=n`), restarted, re-fed by a client that
//!   resumes from the HELLO position, must drain to a `merged.twpa`
//!   byte-identical to both an uninterrupted daemon run and a batch
//!   `twpp ingest` of the same stream;
//! * graceful drain on SIGTERM is byte-identical too;
//! * a flaky daemon shedding every k-th frame with BUSY
//!   (`TWPP_INJECT_NET_FAULT=k`) loses no acknowledged events under a
//!   retrying client;
//! * `twpp ingest --from -` distinguishes a mid-stream read error
//!   (`TWPP_INJECT_READ_FAULT_AT`) from clean EOF: exit 4, durable
//!   prefix sealed, directory resumable.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_twpp")
}

/// Fault-plan variables the sweep must fully control: cleared from every
/// spawned process unless a test sets them explicitly.
const INJECT_VARS: &[&str] = &[
    "TWPP_INJECT_KILL_AT",
    "TWPP_INJECT_IO_FAULTS",
    "TWPP_INJECT_NET_FAULT",
    "TWPP_INJECT_READ_FAULT_AT",
    "TWPP_INJECT_PANIC",
    "TWPP_INJECT_DELAY_MS",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twpp-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn twpp(args: &[&str], envs: &[(&str, String)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for var in INJECT_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn twpp")
}

fn ok_stdout(output: Output, what: &str) -> String {
    assert!(
        output.status.success(),
        "{what} failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 output")
}

/// Writes the fixture program and traces it; returns the `.wpp` path.
fn fixture_wpp(dir: &Path) -> PathBuf {
    let src = dir.join("prog.twl");
    std::fs::write(
        &src,
        "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
         fn g(x) { f(x); f(x + 1); }
         fn main() { let i = 0; while (i < 24) { g(i); i = i + 1; } }",
    )
    .expect("write fixture program");
    let wpp = dir.join("prog.wpp");
    ok_stdout(
        twpp(&["trace", src.to_str().unwrap(), "-o", wpp.to_str().unwrap()], &[]),
        "trace",
    );
    wpp
}

struct Daemon {
    child: Child,
    addr: String,
}

/// Spawns a daemon on an ephemeral port and waits for its port file.
/// `--drain-after-ms` is a stray-process safety net, far beyond any
/// test's runtime.
fn spawn_daemon(dir: &Path, port_file: &Path, envs: &[(&str, String)]) -> Daemon {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve-ingest",
        dir.to_str().unwrap(),
        "--listen",
        "tcp:127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--seal-bytes",
        "256",
        "--durability",
        "none",
        "--drain-after-ms",
        "60000",
    ]);
    for var in INJECT_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn daemon");
    for _ in 0..1000 {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            if !addr.is_empty() {
                return Daemon { child, addr };
            }
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("daemon output");
            panic!(
                "daemon died before listening: {status}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    panic!("daemon never wrote its port file");
}

/// Waits (bounded) for a daemon to exit and collects its output.
fn wait_daemon(mut daemon: Daemon, what: &str) -> Output {
    for _ in 0..600 {
        if daemon.child.try_wait().expect("try_wait").is_some() {
            return daemon.child.wait_with_output().expect("daemon output");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = daemon.child.kill();
    panic!("{what}: daemon did not exit in time");
}

fn net_feed(addr: &str, source: &str, wpp: &str, drain: bool) -> Output {
    let mut args = vec![
        "net-feed",
        addr,
        "--source",
        source,
        "--from",
        wpp,
        "--chunk-events",
        "13",
        "--retry-attempts",
        "16",
        "--retry-base-ms",
        "1",
        "--retry-cap-ms",
        "5",
    ];
    if drain {
        args.push("--drain");
    }
    twpp(&args, &[])
}

/// Parses the `durability points: N` line the daemon prints on drain.
fn durability_points(stdout: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("durability points: "))
        .expect("daemon must report its durability points")
        .trim()
        .parse()
        .expect("point count")
}

/// The batch-compacted reference: `twpp ingest` over the same stream
/// with the same seal threshold.
fn batch_baseline(root: &Path, wpp: &str) -> Vec<u8> {
    let dir = root.join("batch-baseline");
    ok_stdout(
        twpp(
            &[
                "ingest",
                dir.to_str().unwrap(),
                "--from",
                wpp,
                "--seal-bytes",
                "256",
                "--chunk-events",
                "13",
                "--durability",
                "none",
            ],
            &[],
        ),
        "batch baseline",
    );
    std::fs::read(dir.join("merged.twpa")).expect("batch baseline merged.twpa")
}

/// Spawns a daemon with the admin telemetry plane armed (`--admin` +
/// `--log-out`); waits for both port files and returns the admin
/// address alongside the daemon.
fn spawn_admin_daemon(
    dir: &Path,
    port_file: &Path,
    admin_port_file: &Path,
    log_out: &Path,
    envs: &[(&str, String)],
) -> (Daemon, String) {
    let _ = std::fs::remove_file(port_file);
    let _ = std::fs::remove_file(admin_port_file);
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve-ingest",
        dir.to_str().unwrap(),
        "--listen",
        "tcp:127.0.0.1:0",
        "--port-file",
        port_file.to_str().unwrap(),
        "--admin",
        "tcp:127.0.0.1:0",
        "--admin-port-file",
        admin_port_file.to_str().unwrap(),
        "--log-out",
        log_out.to_str().unwrap(),
        "--seal-bytes",
        "256",
        "--durability",
        "none",
        "--drain-after-ms",
        "60000",
    ]);
    for var in INJECT_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn admin daemon");
    for _ in 0..1000 {
        let addr = std::fs::read_to_string(port_file).unwrap_or_default();
        let admin = std::fs::read_to_string(admin_port_file).unwrap_or_default();
        if !addr.is_empty() && !admin.is_empty() {
            return (Daemon { child, addr }, admin);
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let out = child.wait_with_output().expect("daemon output");
            panic!(
                "admin daemon died before listening: {status}\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill();
    panic!("admin daemon never wrote both port files");
}

/// The newest `flightrec-*.json` dump inside a serve directory.
fn find_flightrec(dir: &Path) -> Option<PathBuf> {
    let mut dumps: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec-") && n.ends_with(".json"))
        })
        .collect();
    dumps.sort();
    dumps.pop()
}

#[test]
fn injected_abort_dumps_flight_recorder_and_status_reflects_restart() {
    let root = temp_dir("flightrec");
    let wpp_path = fixture_wpp(&root);
    let wpp = wpp_path.to_str().unwrap();
    let baseline = batch_baseline(&root, wpp);

    // A daemon with telemetry armed, killed at a mid-run durability
    // point: the gov abort hook must leave a flight-recorder dump in
    // the serve dir even though the process dies by abort().
    let dir = root.join("serve");
    let port = root.join("port");
    let admin_port = root.join("admin-port");
    let log_out = root.join("daemon.log");
    let (daemon, _admin) = spawn_admin_daemon(
        &dir,
        &port,
        &admin_port,
        &log_out,
        &[("TWPP_INJECT_KILL_AT", "3".to_string())],
    );
    let addr = daemon.addr.clone();
    let _ = net_feed(&addr, "src", wpp, true); // dies with the daemon
    let killed = wait_daemon(daemon, "killed daemon");
    assert!(!killed.status.success(), "kill point 3 did not abort the daemon");
    let dump_path = find_flightrec(&dir).expect("aborted daemon left no flightrec-*.json");
    let dump = std::fs::read_to_string(&dump_path).expect("read flight recorder dump");
    let doc = twpp::obs::parse_json(&dump).expect("flight recorder dump must be valid JSON");
    let obj = doc.as_obj().expect("dump is an object");
    assert_eq!(
        obj.get("flightrec_version").and_then(|v| v.as_num()),
        Some(1.0),
        "{dump}"
    );
    let records = obj
        .get("records")
        .and_then(|r| r.as_arr())
        .expect("dump carries a records array");
    assert!(!records.is_empty(), "abort mid-feed must leave flight records");
    assert!(
        records.iter().any(|r| {
            r.as_obj()
                .and_then(|o| o.get("op"))
                .and_then(|op| op.as_str())
                == Some("feed")
        }),
        "the ring should hold the feed operations leading up to the abort:\n{dump}"
    );

    // Restart over the same directory, re-feed (the client resumes from
    // HELLO), and scrape /status live: the source must be visible with
    // the full stream durable and not failed.
    let (daemon, admin) = spawn_admin_daemon(&dir, &port, &admin_port, &log_out, &[]);
    let addr = daemon.addr.clone();
    let feed_out = ok_stdout(net_feed(&addr, "src", wpp, false), "recovery feed");
    let durable: u64 = feed_out
        .lines()
        .find_map(|l| l.split(" at ").nth(1)?.split(' ').next()?.parse().ok())
        .expect("net-feed reports the durable position");
    let status_out = ok_stdout(twpp(&["status", &admin, "--json"], &[]), "status scrape");
    let doc = twpp::obs::parse_json(&status_out).expect("status JSON");
    let obj = doc.as_obj().expect("status object");
    assert_eq!(
        obj.get("status_schema_version").and_then(|v| v.as_num()),
        Some(1.0)
    );
    let sources = obj.get("sources").and_then(|s| s.as_arr()).expect("sources array");
    let src = sources
        .iter()
        .filter_map(|s| s.as_obj())
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("src"))
        .expect("source `src` in /status after restart");
    assert_eq!(
        src.get("durable_events").and_then(|v| v.as_num()),
        Some(durable as f64),
        "/status durable offset must match the client's resumed position:\n{status_out}"
    );
    assert_eq!(src.get("failed").and_then(|v| v.as_bool()), Some(false));

    // The live exposition passes the strict checker mid-run…
    let check = ok_stdout(twpp(&["metrics-check", &admin], &[]), "metrics-check");
    assert!(check.contains("valid Prometheus exposition"), "{check}");

    // …and after the drain the archive is still byte-identical to the
    // batch pipeline: telemetry never perturbs ingest output.
    ok_stdout(net_feed(&addr, "src", wpp, true), "drain request");
    let out = wait_daemon(daemon, "recovered drain");
    ok_stdout(out, "recovered daemon");
    let merged = std::fs::read(dir.join("src").join("merged.twpa")).expect("merged");
    assert_eq!(merged, baseline, "admin-plane daemon diverged from the batch baseline");

    // The structured log spans both incarnations: started twice,
    // drained once, every line valid JSONL.
    let log_text = std::fs::read_to_string(&log_out).expect("daemon log");
    let starts = log_text.matches("\"msg\":\"daemon started\"").count();
    assert_eq!(starts, 2, "{log_text}");
    assert!(log_text.contains("\"msg\":\"daemon drained\""), "{log_text}");
    for line in log_text.lines() {
        twpp::obs::parse_json(line).expect("log line is valid JSON");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn daemon_drain_matches_batch_and_every_kill_point_recovers() {
    let root = temp_dir("sweep");
    let wpp_path = fixture_wpp(&root);
    let wpp = wpp_path.to_str().unwrap();
    let baseline = batch_baseline(&root, wpp);

    // Uninterrupted daemon run: the drain-equivalence reference and the
    // sweep bound.
    let clean_dir = root.join("clean");
    let daemon = spawn_daemon(&clean_dir, &root.join("clean.port"), &[]);
    let addr = daemon.addr.clone();
    ok_stdout(net_feed(&addr, "src", wpp, true), "clean feed");
    let out = wait_daemon(daemon, "clean drain");
    let stdout = ok_stdout(out, "clean daemon");
    let points = durability_points(&stdout);
    assert!(
        points >= 10,
        "fixture too small to exercise the daemon state machine ({points} points)"
    );
    let clean_merged =
        std::fs::read(clean_dir.join("src").join("merged.twpa")).expect("clean merged");
    assert_eq!(
        clean_merged, baseline,
        "a drained daemon must be byte-identical to the batch pipeline"
    );

    // The sweep: abort the daemon at every durability point in turn,
    // restart it, re-feed (the client resumes from HELLO), drain, cmp.
    for kill in 1..=points {
        let dir = root.join(format!("kill-{kill}"));
        let port = root.join(format!("kill-{kill}.port"));
        let daemon = spawn_daemon(
            &dir,
            &port,
            &[("TWPP_INJECT_KILL_AT", kill.to_string())],
        );
        let addr = daemon.addr.clone();
        // The feed/drain dies with the daemon; its failure is expected.
        let _ = net_feed(&addr, "src", wpp, true);
        let killed = wait_daemon(daemon, "killed daemon");
        assert!(
            !killed.status.success(),
            "kill point {kill} of {points} did not abort the daemon"
        );

        let daemon = spawn_daemon(&dir, &port, &[]);
        let addr = daemon.addr.clone();
        ok_stdout(net_feed(&addr, "src", wpp, true), "recovery feed");
        let out = wait_daemon(daemon, "recovery drain");
        ok_stdout(out, "recovered daemon");
        let merged = std::fs::read(dir.join("src").join("merged.twpa"))
            .unwrap_or_else(|e| panic!("kill point {kill}: no merged.twpa after recovery: {e}"));
        assert_eq!(
            merged, baseline,
            "kill point {kill} of {points}: recovered daemon diverged from baseline"
        );
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn flaky_socket_busy_shedding_loses_nothing() {
    let root = temp_dir("flaky");
    let wpp_path = fixture_wpp(&root);
    let wpp = wpp_path.to_str().unwrap();
    let baseline = batch_baseline(&root, wpp);

    let dir = root.join("flaky");
    let daemon = spawn_daemon(
        &dir,
        &root.join("flaky.port"),
        &[("TWPP_INJECT_NET_FAULT", "3".to_string())],
    );
    let addr = daemon.addr.clone();
    ok_stdout(net_feed(&addr, "src", wpp, true), "feed through flaky daemon");
    let out = wait_daemon(daemon, "flaky drain");
    let stdout = ok_stdout(out, "flaky daemon");
    assert!(
        stdout.contains("busy"),
        "daemon should have reported BUSY shedding:\n{stdout}"
    );
    let merged = std::fs::read(dir.join("src").join("merged.twpa")).expect("merged");
    assert_eq!(
        merged, baseline,
        "BUSY shedding must not lose or duplicate acknowledged events"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_to_identical_bytes() {
    let root = temp_dir("sigterm");
    let wpp_path = fixture_wpp(&root);
    let wpp = wpp_path.to_str().unwrap();
    let baseline = batch_baseline(&root, wpp);

    let dir = root.join("sigterm");
    let daemon = spawn_daemon(&dir, &root.join("sigterm.port"), &[]);
    let addr = daemon.addr.clone();
    // Feed without requesting a drain; the signal does that.
    ok_stdout(net_feed(&addr, "src", wpp, false), "feed");
    let pid = daemon.child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM failed");
    let out = wait_daemon(daemon, "sigterm drain");
    let stdout = ok_stdout(out, "daemon after SIGTERM");
    assert!(stdout.contains("drained"), "{stdout}");
    let merged = std::fs::read(dir.join("src").join("merged.twpa")).expect("merged");
    assert_eq!(
        merged, baseline,
        "a SIGTERM drain must be byte-identical to an uninterrupted run"
    );

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn mid_stream_read_fault_exits_4_and_stays_resumable() {
    let root = temp_dir("readfault");
    let wpp_path = fixture_wpp(&root);
    let wpp_bytes = std::fs::read(&wpp_path).expect("fixture bytes");
    let baseline = batch_baseline(&root, wpp_path.to_str().unwrap());

    let ingest_stdin = |dir: &str, envs: &[(&str, String)]| -> Output {
        let mut cmd = Command::new(bin());
        cmd.args([
            "ingest",
            dir,
            "--from",
            "-",
            "--seal-bytes",
            "256",
            "--chunk-events",
            "13",
            "--durability",
            "none",
        ]);
        for var in INJECT_VARS {
            cmd.env_remove(var);
        }
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn ingest");
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("stdin")
            .write_all(&wpp_bytes)
            .ok(); // the faulted run may close stdin early: EPIPE is fine
        child.wait_with_output().expect("ingest output")
    };

    // A mid-stream read failure must NOT look like a clean EOF: exit 4,
    // with the durable prefix sealed.
    let dir = root.join("dir");
    let dir_s = dir.to_str().unwrap();
    let fault_at = (wpp_bytes.len() / 2).to_string();
    let failed = ingest_stdin(dir_s, &[("TWPP_INJECT_READ_FAULT_AT", fault_at)]);
    assert_eq!(
        failed.status.code(),
        Some(4),
        "mid-stream read error must exit 4, not pretend clean EOF\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&failed.stdout),
        String::from_utf8_lossy(&failed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&failed.stderr).contains("read fault"),
        "stderr should name the injected fault"
    );
    assert!(
        String::from_utf8_lossy(&failed.stdout).contains("sealed"),
        "the durable prefix should have been sealed"
    );
    assert!(
        !dir.join("merged.twpa").exists(),
        "a failed stream must not produce a merged archive"
    );

    // The directory is resumable: a clean rerun of the same stream
    // converges to the batch baseline bytes.
    let recovered = ingest_stdin(dir_s, &[]);
    let stdout = ok_stdout(recovered, "resumed stdin ingest");
    assert!(stdout.contains("resumed"), "{stdout}");
    let merged = std::fs::read(dir.join("merged.twpa")).expect("merged after resume");
    assert_eq!(merged, baseline);

    // And a clean single-shot stdin run exits 0 with identical bytes.
    let clean_dir = root.join("clean");
    ok_stdout(ingest_stdin(clean_dir.to_str().unwrap(), &[]), "clean stdin ingest");
    let merged = std::fs::read(clean_dir.join("merged.twpa")).expect("clean merged");
    assert_eq!(merged, baseline);

    std::fs::remove_dir_all(&root).ok();
}
