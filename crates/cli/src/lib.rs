//! Implementation of the `twpp` command-line tool.
//!
//! The binary wires [`run_command`] to `std::env::args`; keeping the logic
//! in a library makes every command unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;

pub use commands::{exit_code, request_shutdown, run_command, shutdown_requested, CliError};
