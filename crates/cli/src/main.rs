//! `twpp` — trace programs, compact whole program paths, query archives.
//!
//! This thin binary shim is the one place outside `forbid(unsafe_code)`:
//! installing the SIGTERM/SIGINT handlers that let `twpp serve-ingest`
//! drain gracefully requires one raw libc call. The handler itself only
//! stores an atomic flag ([`twpp_cli::request_shutdown`]), which is
//! async-signal-safe.

#[cfg(unix)]
fn install_drain_signals() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        twpp_cli::request_shutdown();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_drain_signals() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Only the daemons convert signals into a graceful drain; every
    // other command keeps the default die-on-SIGINT behaviour.
    if args.iter().any(|a| a == "serve-ingest" || a == "serve") {
        install_drain_signals();
    }
    let mut stdout = std::io::stdout().lock();
    match twpp_cli::run_command(&args, &mut stdout) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(twpp_cli::exit_code(&e));
        }
    }
}
