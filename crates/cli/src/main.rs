//! `twpp` — trace programs, compact whole program paths, query archives.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match twpp_cli::run_command(&args, &mut stdout) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(twpp_cli::exit_code(&e));
        }
    }
}
