//! The `twpp` subcommands.
//!
//! ```text
//! twpp run <prog.twl> [--input 1,2,3]
//! twpp trace <prog.twl> -o <out.wpp> [--input 1,2,3]
//! twpp compact <in.wpp> -o <out.twpa> [--program <prog.twl>] [--threads N] [--stats]
//! twpp ingest <dir> --from <in.wpp|-> [--seal-bytes N] [--seal-ms N] [--chunk-events N]
//! twpp serve-ingest <dir> [--listen tcp:H:P|unix:PATH] [--port-file F] [--tail F]...
//!                         [--admin tcp:H:P|unix:PATH] [--log-out F]
//! twpp net-feed <addr> --source <name> --from <in.wpp|-> [--drain]
//! twpp status <addr> [--json] [--watch N]
//! twpp metrics-check <file-or-addr>
//! twpp info <file.wpp|file.twpa>
//! twpp query <file.twpa> <func-id-or-name>
//! twpp fsck <file.twpa|file.wpp|dir> [--repair [-o <out>]] [--threads N]
//! twpp report-check <report.json>
//! twpp sequitur <in.wpp>
//! twpp selftest [--seed N] [--cases K] [--max-events M] [--out-dir D] [--threads N]
//! ```
//!
//! `ingest` is the crash-safe incremental path: events are fed to a
//! resumable [`twpp::ingest::Compactor`] in chunks, made durable in a
//! write-ahead log, sealed into segment archives, and merged into a
//! `merged.twpa` byte-identical to a batch `compact` of the same
//! stream. Rerunning `ingest` on a directory a killed process left
//! behind resumes exactly where it stopped. `fsck` on such a directory
//! chain-validates the manifests, salvage-verifies every segment and
//! replays the WAL.
//!
//! `serve-ingest` is the long-lived form (DESIGN.md §17): a daemon
//! accepting framed event streams over TCP/Unix sockets and tailed
//! files, one resumable compactor per source under `<dir>/<source>/`,
//! with backpressure (BUSY + retry-after), per-connection quarantine of
//! garbage, a watchdog failing wedged sources in isolation, and a
//! graceful drain on SIGTERM that merges every source. `net-feed` is
//! the matching client. With `--admin` the daemon also serves a live
//! telemetry plane (DESIGN.md §18): `/metrics`, `/status` and
//! `/healthz` over plain HTTP, which `status` renders as a per-source
//! table and `metrics-check` validates against the strict Prometheus
//! text-format parser.
//!
//! `--threads N` caps the worker pool used by the parallel compaction and
//! verification stages (default: `TWPP_THREADS` or the machine's available
//! parallelism). `--stats` adds per-stage wall time and worker utilisation
//! to the `compact` report.
//!
//! The observability flags (`--trace-out`, `--metrics-out`, `--report`)
//! switch `compact`/`query`/`fsck` from the no-op observer to a
//! collecting one and write Chrome trace-event spans, Prometheus
//! metrics, and the machine-readable run report (DESIGN.md §13). With
//! none of them given, the run is byte-identical to an uninstrumented
//! build.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use twpp::obs::BudgetSection;
use twpp::{ArchiveError, GovOptions, Obs, PipelineStats, RunOutcome, RunReport, TwppArchive};
use twpp_ir::FuncId;
use twpp_tracer::{run_traced, ExecLimits, RawWpp};

/// Errors surfaced to the user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Wrong usage; the message holds the usage text.
    Usage(String),
    /// The command finished but produced a *partial or degraded* result:
    /// a compact run that skipped failed functions, a query cut short by
    /// its budget, or an fsck verdict of "intact but degraded". Maps to
    /// exit code 3; everything that was written or printed is valid.
    Degraded(String),
    /// Any underlying failure (I/O, compilation, malformed files, …).
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Degraded(msg) => write!(f, "{msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {}

/// Process exit code for an error: `2` usage, `3` partial/degraded
/// result, `4` hard failure. Success is `0`.
pub fn exit_code(e: &CliError) -> i32 {
    match e {
        CliError::Usage(_) => 2,
        CliError::Degraded(_) => 3,
        CliError::Failed(_) => 4,
    }
}

fn fail(e: impl fmt::Display) -> CliError {
    CliError::Failed(e.to_string())
}

/// The single fallible sink every piece of CLI output goes through.
///
/// `write!`/`writeln!` resolve to the inherent [`Out::write_fmt`], so a
/// broken pipe or full disk surfaces as one [`CliError::Failed`] at the
/// first failed print instead of being sprinkled as ad-hoc `map_err`
/// calls (or worse, panics) across every command.
pub struct Out<'a> {
    w: &'a mut dyn Write,
}

impl<'a> Out<'a> {
    /// Wraps a raw writer.
    pub fn new(w: &'a mut dyn Write) -> Out<'a> {
        Out { w }
    }

    /// The method `write!`/`writeln!` expand to; maps the I/O error.
    ///
    /// # Errors
    ///
    /// [`CliError::Failed`] when the underlying writer fails.
    pub fn write_fmt(&mut self, args: fmt::Arguments<'_>) -> Result<(), CliError> {
        self.w
            .write_fmt(args)
            .map_err(|e| CliError::Failed(format!("output write failed: {e}")))
    }
}

const USAGE: &str = "\
usage:
  twpp run <prog.twl> [--input 1,2,3]       compile and execute a program
  twpp trace <prog.twl> -o <out.wpp>        collect its whole program path
  twpp compact <in.wpp> -o <out.twpa> [--program <prog.twl>] [--threads N] [--stats]
                                            compact a WPP into a TWPP archive
                                            (--program embeds function names;
                                            --stats prints stage timings)
  twpp ingest <dir> --from <in.wpp|->       feed a WPP through the crash-safe
                                            incremental compactor: WAL + sealed
                                            segments in <dir>, then a merged
                                            archive byte-identical to `compact`;
                                            rerunning resumes after a crash
      --seal-bytes N    seal the open window at N encoded bytes (default 1 MiB)
      --seal-ms N       additionally seal windows older than N ms
      --chunk-events N  events per feed batch (default 1024)
  twpp serve-ingest <dir>                   fault-tolerant streaming ingestion
                                            daemon: framed WPP event streams over
                                            TCP/Unix sockets and tailed files,
                                            one crash-safe compactor per source
                                            under <dir>/<source>/; drains
                                            gracefully on SIGTERM/SIGINT, merging
                                            every source byte-identically to an
                                            uninterrupted batch run
      --listen SPEC     tcp:HOST:PORT or unix:PATH (default tcp:127.0.0.1:0)
      --port-file F     write the bound address to F once listening
      --drain-after-ms N  self-drain after N ms (tests without signals)
      --window-cap N    shed load with BUSY past N open-window bytes
                        (default 4 x --seal-bytes)
      --wedge-ms N      watchdog deadline: fail a source whose durable
                        operation wedges past N ms (default 10000)
      --tail F          also ingest appended bytes of file F (repeatable)
      --admin SPEC      also serve the admin telemetry plane on SPEC
                        (tcp:HOST:PORT or unix:PATH): GET /metrics
                        (Prometheus text), /status (JSON), /healthz
      --admin-port-file F  write the bound admin address to F
      --log-out F       append structured JSONL logs to F (rotates to
                        F.1 past 8 MiB); also arms the crash flight
                        recorder, dumped to <dir>/flightrec-<ts>.json
                        when a source is failed or the daemon aborts
  twpp net-feed <addr> --source <name> --from <in.wpp|->
                                            stream a WPP to a serve-ingest
                                            daemon: resumes from the server's
                                            durable position, honours BUSY
                                            retry-after hints, loses nothing
      --drain           request a daemon-wide graceful drain after feeding
  twpp status <addr> [--json] [--watch N]   fetch /status from a daemon's admin
                                            plane and render it as a per-source
                                            table (--json prints the raw JSON;
                                            --watch refreshes every N seconds)
  twpp metrics-check <file-or-addr>         validate Prometheus text exposition
                                            (a --metrics-out file, or /metrics
                                            fetched from an admin address)
                                            against the strict format checker
  twpp info <file.wpp|file.twpa>            summarize a trace or archive
  twpp query <file.twpa> <func-id-or-name>  extract one function's traces
      --remote ADDR     send the request to a `twpp serve` daemon instead
                        of reading a local file: the first operand becomes
                        the served archive name (file stem) and the output
                        is byte-identical to the local command
  twpp slice <file.twpa> <func> <trace> <block>
                                            backward dynamic slice of one
                                            unique trace from a criterion
                                            block (sorted static blocks in
                                            the closure); --remote as query
  twpp currency <file.twpa> <func> <trace> <def-block> <use-block>
                                            paper §4.2 currency query: in how
                                            many executions of the use block
                                            is the def current (not killed by
                                            a --redef block)? --remote as query
      --redef B         a redefining block id (repeatable)
  twpp serve <dir>                          multi-tenant query daemon over
                                            every *.twpa under <dir>: answers
                                            query/slice/currency/list/stat
                                            over the framed protocol, rescans
                                            the fleet root, shares one
                                            byte-capped frame cache and one
                                            answer-summary cache
      --listen SPEC     tcp:HOST:PORT or unix:PATH (default tcp:127.0.0.1:0)
      --port-file F     write the bound address to F once listening
      --drain-after-ms N  self-drain after N ms (tests without signals)
      --default-deadline-ms N  per-request wall-clock budget when the
                        client sends none (default: unlimited)
      --rescan-ms N     fleet-root rescan interval (default 1000)
      --max-inflight N  admission cap; excess requests get BUSY (default 64)
      --no-cache        solve every request from the archive (no answer
                        summary cache)
      --frame-cache-bytes N    decoded-frame cache cap (default 64 MiB)
      --summary-cache-bytes N  answer-summary cache cap (default 8 MiB)
      --admin SPEC      admin telemetry plane: /metrics /status /healthz
      --admin-port-file F  write the bound admin address to F
  twpp serve-bench <addr> [--clients N] [--requests M] [--json]
                                            hammer a running serve daemon
                                            with N concurrent clients x M
                                            queries each and report p50/p99
                                            client-side latency (--admin ADDR
                                            also scrapes cache hit rates)
  twpp gen-fleet <dir> [--archives N] [--seed S] [--scale F]
                                            write N seeded workload archives
                                            (cycling the five SPECint95
                                            profiles) as a serve fleet root
  twpp fsck <file.twpa|file.wpp|dir> [--repair [-o <out>]] [--threads N]
                                            verify checksums; --repair writes a
                                            salvaged copy of a damaged file; on
                                            an ingest directory, validate the
                                            segment chain and WAL
  twpp report-check <report.json>           validate a --report file against
                                            the run-report schema
  twpp sequitur <in.wpp>                    compress with the Sequitur baseline
  twpp selftest [--seed N] [--cases K] [--max-events M] [--out-dir D]
                                            run the conformance battery: the
                                            optimized pipeline against naive
                                            reference oracles and metamorphic
                                            relations; failing cases are shrunk
                                            to minimal reproducers in the out
                                            dir (defaults: seed 42, 100 cases)

  --threads N caps the worker pool for compact/fsck (default: TWPP_THREADS
  or the machine's available parallelism); for selftest it sets the largest
  thread count the byte-identity checks compare against

codec (compact/ingest):
  --codec legacy|adaptive
                    timestamp-set encoder for written archives. legacy
                    (default) is byte-identical to older releases;
                    adaptive picks the smallest of the series, raw and
                    delta-delta encodings per block — never larger than
                    legacy, and every reader decodes both

durability (compact/ingest):
  --durability none|flush|sync
                    how hard written bytes are pushed toward stable
                    storage before success is reported (compact default:
                    flush; ingest default: sync — an acknowledged event
                    survives a power cut)

retry (ingest/serve-ingest/net-feed):
  --retry-attempts N  total attempts for transient I/O and BUSY rounds
                      (default: ingest 1, serve-ingest 5, net-feed 8)
  --retry-base-ms N   exponential-backoff base delay (default 5)
  --retry-cap-ms N    backoff delay cap (default 200)
  --retry-seed N      deterministic jitter seed (default 42)

governance (compact/ingest/query/fsck):
  --deadline-ms N   stop after N milliseconds of wall-clock time
                    (ingest: backpressure — seal early, keep going)
  --max-events N    stop after charging N work steps (events, traces)
  --degrade         compact only: isolate per-function failures and write
                    an archive of the surviving functions (exit 3)
  --fail-fast       compact only: abort on the first failure (default)

observability (compact/ingest/query/fsck):
  --trace-out <f>   write spans as Chrome trace-event JSON
  --metrics-out <f> write metrics in Prometheus text format
  --report <f>      write the machine-readable run report (JSON)

exit codes: 0 complete, 2 usage, 3 partial or degraded result, 4 failure";

/// Destination paths for the observability artifacts. Any one of them
/// switches the run from the no-op observer to a collecting one.
#[derive(Default)]
struct ObsFiles {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
}

impl ObsFiles {
    fn enabled(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.report_out.is_some()
    }

    /// The observer for this run: collecting iff any artifact was
    /// requested, so unobserved runs stay on the noop fast path.
    fn observer(&self) -> Obs {
        if self.enabled() {
            Obs::collecting()
        } else {
            Obs::noop()
        }
    }

    /// Writes the requested artifacts. The report gains the metrics
    /// snapshot and span count here, so callers only fill the
    /// command-specific sections (outcome, pipeline, fsck, budget).
    fn emit(&self, obs: &Obs, mut report: RunReport, out: &mut Out<'_>) -> Result<(), CliError> {
        if !self.enabled() {
            return Ok(());
        }
        report.metrics = obs.snapshot();
        report.span_count = obs.span_count() as u64;
        if let Some(p) = &self.trace_out {
            fs::write(p, obs.chrome_trace_json())
                .map_err(|e| fail(format!("{}: {e}", p.display())))?;
            writeln!(out, "wrote trace events {}", p.display())?;
        }
        if let Some(p) = &self.metrics_out {
            fs::write(p, obs.prometheus_text())
                .map_err(|e| fail(format!("{}: {e}", p.display())))?;
            writeln!(out, "wrote metrics {}", p.display())?;
        }
        if let Some(p) = &self.report_out {
            let json = report.to_json();
            debug_assert!(
                twpp::validate_report_json(&json).is_ok(),
                "emitted report must satisfy its own schema"
            );
            fs::write(p, json).map_err(|e| fail(format!("{}: {e}", p.display())))?;
            writeln!(out, "wrote run report {}", p.display())?;
        }
        Ok(())
    }
}

/// The budget section of a run report, read back from a spent budget.
fn budget_section(budget: &twpp::Budget) -> BudgetSection {
    BudgetSection {
        limited: !budget.is_unlimited(),
        steps_used: budget.steps_used(),
        bytes_used: budget.bytes_used(),
    }
}

/// Parses `args` and executes the selected command, writing human-readable
/// output to `out`.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations and
/// [`CliError::Failed`] for runtime failures.
pub fn run_command(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let out = &mut Out::new(out);
    let mut positional: Vec<&str> = Vec::new();
    let mut output: Option<&str> = None;
    let mut program_path: Option<&str> = None;
    let mut input: Vec<i64> = Vec::new();
    let mut repair = false;
    let mut threads: Option<usize> = None;
    let mut stats = false;
    let mut limits = twpp::Limits::new();
    let mut degrade = false;
    let mut obs_files = ObsFiles::default();
    let mut seed: Option<u64> = None;
    let mut cases: Option<usize> = None;
    let mut max_events: Option<u64> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut from: Option<String> = None;
    let mut seal_bytes: Option<u64> = None;
    let mut seal_ms: Option<u64> = None;
    let mut chunk_events: Option<usize> = None;
    let mut durability: Option<twpp::Durability> = None;
    let mut codec: Option<twpp::Codec> = None;
    let mut listen: Option<String> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut drain_after_ms: Option<u64> = None;
    let mut window_cap: Option<u64> = None;
    let mut wedge_ms: Option<u64> = None;
    let mut retry_attempts: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;
    let mut retry_cap_ms: Option<u64> = None;
    let mut retry_seed: Option<u64> = None;
    let mut tails: Vec<PathBuf> = Vec::new();
    let mut source: Option<String> = None;
    let mut drain = false;
    let mut admin: Option<String> = None;
    let mut admin_port_file: Option<PathBuf> = None;
    let mut log_out: Option<PathBuf> = None;
    let mut json = false;
    let mut watch: Option<u64> = None;
    let mut remote: Option<String> = None;
    let mut default_deadline_ms: Option<u64> = None;
    let mut rescan_ms: Option<u64> = None;
    let mut max_inflight: Option<u64> = None;
    let mut no_cache = false;
    let mut frame_cache_bytes: Option<u64> = None;
    let mut summary_cache_bytes: Option<u64> = None;
    let mut redefs: Vec<u32> = Vec::new();
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut archives: Option<usize> = None;
    let mut scale: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                output = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::Usage("-o needs a path".into()))?,
                );
            }
            "--program" => {
                i += 1;
                program_path = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::Usage("--program needs a path".into()))?,
                );
            }
            "--input" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--input needs values".into()))?;
                input = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<i64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| CliError::Usage(format!("bad --input: {e}")))?;
            }
            "--repair" => repair = true,
            "--stats" => stats = true,
            "--from" => {
                i += 1;
                from = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::Usage("--from needs a path or -".into()))?
                        .clone(),
                );
            }
            "--seal-bytes" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--seal-bytes needs a count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --seal-bytes: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--seal-bytes must be at least 1".into()));
                }
                seal_bytes = Some(n);
            }
            "--seal-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--seal-ms needs a count".into()))?;
                seal_ms = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --seal-ms: {e}")))?,
                );
            }
            "--chunk-events" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--chunk-events needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --chunk-events: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--chunk-events must be at least 1".into()));
                }
                chunk_events = Some(n);
            }
            "--durability" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--durability needs none|flush|sync".into()))?;
                durability = Some(twpp::Durability::parse(raw).ok_or_else(|| {
                    CliError::Usage(format!("bad --durability `{raw}`: use none|flush|sync"))
                })?);
            }
            "--codec" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--codec needs legacy|adaptive".into()))?;
                codec = Some(twpp::Codec::parse(raw).ok_or_else(|| {
                    CliError::Usage(format!("bad --codec `{raw}`: use legacy|adaptive"))
                })?);
            }
            "--degrade" => degrade = true,
            "--fail-fast" => degrade = false,
            "--listen" => {
                i += 1;
                listen = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::Usage("--listen needs tcp:HOST:PORT or unix:PATH".into())
                        })?
                        .clone(),
                );
            }
            "--port-file" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--port-file needs a path".into()))?;
                port_file = Some(PathBuf::from(p));
            }
            "--drain-after-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--drain-after-ms needs a count".into()))?;
                drain_after_ms = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --drain-after-ms: {e}")))?,
                );
            }
            "--window-cap" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--window-cap needs a byte count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --window-cap: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--window-cap must be at least 1".into()));
                }
                window_cap = Some(n);
            }
            "--wedge-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--wedge-ms needs a count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --wedge-ms: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--wedge-ms must be at least 1".into()));
                }
                wedge_ms = Some(n);
            }
            "--retry-attempts" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--retry-attempts needs a count".into()))?;
                let n = raw
                    .parse::<u32>()
                    .map_err(|e| CliError::Usage(format!("bad --retry-attempts: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--retry-attempts must be at least 1".into()));
                }
                retry_attempts = Some(n);
            }
            "--retry-base-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--retry-base-ms needs a count".into()))?;
                retry_base_ms = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --retry-base-ms: {e}")))?,
                );
            }
            "--retry-cap-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--retry-cap-ms needs a count".into()))?;
                retry_cap_ms = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --retry-cap-ms: {e}")))?,
                );
            }
            "--retry-seed" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--retry-seed needs a number".into()))?;
                retry_seed = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --retry-seed: {e}")))?,
                );
            }
            "--tail" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--tail needs a path".into()))?;
                tails.push(PathBuf::from(p));
            }
            "--source" => {
                i += 1;
                source = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::Usage("--source needs a name".into()))?
                        .clone(),
                );
            }
            "--drain" => drain = true,
            "--admin" => {
                i += 1;
                admin = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::Usage("--admin needs tcp:HOST:PORT or unix:PATH".into())
                        })?
                        .clone(),
                );
            }
            "--admin-port-file" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--admin-port-file needs a path".into()))?;
                admin_port_file = Some(PathBuf::from(p));
            }
            "--log-out" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--log-out needs a path".into()))?;
                log_out = Some(PathBuf::from(p));
            }
            "--remote" => {
                i += 1;
                remote = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::Usage("--remote needs tcp:HOST:PORT or unix:PATH".into())
                        })?
                        .clone(),
                );
            }
            "--default-deadline-ms" => {
                i += 1;
                let raw = args.get(i).ok_or_else(|| {
                    CliError::Usage("--default-deadline-ms needs a count".into())
                })?;
                default_deadline_ms = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --default-deadline-ms: {e}")))?,
                );
            }
            "--rescan-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--rescan-ms needs a count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --rescan-ms: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--rescan-ms must be at least 1".into()));
                }
                rescan_ms = Some(n);
            }
            "--max-inflight" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--max-inflight needs a count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --max-inflight: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--max-inflight must be at least 1".into()));
                }
                max_inflight = Some(n);
            }
            "--no-cache" => no_cache = true,
            "--frame-cache-bytes" => {
                i += 1;
                let raw = args.get(i).ok_or_else(|| {
                    CliError::Usage("--frame-cache-bytes needs a byte count".into())
                })?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --frame-cache-bytes: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--frame-cache-bytes must be at least 1".into()));
                }
                frame_cache_bytes = Some(n);
            }
            "--summary-cache-bytes" => {
                i += 1;
                let raw = args.get(i).ok_or_else(|| {
                    CliError::Usage("--summary-cache-bytes needs a byte count".into())
                })?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --summary-cache-bytes: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--summary-cache-bytes must be at least 1".into(),
                    ));
                }
                summary_cache_bytes = Some(n);
            }
            "--redef" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--redef needs a block id".into()))?;
                redefs.push(
                    raw.parse::<u32>()
                        .map_err(|e| CliError::Usage(format!("bad --redef: {e}")))?,
                );
            }
            "--clients" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--clients needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --clients: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--clients must be at least 1".into()));
                }
                clients = Some(n);
            }
            "--requests" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--requests needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --requests: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--requests must be at least 1".into()));
                }
                requests = Some(n);
            }
            "--archives" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--archives needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --archives: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--archives must be at least 1".into()));
                }
                archives = Some(n);
            }
            "--scale" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--scale needs a factor".into()))?;
                let f = raw
                    .parse::<f64>()
                    .map_err(|e| CliError::Usage(format!("bad --scale: {e}")))?;
                if !(f.is_finite() && f > 0.0) {
                    return Err(CliError::Usage("--scale must be a positive number".into()));
                }
                scale = Some(f);
            }
            "--json" => json = true,
            "--watch" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--watch needs a count of seconds".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --watch: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--watch must be at least 1".into()));
                }
                watch = Some(n);
            }
            "--trace-out" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--trace-out needs a path".into()))?;
                obs_files.trace_out = Some(PathBuf::from(p));
            }
            "--metrics-out" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--metrics-out needs a path".into()))?;
                obs_files.metrics_out = Some(PathBuf::from(p));
            }
            "--report" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--report needs a path".into()))?;
                obs_files.report_out = Some(PathBuf::from(p));
            }
            "--deadline-ms" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a count".into()))?;
                let ms = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --deadline-ms: {e}")))?;
                limits = limits.deadline_ms(ms);
            }
            "--max-events" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--max-events needs a count".into()))?;
                let n = raw
                    .parse::<u64>()
                    .map_err(|e| CliError::Usage(format!("bad --max-events: {e}")))?;
                max_events = Some(n);
                limits = limits.max_steps(n);
            }
            "--seed" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--seed needs a number".into()))?;
                seed = Some(
                    raw.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("bad --seed: {e}")))?,
                );
            }
            "--cases" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--cases needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --cases: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--cases must be at least 1".into()));
                }
                cases = Some(n);
            }
            "--out-dir" => {
                i += 1;
                let p = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--out-dir needs a path".into()))?;
                out_dir = Some(PathBuf::from(p));
            }
            "--threads" => {
                i += 1;
                let raw = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                let n = raw
                    .parse::<usize>()
                    .map_err(|e| CliError::Usage(format!("bad --threads: {e}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
                threads = Some(n);
            }
            "--help" | "-h" => {
                writeln!(out, "{USAGE}")?;
                return Ok(());
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let usage = || CliError::Usage(USAGE.to_owned());
    let retry_policy = |default_attempts: u32| {
        twpp::Retry::new(
            retry_attempts.unwrap_or(default_attempts),
            retry_base_ms.unwrap_or(5),
            retry_cap_ms.unwrap_or(200),
            retry_seed.unwrap_or(42),
        )
    };
    match positional.as_slice() {
        ["run", path] => cmd_run(Path::new(path), &input, out),
        ["trace", path] => {
            let output = output.ok_or_else(usage)?;
            cmd_trace(Path::new(path), &input, Path::new(output), out)
        }
        ["compact", path] => {
            let output = output.ok_or_else(usage)?;
            cmd_compact(
                Path::new(path),
                Path::new(output),
                program_path.map(Path::new),
                threads,
                stats,
                limits,
                degrade,
                durability.unwrap_or(twpp::Durability::Flush),
                codec.unwrap_or_default(),
                &obs_files,
                out,
            )
        }
        ["ingest", dir] => {
            let from = from.ok_or_else(usage)?;
            cmd_ingest(
                Path::new(dir),
                &from,
                IngestFlags {
                    seal_bytes,
                    seal_ms,
                    chunk_events: chunk_events.unwrap_or(1024),
                    durability: durability.unwrap_or(twpp::Durability::Sync),
                    codec: codec.unwrap_or_default(),
                    threads,
                    limits,
                    degrade,
                    retry: retry_policy(1),
                },
                &obs_files,
                out,
            )
        }
        ["serve-ingest", dir] => cmd_serve_ingest(
            Path::new(dir),
            ServeFlags {
                listen: listen.unwrap_or_else(|| "tcp:127.0.0.1:0".into()),
                port_file,
                drain_after_ms,
                seal_bytes,
                seal_ms,
                durability: durability.unwrap_or(twpp::Durability::Sync),
                codec: codec.unwrap_or_default(),
                threads,
                limits,
                degrade,
                window_cap,
                wedge_ms,
                retry: retry_policy(5),
                tails,
                admin,
                admin_port_file,
                log_out,
            },
            &obs_files,
            out,
        ),
        ["status", addr] => cmd_status(addr, json, watch, out),
        ["metrics-check", target] => cmd_metrics_check(target, out),
        ["net-feed", addr] => {
            let from = from.ok_or_else(usage)?;
            let source = source.ok_or_else(|| {
                CliError::Usage("net-feed needs --source <name>".into())
            })?;
            cmd_net_feed(
                addr,
                &source,
                &from,
                drain,
                chunk_events.unwrap_or(1024),
                retry_policy(8),
                out,
            )
        }
        ["info", path] => cmd_info(Path::new(path), out),
        ["fsck", path] => cmd_fsck(
            Path::new(path),
            repair,
            output.map(Path::new),
            threads,
            &obs_files,
            out,
        ),
        ["query", path, func] => match &remote {
            Some(addr) => cmd_query_remote(addr, path, func, limits, out),
            None => cmd_query(Path::new(path), func, limits, &obs_files, out),
        },
        ["slice", path, func, trace, criterion] => {
            let trace = parse_wire_u32(trace, "trace index")?;
            let criterion = parse_wire_u32(criterion, "criterion block")?;
            match &remote {
                Some(addr) => cmd_slice_remote(addr, path, func, trace, criterion, limits, out),
                None => cmd_slice(
                    Path::new(path),
                    func,
                    trace,
                    criterion,
                    limits,
                    &obs_files,
                    out,
                ),
            }
        }
        ["currency", path, func, trace, def, use_] => {
            let trace = parse_wire_u32(trace, "trace index")?;
            let def = parse_wire_u32(def, "def block")?;
            let use_ = parse_wire_u32(use_, "use block")?;
            match &remote {
                Some(addr) => {
                    cmd_currency_remote(addr, path, func, trace, def, use_, &redefs, limits, out)
                }
                None => cmd_currency(
                    Path::new(path),
                    func,
                    trace,
                    def,
                    use_,
                    &redefs,
                    limits,
                    &obs_files,
                    out,
                ),
            }
        }
        ["serve", dir] => cmd_serve(
            Path::new(dir),
            QueryServeFlags {
                listen: listen.unwrap_or_else(|| "tcp:127.0.0.1:0".into()),
                port_file,
                admin,
                admin_port_file,
                drain_after_ms,
                default_deadline_ms: default_deadline_ms.unwrap_or(0),
                rescan_ms,
                max_inflight,
                cache_answers: !no_cache,
                frame_cache_bytes,
                summary_cache_bytes,
            },
            &obs_files,
            out,
        ),
        ["serve-bench", addr] => cmd_serve_bench(
            addr,
            clients.unwrap_or(4),
            requests.unwrap_or(200),
            admin.as_deref(),
            json,
            limits,
            out,
        ),
        ["gen-fleet", dir] => cmd_gen_fleet(
            Path::new(dir),
            archives.unwrap_or(10),
            seed.unwrap_or(42),
            scale.unwrap_or(0.01),
            threads,
            out,
        ),
        ["report-check", path] => cmd_report_check(Path::new(path), out),
        ["sequitur", path] => cmd_sequitur(Path::new(path), out),
        ["selftest"] => cmd_selftest(
            seed.unwrap_or(42),
            cases.unwrap_or(100),
            max_events.unwrap_or(2_000) as usize,
            out_dir,
            threads,
            &obs_files,
            out,
        ),
        _ => Err(usage()),
    }
}

fn compile(path: &Path) -> Result<twpp_ir::Program, CliError> {
    let src = fs::read_to_string(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    twpp_lang::compile(&src).map_err(|e| fail(format!("{}: {e}", path.display())))
}

fn cmd_run(path: &Path, input: &[i64], out: &mut Out<'_>) -> Result<(), CliError> {
    let program = compile(path)?;
    let (execution, wpp) = run_traced(&program, input, ExecLimits::default()).map_err(fail)?;
    for v in &execution.output {
        writeln!(out, "{v}")?;
    }
    writeln!(
        out,
        "-- {} block steps, {} trace events",
        execution.steps,
        wpp.event_count()
    )?;
    Ok(())
}

fn cmd_trace(
    path: &Path,
    input: &[i64],
    output: &Path,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let program = compile(path)?;
    let (_, wpp) = run_traced(&program, input, ExecLimits::default()).map_err(fail)?;
    let file = fs::File::create(output).map_err(fail)?;
    let mut writer = std::io::BufWriter::new(file);
    wpp.write_to(&mut writer).map_err(fail)?;
    writeln!(
        out,
        "wrote {} ({} events, {} bytes)",
        output.display(),
        wpp.event_count(),
        wpp.byte_len()
    )?;
    writeln!(out, "function ids:")?;
    for (id, func) in program.funcs() {
        writeln!(out, "  {:>4}  {}", id.as_u32(), func.name())?;
    }
    Ok(())
}

fn read_wpp(path: &Path) -> Result<RawWpp, CliError> {
    let file = fs::File::open(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    RawWpp::read_from(std::io::BufReader::new(file)).map_err(fail)
}

#[allow(clippy::too_many_arguments)]
fn cmd_compact(
    path: &Path,
    output: &Path,
    program_path: Option<&Path>,
    threads: Option<usize>,
    show_stats: bool,
    limits: twpp::Limits,
    degrade: bool,
    durability: twpp::Durability,
    codec: twpp::Codec,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let wpp = read_wpp(path)?;
    let obs = obs_files.observer();
    let resolved = twpp::resolve_threads(threads);
    let options = GovOptions {
        threads,
        budget: limits.start(),
        fail_fast: !degrade,
        faults: twpp::FaultPlan::from_env(),
        obs: obs.clone(),
    };
    let (compacted, mut stats) = match twpp::compact_governed(&wpp, &options) {
        Ok(v) => v,
        Err(twpp::PipelineError::Budget(reason)) => {
            // The budget stopped the pipeline: nothing partial is
            // written, but the report still records what was spent.
            let mut report = RunReport::new("compact", RunOutcome::Stopped);
            report.stop_reason = Some(reason.as_str().to_owned());
            report.threads = resolved as u64;
            report.budget = budget_section(&options.budget);
            obs_files.emit(&obs, report, out)?;
            return Err(fail(format!(
                "{}: compaction stopped ({reason}); no archive written",
                path.display()
            )));
        }
        Err(other) => return Err(fail(other)),
    };
    let names = match program_path {
        Some(src) => {
            let program = compile(src)?;
            program
                .funcs()
                .map(|(id, f)| (id, f.name().to_owned()))
                .collect()
        }
        None => std::collections::HashMap::new(),
    };
    let encode_started = std::time::Instant::now();
    let archive = TwppArchive::from_compacted_codec(
        &compacted,
        &names,
        resolved,
        &stats.degraded.failed,
        &obs,
        codec,
    );
    stats.timings.archive_encode_nanos = encode_started.elapsed().as_nanos() as u64;
    archive.save_with(output, durability).map_err(fail)?;
    writeln!(out, "wrote {} ({} bytes)", output.display(), archive.byte_len())?;
    writeln!(out, "original WPP          : {:>10} bytes", stats.raw.total())?;
    writeln!(
        out,
        "after dedup           : {:>10} bytes (x{:.2})",
        stats.after_dedup_bytes,
        stats.dedup_factor()
    )?;
    writeln!(
        out,
        "after DBB dictionaries: {:>10} bytes (x{:.2})",
        stats.after_dict_bytes,
        stats.dict_factor()
    )?;
    writeln!(
        out,
        "compacted TWPP traces : {:>10} bytes (x{:.2})",
        stats.ctwpp_trace_bytes,
        stats.twpp_factor()
    )?;
    writeln!(
        out,
        "total (DCG+traces+dic): {:>10} bytes -> overall x{:.1}",
        stats.total_compacted_bytes(),
        stats.overall_factor()
    )?;
    if show_stats {
        write_stage_stats(&stats, out)?;
    }
    let degraded_run = !stats.degraded.is_empty();
    let mut report = RunReport::new(
        "compact",
        if degraded_run {
            RunOutcome::Degraded
        } else {
            RunOutcome::Complete
        },
    );
    report.threads = resolved as u64;
    report.pipeline = Some(stats.to_section());
    report.budget = budget_section(&options.budget);
    obs_files.emit(&obs, report, out)?;
    if degraded_run {
        write!(out, "{}", stats.degraded)?;
        return Err(CliError::Degraded(format!(
            "degraded: {} function(s) failed during compaction and were \
             recorded in the archive footer; the remaining functions are \
             intact (see `twpp fsck {}`)",
            stats.degraded.len(),
            output.display()
        )));
    }
    Ok(())
}

/// The `--stats` tail of `twpp compact`: per-stage wall time plus the
/// worker utilisation of the parallel per-function stage.
fn write_stage_stats(stats: &PipelineStats, out: &mut Out<'_>) -> Result<(), CliError> {
    let ms = |nanos: u64| nanos as f64 / 1e6;
    let t = &stats.timings;
    writeln!(out, "stage timings:")?;
    writeln!(out, "  partition        : {:>9.3} ms", ms(t.partition_nanos))?;
    writeln!(out, "  dedup            : {:>9.3} ms", ms(t.dedup_nanos))?;
    writeln!(
        out,
        "  per-function     : {:>9.3} ms",
        ms(t.function_stage_nanos)
    )?;
    writeln!(
        out,
        "  DCG compression  : {:>9.3} ms",
        ms(t.dcg_compress_nanos)
    )?;
    writeln!(
        out,
        "  archive encode   : {:>9.3} ms",
        ms(t.archive_encode_nanos)
    )?;
    writeln!(out, "  total            : {:>9.3} ms", ms(t.total_nanos()))?;
    let w = &stats.workers;
    writeln!(
        out,
        "workers: {} thread{} over {} function{}",
        w.threads,
        if w.threads == 1 { "" } else { "s" },
        w.total_items(),
        if w.total_items() == 1 { "" } else { "s" },
    )?;
    for (id, items) in w.items_per_worker.iter().enumerate() {
        writeln!(out, "  worker {id:>3}: {items:>6} items")?;
    }
    Ok(())
}

/// The `ingest`-specific knobs, bundled so `cmd_ingest` stays below the
/// argument-count lint.
struct IngestFlags {
    seal_bytes: Option<u64>,
    seal_ms: Option<u64>,
    chunk_events: usize,
    durability: twpp::Durability,
    codec: twpp::Codec,
    threads: Option<usize>,
    limits: twpp::Limits,
    degrade: bool,
    retry: twpp::Retry,
}

/// `twpp ingest <dir> --from <in.wpp|->`: the crash-safe incremental
/// path. The input stream is fed in `--chunk-events` batches to a
/// resumable [`twpp::ingest::Compactor`]; if `<dir>` already holds
/// state from a killed run, ingestion resumes exactly where it stopped
/// and skips the prefix of the input that is already durable.
fn cmd_ingest(
    dir: &Path,
    from: &str,
    flags: IngestFlags,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let obs = obs_files.observer();
    let faults = twpp::FaultPlan::from_env();
    let budget = flags.limits.start();
    let opts = twpp::IngestOptions {
        seal_bytes: flags.seal_bytes.unwrap_or(1 << 20),
        seal_ms: flags.seal_ms,
        durability: flags.durability,
        threads: flags.threads,
        budget: budget.clone(),
        fail_fast: !flags.degrade,
        faults: faults.clone(),
        obs: obs.clone(),
        codec: flags.codec,
        retry: flags.retry,
    };
    let ingest_err = |e: twpp::IngestError| fail(format!("{}: {e}", dir.display()));
    let (mut compactor, resumed) = twpp::Compactor::open(dir, opts).map_err(ingest_err)?;
    let skip = compactor.accepted_events();
    if let Some(report) = &resumed {
        writeln!(
            out,
            "resumed {}: {} segment(s), {} sealed + {} replayed event(s){}{}",
            dir.display(),
            report.segments,
            report.sealed_events,
            report.wal_events,
            if report.wal_torn {
                ", torn WAL tail dropped"
            } else {
                ""
            },
            if report.orphans_removed > 0 {
                ", crash debris removed"
            } else {
                ""
            },
        )?;
    }
    if from == "-" {
        // Streaming: decode stdin incrementally, distinguishing a clean
        // footer/EOF (exit 0) from a mid-stream read error or malformed
        // stream (exit 4, after sealing what was durably acknowledged).
        stream_stdin_ingest(&mut compactor, &faults, flags.chunk_events, skip, dir, out)?;
    } else {
        let wpp = read_wpp(Path::new(from))?;
        let events = wpp.events();
        if skip > events.len() as u64 {
            return Err(fail(format!(
                "{}: directory already holds {skip} events but the input has \
                 only {}; refusing to resume against a different stream",
                dir.display(),
                events.len()
            )));
        }
        for piece in events[skip as usize..].chunks(flags.chunk_events) {
            compactor.feed(piece).map_err(ingest_err)?;
        }
    }
    let report = compactor.finish().map_err(ingest_err)?;
    writeln!(
        out,
        "wrote {} ({} events, {} segment(s), durability {})",
        report.path.display(),
        report.events,
        report.segments,
        flags.durability.as_str()
    )?;
    writeln!(out, "durability points: {}", faults.durability_points())?;
    let degraded_run = !report.stats.degraded.is_empty();
    let mut run = RunReport::new(
        "ingest",
        if degraded_run {
            RunOutcome::Degraded
        } else {
            RunOutcome::Complete
        },
    );
    run.threads = twpp::resolve_threads(flags.threads) as u64;
    run.pipeline = Some(report.stats.to_section());
    run.budget = budget_section(&budget);
    obs_files.emit(&obs, run, out)?;
    if degraded_run {
        return Err(CliError::Degraded(format!(
            "degraded: {} function(s) failed during the merge compaction \
             (see `twpp fsck {}`)",
            report.stats.degraded.len(),
            report.path.display()
        )));
    }
    Ok(())
}

/// The streaming stdin path of `twpp ingest --from -`.
///
/// Events are decoded incrementally with [`twpp_tracer::raw::WppStream`]
/// and fed as they arrive, so durability tracks the live stream instead
/// of waiting for EOF. A clean end (verified footer, or legacy EOF)
/// returns `Ok`; a mid-stream read failure or malformed stream is *not*
/// a clean end — the durably acknowledged prefix is sealed into a
/// segment and the command exits 4, leaving the directory resumable.
/// `TWPP_INJECT_READ_FAULT_AT=N` injects the read failure after N input
/// bytes for the crash harness.
fn stream_stdin_ingest(
    compactor: &mut twpp::ingest::Compactor,
    faults: &twpp::FaultPlan,
    chunk_events: usize,
    skip: u64,
    dir: &Path,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    use std::io::Read;

    /// Feeds `pending` through the resume-skip window and clears it.
    fn drain_pending(
        compactor: &mut twpp::ingest::Compactor,
        pending: &mut Vec<twpp_tracer::WppEvent>,
        fed: &mut u64,
        skip: u64,
        chunk_events: usize,
    ) -> Result<(), twpp::IngestError> {
        for piece in pending.chunks(chunk_events) {
            let offset = *fed;
            *fed += piece.len() as u64;
            let already = skip.saturating_sub(offset).min(piece.len() as u64) as usize;
            compactor.feed(&piece[already..])?;
        }
        pending.clear();
        Ok(())
    }

    let ingest_err = |e: twpp::IngestError| fail(format!("{}: {e}", dir.display()));
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut parser = twpp_tracer::raw::WppStream::new();
    let mut pending: Vec<twpp_tracer::WppEvent> = Vec::new();
    let mut fed = 0u64;
    let mut consumed = 0u64;
    let mut chunk = vec![0u8; 64 * 1024];
    let mut stream_failure: Option<String> = loop {
        let take = match faults.read_fault_at {
            Some(at) if consumed >= at => {
                break Some("injected mid-stream read fault (TWPP_INJECT_READ_FAULT_AT)".into());
            }
            Some(at) => ((at - consumed) as usize).clamp(1, chunk.len()),
            None => chunk.len(),
        };
        match input.read(&mut chunk[..take]) {
            Ok(0) => break None,
            Ok(n) => {
                consumed += n as u64;
                if let Err(e) = parser.push(&chunk[..n], &mut pending) {
                    break Some(format!("malformed stream after {consumed} byte(s): {e}"));
                }
                if pending.len() >= chunk_events {
                    drain_pending(compactor, &mut pending, &mut fed, skip, chunk_events)
                        .map_err(ingest_err)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => break Some(format!("read failed after {consumed} byte(s): {e}")),
        }
    };
    if stream_failure.is_none() {
        // Resolve the held-back footer words: verified or legacy-absent
        // is a clean end; torn or mismatched is a stream failure.
        match parser.finish(&mut pending) {
            Ok(_verified) => {
                drain_pending(compactor, &mut pending, &mut fed, skip, chunk_events)
                    .map_err(ingest_err)?;
            }
            Err(e) => stream_failure = Some(format!("stream ended badly: {e}")),
        }
    }
    if let Some(why) = stream_failure {
        // Decoded-but-unfed events were never acknowledged and are
        // dropped; everything fed is durable. Seal it so the prefix
        // survives as a segment and a rerun resumes exactly after it.
        compactor.seal().map_err(ingest_err)?;
        writeln!(
            out,
            "stream failed; sealed {} durable event(s) in {}",
            compactor.accepted_events(),
            dir.display()
        )?;
        return Err(fail(format!("<stdin>: {why}")));
    }
    if fed < skip {
        return Err(fail(format!(
            "{}: directory already holds {skip} events but the stream \
             carried only {fed}; refusing to resume against a different \
             stream",
            dir.display()
        )));
    }
    Ok(())
}

/// `serve-ingest` flags, bundled like [`IngestFlags`].
struct ServeFlags {
    listen: String,
    port_file: Option<PathBuf>,
    drain_after_ms: Option<u64>,
    seal_bytes: Option<u64>,
    seal_ms: Option<u64>,
    durability: twpp::Durability,
    codec: twpp::Codec,
    threads: Option<usize>,
    limits: twpp::Limits,
    degrade: bool,
    window_cap: Option<u64>,
    wedge_ms: Option<u64>,
    retry: twpp::Retry,
    tails: Vec<PathBuf>,
    admin: Option<String>,
    admin_port_file: Option<PathBuf>,
    log_out: Option<PathBuf>,
}

/// Size at which `--log-out` rotates to its `.1` sibling.
const LOG_ROTATE_BYTES: u64 = 8 << 20;

/// Slots in the daemon's crash flight recorder.
const FLIGHTREC_CAPACITY: usize = 512;

/// Set by the binary's SIGTERM/SIGINT handler; a running `serve-ingest`
/// polls it and drains gracefully.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Requests a graceful drain of a running `serve-ingest`. Only stores an
/// atomic flag, so it is safe to call from a signal handler.
pub fn request_shutdown() {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Whether [`request_shutdown`] has been called.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst)
}

/// `twpp serve-ingest <dir>`: the fault-tolerant streaming ingestion
/// daemon (DESIGN.md §17). Runs until SIGTERM/SIGINT, a client `Drain`
/// frame, or `--drain-after-ms`; then seals and merges every source.
/// Exit 0 when every source drained clean, 3 when some source was
/// failed in isolation, 4 on daemon-level failure.
fn cmd_serve_ingest(
    dir: &Path,
    flags: ServeFlags,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    // The telemetry plane needs real counters behind /metrics, so
    // --admin (like any --*-out artifact) switches the observer from
    // noop to collecting. Without it the daemon stays byte-identical
    // to an uninstrumented build.
    let telemetry = flags.admin.is_some() || flags.log_out.is_some();
    let obs = if telemetry && !obs_files.enabled() {
        Obs::collecting()
    } else {
        obs_files.observer()
    };
    let faults = twpp::FaultPlan::from_env();
    let listener = twpp::ingest::ServeListener::bind(&flags.listen)
        .map_err(|e| fail(format!("{}: {e}", flags.listen)))?;
    let addr = listener.local_addr();
    if let Some(p) = &flags.port_file {
        // The port file is how test harnesses learn an ephemeral port;
        // write it only once the socket actually listens.
        fs::write(p, &addr).map_err(|e| fail(format!("{}: {e}", p.display())))?;
    }
    let admin_listener = match &flags.admin {
        Some(spec) => {
            let l = twpp::ingest::ServeListener::bind(spec)
                .map_err(|e| fail(format!("{spec}: {e}")))?;
            let admin_addr = l.local_addr();
            if let Some(p) = &flags.admin_port_file {
                fs::write(p, &admin_addr).map_err(|e| fail(format!("{}: {e}", p.display())))?;
            }
            writeln!(out, "admin plane on {admin_addr} (/metrics /status /healthz)")?;
            Some(l)
        }
        None => None,
    };
    let log = match &flags.log_out {
        Some(p) => twpp::Logger::to_file(p, LOG_ROTATE_BYTES, twpp::LogLevel::Info)
            .map_err(|e| fail(format!("{}: {e}", p.display())))?,
        None => twpp::Logger::noop(),
    };
    // The flight recorder rides along with either telemetry surface; on
    // an injected-fault abort (TWPP_INJECT_KILL_AT) the gov abort hook
    // dumps it so even a crash leaves a black box in the serve dir.
    let flightrec = if telemetry {
        let rec = std::sync::Arc::new(twpp::FlightRecorder::new(FLIGHTREC_CAPACITY));
        let hook_rec = std::sync::Arc::clone(&rec);
        let hook_dir = dir.to_path_buf();
        let hook_log = log.clone();
        twpp::gov::set_abort_hook(Box::new(move || {
            hook_log.error("daemon aborting", &[]);
            match hook_rec.dump_to_dir(&hook_dir) {
                Ok(p) => eprintln!("flight recorder dumped to {}", p.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
        }));
        Some(rec)
    } else {
        None
    };
    writeln!(out, "listening on {addr} (drain with SIGTERM)")?;
    let shutdown = twpp::CancelToken::new();
    {
        let token = shutdown.clone();
        let deadline = flags.drain_after_ms;
        let started = std::time::Instant::now();
        std::thread::spawn(move || loop {
            if shutdown_requested()
                || deadline.is_some_and(|ms| started.elapsed().as_millis() as u64 >= ms)
            {
                token.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
    }
    let seal_bytes = flags.seal_bytes.unwrap_or(1 << 20);
    let opts = twpp::ingest::ServeOptions {
        seal_bytes,
        seal_ms: flags.seal_ms,
        durability: flags.durability,
        threads: flags.threads,
        limits: flags.limits,
        fail_fast: !flags.degrade,
        retry: flags.retry,
        window_cap_bytes: flags.window_cap.unwrap_or(4 * seal_bytes),
        wedge_ms: flags.wedge_ms.unwrap_or(10_000),
        faults: faults.clone(),
        obs: obs.clone(),
        codec: flags.codec,
        tails: flags.tails,
        log: log.clone(),
        flightrec: flightrec.clone(),
        ..twpp::ingest::ServeOptions::default()
    };
    // While the daemon runs, --report holds a live heartbeat: the same
    // schema-v1 run report with outcome "running" and a fresh metrics
    // snapshot, rewritten every second. The final report replaces it
    // after the drain.
    let heartbeat_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let heartbeat = obs_files.report_out.as_ref().map(|p| {
        let path = p.clone();
        let obs = obs.clone();
        let stop = std::sync::Arc::clone(&heartbeat_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let mut run = RunReport::new("serve-ingest", RunOutcome::Running);
                run.metrics = obs.snapshot();
                run.span_count = obs.span_count() as u64;
                let json = run.to_json();
                debug_assert!(
                    twpp::validate_report_json(&json).is_ok(),
                    "heartbeat report must satisfy its own schema"
                );
                fs::write(&path, json).ok();
                for _ in 0..100 {
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        })
    });
    let served = twpp::ingest::serve_with_admin(dir, listener, admin_listener, shutdown, opts);
    heartbeat_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = heartbeat {
        h.join().ok();
    }
    let report = served.map_err(|e| fail(format!("{}: {e}", dir.display())))?;
    writeln!(
        out,
        "drained: {} source(s), {} connection(s), {} frame(s), {} busy, {} quarantined",
        report.sources.len(),
        report.connections,
        report.frames,
        report.busy_responses,
        report.quarantined
    )?;
    let mut failed = 0u64;
    for s in &report.sources {
        match (&s.failed, &s.merged) {
            (Some(why), _) => {
                failed += 1;
                writeln!(out, "  {}: FAILED ({why}); directory left resumable", s.name)?;
            }
            (None, Some(path)) => writeln!(
                out,
                "  {}: {} event(s), {} segment(s) -> {}",
                s.name,
                s.events,
                s.segments,
                path.display()
            )?,
            (None, None) => writeln!(out, "  {}: no events; nothing to merge", s.name)?,
        }
    }
    writeln!(out, "durability points: {}", faults.durability_points())?;
    let run = RunReport::new(
        "serve-ingest",
        if failed == 0 {
            RunOutcome::Complete
        } else {
            RunOutcome::Degraded
        },
    );
    obs_files.emit(&obs, run, out)?;
    if failed > 0 {
        return Err(CliError::Degraded(format!(
            "{failed} source(s) failed in isolation; their directories under {} \
             remain resumable",
            dir.display()
        )));
    }
    Ok(())
}

/// `twpp net-feed <addr>`: stream a WPP file (or stdin) to a running
/// `serve-ingest` daemon. Resumes from the server's durable position
/// learned in the HELLO handshake, so rerunning after a daemon restart
/// or a dropped connection never duplicates or loses events.
fn cmd_net_feed(
    addr: &str,
    source: &str,
    from: &str,
    drain: bool,
    chunk_events: usize,
    retry: twpp::Retry,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let wpp = if from == "-" {
        let stdin = std::io::stdin();
        RawWpp::read_from(stdin.lock()).map_err(|e| fail(format!("<stdin>: {e}")))?
    } else {
        read_wpp(Path::new(from))?
    };
    let events = wpp.events();

    fn feed_client<S: std::io::Read + std::io::Write>(
        stream: S,
        source: &str,
        events: &[twpp_tracer::WppEvent],
        drain: bool,
        chunk_events: usize,
        retry: &twpp::Retry,
    ) -> Result<u64, twpp::net::NetError> {
        let mut client = twpp::net::Client::hello(stream, source)?;
        let skip = (client.accepted() as usize).min(events.len());
        for batch in events[skip..].chunks(chunk_events) {
            client.send_events(batch, retry)?;
        }
        let accepted = client.accepted();
        if drain {
            client.drain()?;
        }
        Ok(accepted)
    }

    let net_err = |e: twpp::net::NetError| fail(format!("{addr}: {e}"));
    let accepted = if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| fail(format!("{addr}: {e}")))?;
            feed_client(stream, source, &events, drain, chunk_events, &retry).map_err(net_err)?
        }
        #[cfg(not(unix))]
        {
            return Err(fail(format!(
                "unix sockets are not supported on this platform: {path}"
            )));
        }
    } else {
        let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
        let stream = std::net::TcpStream::connect(hostport)
            .map_err(|e| fail(format!("{addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        feed_client(stream, source, &events, drain, chunk_events, &retry).map_err(net_err)?
    };
    writeln!(
        out,
        "{addr}: source {source} at {accepted} durable event(s){}",
        if drain { ", drain requested" } else { "" }
    )?;
    Ok(())
}

/// Pulls a required field out of a `/status` object.
fn status_field<'a>(
    obj: &'a std::collections::BTreeMap<String, twpp::obs::Json>,
    key: &str,
) -> Result<&'a twpp::obs::Json, CliError> {
    obj.get(key)
        .ok_or_else(|| fail(format!("/status missing field `{key}`")))
}

/// A required numeric `/status` field, truncated to u64.
fn status_u64(
    obj: &std::collections::BTreeMap<String, twpp::obs::Json>,
    key: &str,
) -> Result<u64, CliError> {
    status_field(obj, key)?
        .as_num()
        .map(|n| n as u64)
        .ok_or_else(|| fail(format!("/status field `{key}` is not a number")))
}

/// `twpp status <addr>`: fetch `/status` from a daemon's admin plane and
/// render it as a per-source table (DESIGN.md §18). `--json` prints the
/// raw body after validating it; `--watch N` refreshes every N seconds
/// until interrupted.
fn cmd_status(
    addr: &str,
    json: bool,
    watch: Option<u64>,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    loop {
        let (code, body) =
            twpp::net::http_get(addr, "/status").map_err(|e| fail(format!("{addr}: {e}")))?;
        if code != 200 {
            return Err(fail(format!("{addr}: /status returned HTTP {code}")));
        }
        let doc = twpp::obs::parse_json(&body)
            .map_err(|e| fail(format!("{addr}: invalid /status JSON: {e}")))?;
        render_status(addr, &doc, &body, json, out)?;
        match watch {
            Some(secs) => {
                writeln!(out)?;
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            None => return Ok(()),
        }
    }
}

/// Validates one `/status` document against schema v1 and writes either
/// the raw JSON or the human table.
fn render_status(
    addr: &str,
    doc: &twpp::obs::Json,
    raw: &str,
    json: bool,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let obj = doc
        .as_obj()
        .ok_or_else(|| fail("/status body is not a JSON object".to_string()))?;
    let version = status_u64(obj, "status_schema_version")?;
    if version != twpp::ingest::STATUS_SCHEMA_VERSION {
        return Err(fail(format!(
            "/status schema v{version} is not the supported v{}",
            twpp::ingest::STATUS_SCHEMA_VERSION
        )));
    }
    // Both daemons share the admin plane; the `command` field says which
    // schema the rest of the document follows.
    let command = status_field(obj, "command")?
        .as_str()
        .ok_or_else(|| fail("/status field `command` is not a string".to_string()))?;
    if command == "serve" {
        return render_serve_status(addr, obj, raw, json, out);
    }
    let sources = status_field(obj, "sources")?
        .as_arr()
        .ok_or_else(|| fail("/status field `sources` is not an array".to_string()))?;
    if json {
        writeln!(out, "{raw}")?;
        return Ok(());
    }
    let draining = status_field(obj, "draining")?.as_bool().unwrap_or(false);
    let uptime_ms = status_u64(obj, "uptime_ms")?;
    writeln!(
        out,
        "serve-ingest on {addr}: up {:.1}s{}, {} connection(s), {} frame(s), {} busy, {} quarantined",
        uptime_ms as f64 / 1000.0,
        if draining { " (draining)" } else { "" },
        status_u64(obj, "connections_total")?,
        status_u64(obj, "frames_total")?,
        status_u64(obj, "busy_total")?,
        status_u64(obj, "quarantined_total")?,
    )?;
    if sources.is_empty() {
        writeln!(out, "  no sources yet")?;
        return Ok(());
    }
    writeln!(
        out,
        "  {:<16} {:>10} {:>8} {:>5} {:>8} {:>12}  state",
        "source", "durable", "window", "segs", "ev/s", "last seal"
    )?;
    for s in sources {
        let s = s
            .as_obj()
            .ok_or_else(|| fail("/status source entry is not an object".to_string()))?;
        let name = status_field(s, "name")?
            .as_str()
            .ok_or_else(|| fail("/status source `name` is not a string".to_string()))?;
        // last_seal_ms is milliseconds since daemon start, like uptime_ms.
        let last_seal = status_u64(s, "last_seal_ms")?;
        let seal_col = if last_seal == 0 {
            "never".to_owned()
        } else {
            format!("{:.1}s ago", uptime_ms.saturating_sub(last_seal) as f64 / 1000.0)
        };
        let failed = status_field(s, "failed")?.as_bool().unwrap_or(false);
        let state = if failed {
            let why = status_field(s, "failure")?.as_str().unwrap_or("unknown");
            format!("FAILED: {why}")
        } else {
            "ok".to_owned()
        };
        writeln!(
            out,
            "  {:<16} {:>10} {:>8} {:>5} {:>8.1} {:>12}  {state}",
            name,
            status_u64(s, "durable_events")?,
            status_u64(s, "window_events")?,
            status_u64(s, "segments")?,
            status_field(s, "events_per_sec")?.as_num().unwrap_or(0.0),
            seal_col,
        )?;
    }
    Ok(())
}

/// The `/status` renderer for the query fleet server's schema: request
/// accounting, both cache planes, and the per-tenant roster.
fn render_serve_status(
    addr: &str,
    obj: &std::collections::BTreeMap<String, twpp::obs::Json>,
    raw: &str,
    json: bool,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let archives = status_field(obj, "archives")?
        .as_arr()
        .ok_or_else(|| fail("/status field `archives` is not an array".to_string()))?;
    if json {
        writeln!(out, "{raw}")?;
        return Ok(());
    }
    let draining = status_field(obj, "draining")?.as_bool().unwrap_or(false);
    let uptime_ms = status_u64(obj, "uptime_ms")?;
    writeln!(
        out,
        "serve on {addr}: up {:.1}s{}, {} connection(s), {} request(s), \
         {} answer(s) ({} partial), {} error(s), {} busy, {} quarantined",
        uptime_ms as f64 / 1000.0,
        if draining { " (draining)" } else { "" },
        status_u64(obj, "connections_total")?,
        status_u64(obj, "requests_total")?,
        status_u64(obj, "answers_total")?,
        status_u64(obj, "partial_total")?,
        status_u64(obj, "errors_total")?,
        status_u64(obj, "busy_total")?,
        status_u64(obj, "quarantined_total")?,
    )?;
    for key in ["frame_cache", "summary_cache"] {
        let cache = status_field(obj, key)?
            .as_obj()
            .ok_or_else(|| fail(format!("/status field `{key}` is not an object")))?;
        let hits = status_u64(cache, "hits")?;
        let misses = status_u64(cache, "misses")?;
        let rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64 * 100.0
        };
        writeln!(
            out,
            "  {key}: {} byte(s) in {} entr{}, {hits} hit(s) / {misses} miss(es) \
             ({rate:.1}% hit rate), {} eviction(s)",
            status_u64(cache, "resident_bytes")?,
            status_u64(cache, "entries")?,
            if status_u64(cache, "entries")? == 1 { "y" } else { "ies" },
            status_u64(cache, "evictions")?,
        )?;
    }
    if archives.is_empty() {
        writeln!(out, "  no archives in the fleet")?;
    } else {
        writeln!(
            out,
            "  {:<24} {:>9} {:>9} {:>12}  state",
            "archive", "functions", "decoded", "bytes"
        )?;
        for a in archives {
            let a = a
                .as_obj()
                .ok_or_else(|| fail("/status archive entry is not an object".to_string()))?;
            let name = status_field(a, "name")?
                .as_str()
                .ok_or_else(|| fail("/status archive `name` is not a string".to_string()))?;
            let state = if status_field(a, "degraded")?.as_bool().unwrap_or(false) {
                "degraded"
            } else {
                "ok"
            };
            writeln!(
                out,
                "  {:<24} {:>9} {:>9} {:>12}  {state}",
                name,
                status_u64(a, "functions")?,
                status_u64(a, "decoded_functions")?,
                status_u64(a, "file_bytes")?,
            )?;
        }
    }
    let failures = status_field(obj, "open_failures")?
        .as_arr()
        .ok_or_else(|| fail("/status field `open_failures` is not an array".to_string()))?;
    for f in failures {
        let f = f
            .as_obj()
            .ok_or_else(|| fail("/status failure entry is not an object".to_string()))?;
        writeln!(
            out,
            "  UNREADABLE {}: {}",
            status_field(f, "name")?.as_str().unwrap_or("?"),
            status_field(f, "error")?.as_str().unwrap_or("?"),
        )?;
    }
    Ok(())
}

/// `twpp metrics-check <file-or-addr>`: strict Prometheus text-format
/// validation — of a `--metrics-out` file if the target names one, else
/// of `/metrics` fetched live from a daemon's admin address.
fn cmd_metrics_check(target: &str, out: &mut Out<'_>) -> Result<(), CliError> {
    let (origin, text) = if Path::new(target).is_file() {
        let text =
            fs::read_to_string(target).map_err(|e| fail(format!("{target}: {e}")))?;
        (target.to_owned(), text)
    } else {
        let (code, body) = twpp::net::http_get(target, "/metrics")
            .map_err(|e| fail(format!("{target}: {e}")))?;
        if code != 200 {
            return Err(fail(format!("{target}: /metrics returned HTTP {code}")));
        }
        (format!("{target} /metrics"), body)
    };
    let families = twpp::parse_prometheus_text(&text)
        .map_err(|e| fail(format!("{origin}: invalid Prometheus exposition: {e}")))?;
    let samples: usize = families.iter().map(|f| f.samples.len()).sum();
    writeln!(
        out,
        "{origin}: valid Prometheus exposition ({} famil{}, {samples} sample(s))",
        families.len(),
        if families.len() == 1 { "y" } else { "ies" }
    )?;
    Ok(())
}

fn cmd_info(path: &Path, out: &mut Out<'_>) -> Result<(), CliError> {
    let bytes = fs::read(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    if bytes.starts_with(b"TWPA") {
        let archive = TwppArchive::from_bytes(bytes).map_err(fail)?;
        writeln!(out, "TWPP archive, {} bytes", archive.byte_len())?;
        writeln!(out, "{} functions (most-called first):", archive.function_ids().len())?;
        writeln!(out, "{:>12} {:>10} {:>13}", "func", "calls", "unique paths")?;
        for func in archive.function_ids() {
            let record = archive.read_function(func).map_err(fail)?;
            let label = archive
                .function_name(func)
                .map(str::to_owned)
                .unwrap_or_else(|| func.as_u32().to_string());
            writeln!(
                out,
                "{:>12} {:>10} {:>13}",
                label,
                record.call_count,
                record.traces.len()
            )?;
        }
    } else {
        let wpp = RawWpp::read_from(&bytes[..]).map_err(fail)?;
        let sizes = wpp.size_breakdown();
        writeln!(out, "raw WPP, {} events ({} bytes)", wpp.event_count(), wpp.byte_len())?;
        writeln!(out, "  call structure: {} bytes", sizes.dcg_bytes)?;
        writeln!(out, "  block traces  : {} bytes", sizes.trace_bytes)?;
        let mut counts: Vec<_> = wpp.call_counts().into_iter().collect();
        counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        writeln!(out, "top functions by calls:")?;
        for (func, count) in counts.into_iter().take(10) {
            writeln!(out, "  {:>6}  {count}", func.as_u32())?;
        }
    }
    Ok(())
}

fn cmd_fsck(
    path: &Path,
    repair: bool,
    output: Option<&Path>,
    threads: Option<usize>,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    if path.is_dir() {
        return cmd_fsck_dir(path, obs_files, out);
    }
    let bytes = fs::read(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    let obs = obs_files.observer();
    let resolved = twpp::resolve_threads(threads);
    if bytes.starts_with(b"TWPA") {
        let (archive, report) = TwppArchive::recover_observed(&bytes, resolved, &obs)
            .map_err(|e| fail(format!("{}: {e}", path.display())))?;
        write!(out, "{report}")?;
        let outcome = if report.is_clean() {
            RunOutcome::Complete
        } else if report.is_degraded_only() {
            RunOutcome::Degraded
        } else {
            RunOutcome::Damaged
        };
        let mut run = RunReport::new("fsck", outcome);
        run.threads = resolved as u64;
        run.fsck = Some(report.to_section());
        obs_files.emit(&obs, run, out)?;
        if report.is_clean() {
            writeln!(out, "{}: clean", path.display())?;
            return Ok(());
        }
        if report.is_degraded_only() {
            let degraded = report.degraded_functions();
            for id in &degraded {
                writeln!(out, "degraded function {}: failed at compaction, no traces stored", id.as_u32())?;
            }
            return Err(CliError::Degraded(format!(
                "{}: archive is intact but degraded — {} function(s) failed \
                 during compaction and carry no traces; all other functions \
                 verify",
                path.display(),
                degraded.len()
            )));
        }
        if repair {
            let repaired = match output {
                Some(p) => p.to_path_buf(),
                None => path.with_extension("repaired.twpa"),
            };
            archive.save(&repaired).map_err(fail)?;
            writeln!(
                out,
                "wrote repaired archive {} ({} bytes, {} functions)",
                repaired.display(),
                archive.byte_len(),
                report.salvaged_functions()
            )?;
            return Ok(());
        }
        Err(fail(format!(
            "{}: archive is damaged ({} of {} functions salvageable); \
             rerun with --repair to write a clean copy",
            path.display(),
            report.salvaged_functions(),
            report.functions.len()
        )))
    } else {
        let salvage = RawWpp::read_salvage(&bytes[..])
            .map_err(|e| fail(format!("{}: {e}", path.display())))?;
        writeln!(
            out,
            "raw WPP: {} events, footer {}",
            salvage.wpp.event_count(),
            if salvage.footer_verified {
                "verified"
            } else {
                "missing or damaged"
            }
        )?;
        let outcome = if salvage.is_clean() {
            RunOutcome::Complete
        } else {
            RunOutcome::Damaged
        };
        let mut run = RunReport::new("fsck", outcome);
        run.threads = resolved as u64;
        obs_files.emit(&obs, run, out)?;
        if salvage.is_clean() {
            writeln!(out, "{}: clean", path.display())?;
            return Ok(());
        }
        writeln!(
            out,
            "dropped {} undecodable words ({} trailing bytes)",
            salvage.words_dropped, salvage.bytes_dropped
        )?;
        if repair {
            let repaired = match output {
                Some(p) => p.to_path_buf(),
                None => path.with_extension("repaired.wpp"),
            };
            let file = fs::File::create(&repaired).map_err(fail)?;
            let mut writer = std::io::BufWriter::new(file);
            salvage.wpp.write_to(&mut writer).map_err(fail)?;
            writer.into_inner().map_err(fail)?.sync_all().map_err(fail)?;
            writeln!(
                out,
                "wrote repaired trace {} ({} events)",
                repaired.display(),
                salvage.wpp.event_count()
            )?;
            return Ok(());
        }
        Err(fail(format!(
            "{}: trace is damaged; rerun with --repair to write the salvaged prefix",
            path.display()
        )))
    }
}

/// `twpp fsck` over an ingest directory: chain-validate the manifests,
/// salvage-verify every sealed segment, replay the WAL. Exit 0 when the
/// directory is pristine, 3 when it is resumable but carries crash
/// debris (torn WAL tail, orphan files), 4 when it cannot be resumed.
fn cmd_fsck_dir(dir: &Path, obs_files: &ObsFiles, out: &mut Out<'_>) -> Result<(), CliError> {
    let obs = obs_files.observer();
    let check = twpp::ingest::fsck_dir(dir, &obs)
        .map_err(|e| fail(format!("{}: {e}", dir.display())))?;
    writeln!(
        out,
        "ingest directory: {} segment(s), {} sealed + {} WAL event(s)",
        check.segments.len(),
        check.sealed_events,
        check.wal_events
    )?;
    for seg in &check.segments {
        writeln!(
            out,
            "  segment {:>3}: {:>8} events at offset {:>8}, depth {:>2} -> {:>2}, \
             salvage: {}{}",
            seg.meta.seq,
            seg.meta.events,
            seg.meta.accepted_before,
            seg.meta.depth_start,
            seg.meta.end_stack.len(),
            seg.report.strategy,
            if seg.report.is_clean() { "" } else { " (DAMAGED)" },
        )?;
    }
    if check.wal_skipped_records > 0 {
        writeln!(
            out,
            "  WAL: {} record(s) already sealed (resume will skip them)",
            check.wal_skipped_records
        )?;
    }
    if check.wal_torn {
        writeln!(
            out,
            "  WAL: torn tail, {} byte(s) (unacknowledged; resume drops it)",
            check.wal_torn_bytes
        )?;
    }
    if let Some(e) = &check.wal_error {
        writeln!(out, "  WAL: {e}")?;
    }
    for orphan in &check.orphans {
        writeln!(out, "  orphan: {} (crash debris; resume removes it)", orphan.display())?;
    }
    if let Some(msg) = &check.chain_error {
        writeln!(out, "  chain: {msg}")?;
    }
    let outcome = if check.is_clean() {
        RunOutcome::Complete
    } else if check.is_resumable() {
        RunOutcome::Degraded
    } else {
        RunOutcome::Damaged
    };
    let run = RunReport::new("fsck", outcome);
    obs_files.emit(&obs, run, out)?;
    if check.is_clean() {
        writeln!(out, "{}: clean", dir.display())?;
        return Ok(());
    }
    if check.is_resumable() {
        return Err(CliError::Degraded(format!(
            "{}: directory is resumable but carries crash debris; rerunning \
             `twpp ingest` will recover it",
            dir.display()
        )));
    }
    Err(fail(format!(
        "{}: ingest directory is not resumable{}",
        dir.display(),
        check
            .chain_error
            .as_deref()
            .map(|m| format!(" ({m})"))
            .unwrap_or_default()
    )))
}

fn cmd_query(
    path: &Path,
    func: &str,
    limits: twpp::Limits,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let budget = limits.start();
    let obs = obs_files.observer();
    // Numeric ids use the seek-read fast path; names need the header's
    // name table, so load the archive header first.
    let func = match func.parse::<u32>() {
        Ok(id) => FuncId::from_u32(id),
        Err(_) => {
            let bytes =
                fs::read(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
            let archive = TwppArchive::from_bytes(bytes).map_err(fail)?;
            archive
                .function_by_name(func)
                .ok_or_else(|| fail(format!("no function named `{func}` in archive")))?
        }
    };
    let record = {
        let _s = obs.span("query_read");
        match TwppArchive::read_function_from_file(path, func) {
            Ok(record) => record,
            Err(ArchiveError::DegradedFunction(id)) => {
                return Err(CliError::Degraded(format!(
                    "function {} failed during compaction and carries no traces \
                     in this archive (degraded entry)",
                    id.as_u32()
                )));
            }
            Err(e) => return Err(fail(e)),
        }
    };
    // The rendering is shared with the fleet server (twpp-server), so
    // `twpp query --remote` output is byte-identical by construction.
    let answer = {
        let _s = obs.span("query_expand");
        twpp_server::query_answer(func, &record, &budget).map_err(answer_err)?
    };
    if let twpp::net::AnswerData::Query { rendered, .. } = &answer.data {
        obs.counter(
            "twpp_cli_query_traces_printed_total",
            "Expanded path traces printed by `twpp query`",
        )
        .add(u64::from(*rendered));
    }
    write!(out, "{}", answer.text)?;
    emit_answer_report("query", &answer, &budget, obs_files, &obs, out)?;
    match twpp_server::degraded_message(&answer) {
        Some(msg) => Err(CliError::Degraded(msg)),
        None => Ok(()),
    }
}

/// The shared report/exit tail of every answer-producing command: emit
/// the run report, then map a partial answer to the degraded exit.
fn emit_answer_report(
    command: &'static str,
    answer: &twpp::net::Answer,
    budget: &twpp::Budget,
    obs_files: &ObsFiles,
    obs: &Obs,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let mut report = RunReport::new(
        command,
        if answer.complete {
            RunOutcome::Complete
        } else {
            RunOutcome::Degraded
        },
    );
    report.stop_reason = twpp_server::stop_reason(answer.stop_code).map(|r| r.as_str().to_owned());
    report.budget = budget_section(budget);
    obs_files.emit(obs, report, out)
}

/// Parses a numeric CLI operand used on the serve wire.
fn parse_wire_u32(raw: &str, what: &str) -> Result<u32, CliError> {
    raw.parse::<u32>()
        .map_err(|e| CliError::Usage(format!("bad {what} `{raw}`: {e}")))
}

/// Resolves a function operand (numeric id or embedded name) against a
/// lazily-opened archive.
fn resolve_func_lazy(la: &twpp::lazy::LazyArchive, func: &str) -> Result<FuncId, CliError> {
    match func.parse::<u32>() {
        Ok(id) => Ok(FuncId::from_u32(id)),
        Err(_) => la
            .function_by_name(func)
            .ok_or_else(|| fail(format!("no function named `{func}` in archive"))),
    }
}

/// Reads one function through a lazy open, mapping degraded entries to
/// the degraded exit exactly as `twpp query` does.
fn read_function_lazy(
    la: &twpp::lazy::LazyArchive,
    func: FuncId,
) -> Result<std::sync::Arc<twpp::FunctionRecord>, CliError> {
    match la.read_function(func) {
        Ok(record) => Ok(record),
        Err(ArchiveError::DegradedFunction(id)) => Err(CliError::Degraded(format!(
            "function {} failed during compaction and carries no traces \
             in this archive (degraded entry)",
            id.as_u32()
        ))),
        Err(e) => Err(fail(e)),
    }
}

/// The [`twpp::net::BudgetSpec`] equivalent of the CLI's governance
/// flags, for requests sent to a remote server.
fn budget_spec(limits: twpp::Limits) -> twpp::net::BudgetSpec {
    twpp::net::BudgetSpec {
        deadline_ms: limits.deadline_ms.unwrap_or(0),
        max_steps: limits.max_steps.unwrap_or(0),
    }
}

/// Maps a client-side failure to the CLI error contract: a refusal with
/// `ERR_DEGRADED` carries the same message and exit code as the local
/// degraded path; everything else is a hard failure.
fn client_err(e: twpp_server::ClientError) -> CliError {
    match e {
        twpp_server::ClientError::Refused { code, message }
            if code == twpp::net::ERR_DEGRADED =>
        {
            CliError::Degraded(message)
        }
        other => fail(other),
    }
}

/// The remote tail shared by the `--remote` commands: print the
/// server-rendered text verbatim, then reproduce the degraded exit.
fn finish_remote_answer(answer: &twpp::net::Answer, out: &mut Out<'_>) -> Result<(), CliError> {
    write!(out, "{}", answer.text)?;
    match twpp_server::degraded_message(answer) {
        Some(msg) => Err(CliError::Degraded(msg)),
        None => Ok(()),
    }
}

fn cmd_query_remote(
    addr: &str,
    archive: &str,
    func: &str,
    limits: twpp::Limits,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let func = func
        .parse::<u32>()
        .map_err(|_| CliError::Usage("remote queries need a numeric function id".into()))?;
    let mut client = twpp_server::Client::connect(addr).map_err(client_err)?;
    let answer = client
        .query(
            twpp::net::QueryReq { archive: archive.to_owned(), func },
            budget_spec(limits),
        )
        .map_err(client_err)?;
    finish_remote_answer(&answer, out)
}

#[allow(clippy::too_many_arguments)]
fn cmd_slice(
    path: &Path,
    func: &str,
    trace: u32,
    criterion: u32,
    limits: twpp::Limits,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let budget = limits.start();
    let obs = obs_files.observer();
    let la = twpp::lazy::LazyArchive::open_observed(path, obs.clone())
        .map_err(|e| fail(format!("{}: {e}", path.display())))?;
    let func = resolve_func_lazy(&la, func)?;
    let record = read_function_lazy(&la, func)?;
    let answer = {
        let _s = obs.span("slice_solve");
        twpp_server::slice_answer(func, &record, trace, criterion, &budget)
            .map_err(answer_err)?
    };
    write!(out, "{}", answer.text)?;
    emit_answer_report("slice", &answer, &budget, obs_files, &obs, out)?;
    match twpp_server::degraded_message(&answer) {
        Some(msg) => Err(CliError::Degraded(msg)),
        None => Ok(()),
    }
}

fn cmd_slice_remote(
    addr: &str,
    archive: &str,
    func: &str,
    trace: u32,
    criterion: u32,
    limits: twpp::Limits,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let func = func
        .parse::<u32>()
        .map_err(|_| CliError::Usage("remote queries need a numeric function id".into()))?;
    let mut client = twpp_server::Client::connect(addr).map_err(client_err)?;
    let answer = client
        .slice(
            twpp::net::SliceReq { archive: archive.to_owned(), func, trace, criterion },
            budget_spec(limits),
        )
        .map_err(client_err)?;
    finish_remote_answer(&answer, out)
}

#[allow(clippy::too_many_arguments)]
fn cmd_currency(
    path: &Path,
    func: &str,
    trace: u32,
    def: u32,
    use_: u32,
    redefs: &[u32],
    limits: twpp::Limits,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let budget = limits.start();
    let obs = obs_files.observer();
    let la = twpp::lazy::LazyArchive::open_observed(path, obs.clone())
        .map_err(|e| fail(format!("{}: {e}", path.display())))?;
    let func = resolve_func_lazy(&la, func)?;
    let record = read_function_lazy(&la, func)?;
    let answer = {
        let _s = obs.span("currency_solve");
        twpp_server::currency_answer(func, &record, trace, def, use_, redefs, &budget)
            .map_err(answer_err)?
    };
    write!(out, "{}", answer.text)?;
    emit_answer_report("currency", &answer, &budget, obs_files, &obs, out)?;
    match twpp_server::degraded_message(&answer) {
        Some(msg) => Err(CliError::Degraded(msg)),
        None => Ok(()),
    }
}

#[allow(clippy::too_many_arguments)]
fn cmd_currency_remote(
    addr: &str,
    archive: &str,
    func: &str,
    trace: u32,
    def: u32,
    use_: u32,
    redefs: &[u32],
    limits: twpp::Limits,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let func = func
        .parse::<u32>()
        .map_err(|_| CliError::Usage("remote queries need a numeric function id".into()))?;
    let mut client = twpp_server::Client::connect(addr).map_err(client_err)?;
    let answer = client
        .currency(
            twpp::net::CurrencyReq {
                archive: archive.to_owned(),
                func,
                trace,
                def_block: def,
                use_block: use_,
                redefs: redefs.to_vec(),
            },
            budget_spec(limits),
        )
        .map_err(client_err)?;
    finish_remote_answer(&answer, out)
}

/// Maps a local [`twpp_server::AnswerError`] to the CLI error contract.
fn answer_err(e: twpp_server::AnswerError) -> CliError {
    match e {
        twpp_server::AnswerError::Degraded(m) => CliError::Degraded(m),
        twpp_server::AnswerError::BadRequest(m) => CliError::Usage(m),
        other => fail(other),
    }
}

struct QueryServeFlags {
    listen: String,
    port_file: Option<PathBuf>,
    admin: Option<String>,
    admin_port_file: Option<PathBuf>,
    drain_after_ms: Option<u64>,
    default_deadline_ms: u64,
    rescan_ms: Option<u64>,
    max_inflight: Option<u64>,
    cache_answers: bool,
    frame_cache_bytes: Option<u64>,
    summary_cache_bytes: Option<u64>,
}

/// `twpp serve <dir>`: the multi-tenant query daemon over a fleet of
/// archives (DESIGN.md §19). Runs until SIGTERM/SIGINT or
/// `--drain-after-ms`, answering Query/Slice/Currency/ListArchives/Stat
/// over the framed protocol.
fn cmd_serve(
    dir: &Path,
    flags: QueryServeFlags,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    // Like serve-ingest, --admin needs live counters behind /metrics, so
    // it switches the observer from noop to collecting.
    let obs = if flags.admin.is_some() && !obs_files.enabled() {
        Obs::collecting()
    } else {
        obs_files.observer()
    };
    let listener = twpp::ingest::ServeListener::bind(&flags.listen)
        .map_err(|e| fail(format!("{}: {e}", flags.listen)))?;
    let addr = listener.local_addr();
    if let Some(p) = &flags.port_file {
        fs::write(p, &addr).map_err(|e| fail(format!("{}: {e}", p.display())))?;
    }
    let admin_listener = match &flags.admin {
        Some(spec) => {
            let l = twpp::ingest::ServeListener::bind(spec)
                .map_err(|e| fail(format!("{spec}: {e}")))?;
            let admin_addr = l.local_addr();
            if let Some(p) = &flags.admin_port_file {
                fs::write(p, &admin_addr).map_err(|e| fail(format!("{}: {e}", p.display())))?;
            }
            writeln!(out, "admin plane on {admin_addr} (/metrics /status /healthz)")?;
            Some(l)
        }
        None => None,
    };
    writeln!(out, "serving archives under {} on {addr}", dir.display())?;
    let shutdown = twpp::CancelToken::new();
    {
        let token = shutdown.clone();
        let deadline = flags.drain_after_ms;
        let started = std::time::Instant::now();
        std::thread::spawn(move || loop {
            if shutdown_requested()
                || deadline.is_some_and(|ms| started.elapsed().as_millis() as u64 >= ms)
            {
                token.cancel();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
    }
    let defaults = twpp_server::ServeOptions::default();
    let opts = twpp_server::ServeOptions {
        default_deadline_ms: flags.default_deadline_ms,
        rescan_ms: flags.rescan_ms.unwrap_or(defaults.rescan_ms),
        max_inflight: flags.max_inflight.unwrap_or(defaults.max_inflight),
        cache_answers: flags.cache_answers,
        frame_cache_bytes: flags.frame_cache_bytes.unwrap_or(defaults.frame_cache_bytes),
        summary_cache_bytes: flags
            .summary_cache_bytes
            .unwrap_or(defaults.summary_cache_bytes),
        obs: obs.clone(),
        ..defaults
    };
    let report = twpp_server::serve(dir, listener, admin_listener, opts, &shutdown)
        .map_err(|e| fail(format!("{}: {e}", dir.display())))?;
    writeln!(
        out,
        "drained: {} archive(s), {} connection(s), {} request(s), \
         {} answer(s) ({} partial), {} error(s), {} busy, {} quarantined",
        report.archives,
        report.connections,
        report.requests,
        report.answers,
        report.partial,
        report.errors,
        report.busy,
        report.quarantined
    )?;
    let run = RunReport::new("serve", RunOutcome::Complete);
    obs_files.emit(&obs, run, out)?;
    Ok(())
}

/// One client's share of the serve-bench hammer: per-request latencies
/// in nanoseconds, plus how many answers came back partial.
struct BenchSlice {
    latencies: Vec<u64>,
    partial: u64,
}

/// `twpp serve-bench <addr>`: hammer a running `twpp serve` daemon with
/// `--clients` concurrent connections issuing `--requests` queries each,
/// round-robin over every (archive, function) pair the fleet exposes,
/// and report client-side latency percentiles.
fn cmd_serve_bench(
    addr: &str,
    clients: usize,
    requests: usize,
    admin: Option<&str>,
    json: bool,
    limits: twpp::Limits,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    // Discover the target set once: every archive, probing low function
    // ids with a 1-step budget (cheap even on huge functions).
    let mut probe = twpp_server::Client::connect(addr).map_err(client_err)?;
    let archives = probe.list_archives().map_err(client_err)?;
    if archives.is_empty() {
        return Err(fail("server has no archives to bench against"));
    }
    let mut targets: Vec<(String, u32)> = Vec::new();
    for stat in &archives {
        for func in 0..16u32 {
            let req = twpp::net::QueryReq { archive: stat.name.clone(), func };
            let spec = twpp::net::BudgetSpec { deadline_ms: 0, max_steps: 1 };
            if probe.query(req, spec).is_ok() {
                targets.push((stat.name.clone(), func));
            }
        }
    }
    if targets.is_empty() {
        return Err(fail("no queryable functions found in the served fleet"));
    }
    drop(probe);
    let spec = budget_spec(limits);
    let slices: Vec<BenchSlice> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let targets = &targets;
            handles.push(scope.spawn(move || -> Result<BenchSlice, CliError> {
                let mut client = twpp_server::Client::connect(addr).map_err(client_err)?;
                let mut latencies = Vec::with_capacity(requests);
                let mut partial = 0u64;
                for r in 0..requests {
                    let (archive, func) = &targets[(c + r * clients) % targets.len()];
                    let req =
                        twpp::net::QueryReq { archive: archive.clone(), func: *func };
                    let started = std::time::Instant::now();
                    let answer = client.query(req, spec).map_err(client_err)?;
                    latencies.push(started.elapsed().as_nanos() as u64);
                    if !answer.complete {
                        partial += 1;
                    }
                }
                Ok(BenchSlice { latencies, partial })
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err(fail("bench client panicked"))))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let mut latencies: Vec<u64> = slices.iter().flat_map(|s| s.latencies.clone()).collect();
    let partial: u64 = slices.iter().map(|s| s.partial).sum();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let total = latencies.len() as u64;
    let (p50, p99) = (pct(0.50), pct(0.99));
    // Cache hit rates come from the admin plane when present.
    let hit_rates = admin.and_then(scrape_cache_hit_rates);
    if json {
        let mut w = twpp::obs::JsonWriter::new();
        w.begin_object();
        w.key("requests");
        w.uint(total);
        w.key("partial");
        w.uint(partial);
        w.key("p50_nanos");
        w.uint(p50);
        w.key("p99_nanos");
        w.uint(p99);
        match hit_rates {
            Some((frame, summary)) => {
                w.key("frame_cache_hit_rate");
                w.float(frame);
                w.key("summary_cache_hit_rate");
                w.float(summary);
            }
            None => {
                w.key("frame_cache_hit_rate");
                w.null();
                w.key("summary_cache_hit_rate");
                w.null();
            }
        }
        w.end_object();
        writeln!(out, "{}", w.finish())?;
        return Ok(());
    }
    writeln!(
        out,
        "{total} request(s) across {clients} client(s): p50 {:.3} ms, p99 {:.3} ms, {partial} partial",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6
    )?;
    if let Some((frame, summary)) = hit_rates {
        writeln!(
            out,
            "cache hit rates: frame {:.1}%, summary {:.1}%",
            frame * 100.0,
            summary * 100.0
        )?;
    }
    Ok(())
}

/// Reads `twpp_serve_*_cache_*_total` counters off a serve daemon's
/// `/metrics` endpoint and folds them into hit rates.
fn scrape_cache_hit_rates(admin: &str) -> Option<(f64, f64)> {
    let body = http_get(admin, "/metrics")?;
    let counter = |name: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0)
    };
    let rate = |hits: f64, misses: f64| if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 };
    Some((
        rate(
            counter("twpp_serve_frame_cache_hits_total"),
            counter("twpp_serve_frame_cache_misses_total"),
        ),
        rate(
            counter("twpp_serve_summary_cache_hits_total"),
            counter("twpp_serve_summary_cache_misses_total"),
        ),
    ))
}

/// Minimal HTTP GET against an admin-plane spec (`tcp:addr`,
/// `unix:path`, or a bare address).
fn http_get(spec: &str, path: &str) -> Option<String> {
    use std::io::Read;
    let mut stream: Box<dyn twpp::ingest::ConnStream> = match spec.split_once(':') {
        Some(("unix", p)) => Box::new(std::os::unix::net::UnixStream::connect(p).ok()?),
        Some(("tcp", addr)) => Box::new(std::net::TcpStream::connect(addr).ok()?),
        _ => Box::new(std::net::TcpStream::connect(spec).ok()?),
    };
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: twpp\r\nConnection: close\r\n\r\n").as_bytes())
        .ok()?;
    let mut body = String::new();
    stream.read_to_string(&mut body).ok()?;
    body.split_once("\r\n\r\n").map(|(_, b)| b.to_owned())
}

/// `twpp gen-fleet <dir>`: write `--archives` seeded workload archives
/// under a directory, cycling the five SPECint95 profiles. The result is
/// a ready-made fleet root for `twpp serve` tests and benches.
fn cmd_gen_fleet(
    dir: &Path,
    archives: usize,
    seed: u64,
    scale: f64,
    threads: Option<usize>,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    fs::create_dir_all(dir).map_err(|e| fail(format!("{}: {e}", dir.display())))?;
    let obs = Obs::noop();
    let resolved = twpp::resolve_threads(threads);
    let profiles = twpp_workloads::Profile::all();
    for i in 0..archives {
        let profile = profiles[i % profiles.len()];
        let mut spec = profile.spec().scaled(scale);
        spec.seed = seed.wrapping_add(i as u64);
        let workload = twpp_workloads::generate(&spec);
        let compacted = twpp::compact(&workload.wpp).map_err(fail)?;
        let names: std::collections::HashMap<FuncId, String> = workload
            .program
            .funcs()
            .map(|(id, f)| (id, f.name().to_owned()))
            .collect();
        let archive = TwppArchive::from_compacted_codec(
            &compacted,
            &names,
            resolved,
            &[],
            &obs,
            twpp::Codec::default(),
        );
        // The stem doubles as the archive's served name, so it must be a
        // valid_source_name: profile names only contain [a-z0-9.].
        let path = dir.join(format!("{}-s{i}.twpa", workload.name));
        archive
            .save_with(&path, twpp::Durability::Flush)
            .map_err(|e| fail(format!("{}: {e}", path.display())))?;
        writeln!(
            out,
            "wrote {} ({} functions, {} bytes)",
            path.display(),
            archive.function_ids().len(),
            archive.byte_len()
        )?;
    }
    writeln!(out, "fleet of {archives} archive(s) under {}", dir.display())?;
    Ok(())
}

/// Validates a `--report` file against the run-report JSON schema.
fn cmd_report_check(path: &Path, out: &mut Out<'_>) -> Result<(), CliError> {
    let text = fs::read_to_string(path).map_err(|e| fail(format!("{}: {e}", path.display())))?;
    twpp::validate_report_json(&text)
        .map_err(|e| fail(format!("{}: invalid run report: {e}", path.display())))?;
    writeln!(
        out,
        "{}: valid run report (schema v{})",
        path.display(),
        twpp::REPORT_SCHEMA_VERSION
    )?;
    Ok(())
}

/// The conformance battery: differential checks against naive reference
/// oracles, metamorphic relations, byte-identity across thread counts,
/// and auto-shrunk reproducers for anything that diverges.
fn cmd_selftest(
    seed: u64,
    cases: usize,
    max_events: usize,
    out_dir: Option<PathBuf>,
    threads: Option<usize>,
    obs_files: &ObsFiles,
    out: &mut Out<'_>,
) -> Result<(), CliError> {
    let out_dir = out_dir.unwrap_or_else(|| std::env::temp_dir().join("twpp-selftest"));
    // The byte-identity checks compare the pipeline against itself at
    // every listed thread count; `--threads N` pins the largest one.
    let thread_list: Vec<usize> = match threads {
        Some(1) => vec![1],
        Some(n) => vec![1, n],
        None => vec![1, 2, 4, 8],
    };
    let cfg = twpp_conformance::SelftestConfig {
        seed,
        cases,
        max_events,
        threads: thread_list,
        out_dir: Some(out_dir.clone()),
        shrink_budget: twpp_conformance::shrink::ShrinkBudget::default(),
    };
    let obs = obs_files.observer();
    let report = {
        let _s = obs.span("selftest");
        twpp_conformance::run_selftest(&cfg)
    };
    write!(out, "{}", report.summary())?;
    obs.counter("twpp_selftest_cases_total", "Selftest cases executed")
        .add(report.cases as u64);
    obs.counter(
        "twpp_selftest_check_runs_total",
        "Individual conformance-check executions",
    )
    .add(report.total_runs() as u64);
    obs.counter(
        "twpp_selftest_divergences_total",
        "Divergences found by the selftest battery",
    )
    .add(report.divergences.len() as u64);
    // The detailed battery report lives next to any reproducers; the
    // --report flag still emits the schema-v1 run report like every
    // other command.
    if fs::create_dir_all(&out_dir).is_ok() {
        let json_path = out_dir.join("selftest-report.json");
        if fs::write(&json_path, report.to_json()).is_ok() {
            writeln!(out, "wrote battery report {}", json_path.display())?;
        }
    }
    let run = RunReport::new(
        "selftest",
        if report.ok() {
            RunOutcome::Complete
        } else {
            RunOutcome::Damaged
        },
    );
    obs_files.emit(&obs, run, out)?;
    if !report.ok() {
        return Err(CliError::Failed(format!(
            "selftest: {} divergence(s) across {} cases; shrunk reproducers in {}",
            report.divergences.len(),
            report.cases,
            out_dir.display()
        )));
    }
    writeln!(
        out,
        "selftest OK: seed {seed}, {} cases, {} check executions, 0 divergences",
        report.cases,
        report.total_runs()
    )?;
    Ok(())
}

fn cmd_sequitur(path: &Path, out: &mut Out<'_>) -> Result<(), CliError> {
    let wpp = read_wpp(path)?;
    let grammar = twpp_sequitur::compress_wpp(&wpp);
    let rules = grammar.to_rules();
    let encoded = twpp_sequitur::encode(&rules);
    writeln!(out, "input : {:>10} bytes ({} events)", wpp.byte_len(), wpp.event_count())?;
    writeln!(
        out,
        "output: {:>10} bytes ({} rules, {} symbols) -> x{:.2}",
        encoded.len(),
        rules.len(),
        grammar.symbol_count(),
        wpp.byte_len() as f64 / encoded.len() as f64
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        let mut out = Vec::new();
        run_command(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf-8 output"))
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twpp-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_usage() {
        assert!(run(&["--help"]).unwrap().contains("usage:"));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["trace", "x.twl"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["compact", "x.wpp", "-o", "y", "--trace-out"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["compact", "x.wpp", "-o", "y", "--report"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn full_workflow_run_trace_compact_info_query() {
        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
             fn main() { let i = 0; while (i < 6) { f(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();

        // run
        let output = run(&["run", src]).unwrap();
        assert!(output.starts_with("0\n-1\n2\n-3\n4\n-5\n"), "{output}");

        // trace
        let wpp_path = dir.join("prog.wpp");
        let output = run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("wrote"));
        assert!(output.contains("main"));

        // info on the raw trace
        let output = run(&["info", wpp_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("raw WPP"));

        // compact
        let arc_path = dir.join("prog.twpa");
        let output = run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            arc_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(output.contains("overall"));

        // info on the archive
        let output = run(&["info", arc_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("TWPP archive"));

        // query function 0 (f): 6 calls, 2 unique paths.
        let output = run(&["query", arc_path.to_str().unwrap(), "0"]).unwrap();
        assert!(output.contains("6 calls"), "{output}");
        assert!(output.contains("2 unique"), "{output}");

        // compact with embedded names, then query by name.
        let named_path = dir.join("named.twpa");
        run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            named_path.to_str().unwrap(),
            "--program",
            src,
        ])
        .unwrap();
        let output = run(&["query", named_path.to_str().unwrap(), "f"]).unwrap();
        assert!(output.contains("6 calls"), "{output}");
        let output = run(&["info", named_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("main"), "{output}");
        assert!(matches!(
            run(&["query", named_path.to_str().unwrap(), "ghost"]),
            Err(CliError::Failed(_))
        ));

        // sequitur baseline
        let output = run(&["sequitur", wpp_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("rules"));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_detects_damage_and_repair_revalidates() {
        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { print(x); }
             fn main() { let i = 0; while (i < 4) { f(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();
        let wpp_path = dir.join("prog.wpp");
        run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();
        let arc_path = dir.join("prog.twpa");
        run(&["compact", wpp_path.to_str().unwrap(), "-o", arc_path.to_str().unwrap()]).unwrap();

        // Clean files verify.
        let output = run(&["fsck", arc_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("clean"), "{output}");
        let output = run(&["fsck", wpp_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("clean"), "{output}");

        // Flip one byte in the archive body: fsck must fail (exit non-zero
        // via CliError::Failed)…
        let mut bytes = fs::read(&arc_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let bad_path = dir.join("bad.twpa");
        fs::write(&bad_path, &bytes).unwrap();
        assert!(matches!(
            run(&["fsck", bad_path.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));

        // …and --repair must emit an archive that re-validates.
        let fixed_path = dir.join("fixed.twpa");
        let output = run(&[
            "fsck",
            bad_path.to_str().unwrap(),
            "--repair",
            "-o",
            fixed_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(output.contains("wrote repaired archive"), "{output}");
        let output = run(&["fsck", fixed_path.to_str().unwrap()]).unwrap();
        assert!(output.contains("clean"), "{output}");

        // Truncated raw trace: fsck fails, --repair salvages a clean prefix.
        let wpp_bytes = fs::read(&wpp_path).unwrap();
        let cut = dir.join("cut.wpp");
        fs::write(&cut, &wpp_bytes[..wpp_bytes.len() - 7]).unwrap();
        assert!(matches!(
            run(&["fsck", cut.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));
        let fixed_wpp = dir.join("fixed.wpp");
        run(&[
            "fsck",
            cut.to_str().unwrap(),
            "--repair",
            "-o",
            fixed_wpp.to_str().unwrap(),
        ])
        .unwrap();
        let output = run(&["fsck", fixed_wpp.to_str().unwrap()]).unwrap();
        assert!(output.contains("clean"), "{output}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_threads_and_stats_flags() {
        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
             fn g(x) { print(x * 2); }
             fn main() { let i = 0; while (i < 8) { f(i); g(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();
        let wpp_path = dir.join("prog.wpp");
        run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();

        // `--stats` adds the timing/worker tail, including the archive
        // encode stage.
        let arc1 = dir.join("one.twpa");
        let output = run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            arc1.to_str().unwrap(),
            "--threads",
            "1",
            "--stats",
        ])
        .unwrap();
        assert!(output.contains("stage timings:"), "{output}");
        assert!(output.contains("archive encode"), "{output}");
        assert!(output.contains("workers: 1 thread"), "{output}");

        // Different thread counts write byte-identical archives.
        let arc4 = dir.join("four.twpa");
        run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            arc4.to_str().unwrap(),
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(fs::read(&arc1).unwrap(), fs::read(&arc4).unwrap());

        // fsck accepts --threads too.
        let output = run(&["fsck", arc4.to_str().unwrap(), "--threads", "4"]).unwrap();
        assert!(output.contains("clean"), "{output}");

        // Bad values are usage errors.
        assert!(matches!(
            run(&["compact", wpp_path.to_str().unwrap(), "-o", "x", "--threads", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["compact", wpp_path.to_str().unwrap(), "-o", "x", "--threads"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["compact", wpp_path.to_str().unwrap(), "-o", "x", "--threads", "lots"]),
            Err(CliError::Usage(_))
        ));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governance_flags_and_exit_codes() {
        // Exit-code mapping.
        assert_eq!(exit_code(&CliError::Usage("u".into())), 2);
        assert_eq!(exit_code(&CliError::Degraded("d".into())), 3);
        assert_eq!(exit_code(&CliError::Failed("f".into())), 4);

        // Bad governance values are usage errors.
        assert!(matches!(
            run(&["query", "x.twpa", "0", "--deadline-ms"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["query", "x.twpa", "0", "--deadline-ms", "soon"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["query", "x.twpa", "0", "--max-events", "-3"]),
            Err(CliError::Usage(_))
        ));

        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
             fn main() { let i = 0; while (i < 6) { f(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();
        let wpp_path = dir.join("prog.wpp");
        run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();

        // A generous budget completes normally.
        let arc_path = dir.join("prog.twpa");
        run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            arc_path.to_str().unwrap(),
            "--deadline-ms",
            "60000",
        ])
        .unwrap();

        // An exhausted step budget stops compaction with a hard failure and
        // writes nothing.
        let never = dir.join("never.twpa");
        let err = run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            never.to_str().unwrap(),
            "--max-events",
            "1",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Failed(_)), "{err}");
        assert!(err.to_string().contains("no archive written"), "{err}");
        assert!(!never.exists());

        // A query with a tiny step budget truncates and reports Degraded.
        let err = run(&[
            "query",
            arc_path.to_str().unwrap(),
            "0",
            "--max-events",
            "1",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Degraded(_)), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");

        // An unconstrained query still completes.
        let output = run(&["query", arc_path.to_str().unwrap(), "0"]).unwrap();
        assert!(output.contains("path 0"), "{output}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_panic_degrades_compact_and_fsck_reports_it() {
        // `--degrade` + TWPP_INJECT_PANIC: the faulted function is skipped,
        // the archive is written, compact exits Degraded (3), query on the
        // failed function exits Degraded, and fsck reports intact-but-
        // degraded. Env vars are process-global, so resolve the fault plan
        // once here rather than racing other tests: this test drives
        // cmd_compact directly with a programmatic GovOptions.
        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { print(x); }
             fn g(x) { print(x + 1); }
             fn main() { let i = 0; while (i < 4) { f(i); g(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();
        let wpp_path = dir.join("prog.wpp");
        run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();

        let wpp = read_wpp(&wpp_path).unwrap();
        let options = GovOptions {
            threads: Some(1),
            budget: twpp::Budget::unlimited(),
            fail_fast: false,
            faults: twpp::FaultPlan::panic_on(FuncId::from_u32(0)),
            obs: Obs::noop(),
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (compacted, stats) = twpp::compact_governed(&wpp, &options).unwrap();
        std::panic::set_hook(prev);
        assert_eq!(stats.degraded.len(), 1);
        let names = std::collections::HashMap::new();
        let archive =
            TwppArchive::from_compacted_governed(&compacted, &names, 1, &stats.degraded.failed);
        let arc_path = dir.join("degraded.twpa");
        archive.save(&arc_path).unwrap();

        // Querying the failed function reports degradation, not a crash.
        let err = run(&["query", arc_path.to_str().unwrap(), "0"]).unwrap_err();
        assert!(matches!(err, CliError::Degraded(_)), "{err}");

        // The surviving function still answers.
        let output = run(&["query", arc_path.to_str().unwrap(), "1"]).unwrap();
        assert!(output.contains("4 calls"), "{output}");

        // fsck: intact but degraded -> Degraded, and lists the function.
        let mut out = Vec::new();
        let args = vec!["fsck".to_owned(), arc_path.to_str().unwrap().to_owned()];
        let err = run_command(&args, &mut out).unwrap_err();
        assert!(matches!(err, CliError::Degraded(_)), "{err}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("degraded function 0"), "{text}");

        // fsck --report on the degraded archive records the degraded
        // functions in the fsck section with outcome "degraded".
        let report_path = dir.join("fsck-report.json");
        let mut out = Vec::new();
        let args = vec![
            "fsck".to_owned(),
            arc_path.to_str().unwrap().to_owned(),
            "--report".to_owned(),
            report_path.to_str().unwrap().to_owned(),
        ];
        run_command(&args, &mut out).unwrap_err();
        let text = fs::read_to_string(&report_path).unwrap();
        twpp::validate_report_json(&text).unwrap();
        assert!(text.contains("\"outcome\":\"degraded\""), "{text}");
        assert!(text.contains("\"functions_degraded\":1"), "{text}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selftest_runs_green_and_is_deterministic() {
        let dir = temp_dir();
        let out_dir = dir.join("repros");
        let args = [
            "selftest",
            "--seed",
            "7",
            "--cases",
            "3",
            "--max-events",
            "300",
            "--threads",
            "2",
            "--out-dir",
            out_dir.to_str().unwrap(),
        ];
        let a = run(&args).unwrap();
        assert!(a.contains("selftest OK"), "{a}");
        assert!(a.contains("0 divergences"), "{a}");
        // The battery report is written and identical across runs.
        let json_path = out_dir.join("selftest-report.json");
        let first = fs::read_to_string(&json_path).unwrap();
        let b = run(&args).unwrap();
        assert_eq!(a, b, "selftest output must be deterministic");
        assert_eq!(first, fs::read_to_string(&json_path).unwrap());
        // No reproducers on a green run.
        assert!(
            !fs::read_dir(&out_dir)
                .unwrap()
                .filter_map(Result::ok)
                .any(|e| e.file_name().to_string_lossy().starts_with("repro-")),
            "green selftest must not write reproducers"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selftest_flag_validation_and_report() {
        assert!(matches!(
            run(&["selftest", "--seed"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["selftest", "--seed", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["selftest", "--cases", "0"]),
            Err(CliError::Usage(_))
        ));

        // --report emits a schema-valid run report with command selftest.
        let dir = temp_dir();
        let report_path = dir.join("selftest.json");
        let out_dir = dir.join("repros");
        let output = run(&[
            "selftest",
            "--seed",
            "3",
            "--cases",
            "2",
            "--max-events",
            "200",
            "--threads",
            "1",
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--report",
            report_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(output.contains("wrote run report"), "{output}");
        let text = fs::read_to_string(&report_path).unwrap();
        twpp::validate_report_json(&text).unwrap();
        assert!(text.contains("\"command\":\"selftest\""), "{text}");
        assert!(text.contains("\"outcome\":\"complete\""), "{text}");
        assert!(text.contains("twpp_selftest_cases_total"), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_input_values() {
        let dir = temp_dir();
        let src_path = dir.join("echo.twl");
        fs::write(&src_path, "fn main() { print(input() + input()); }").unwrap();
        let output = run(&["run", src_path.to_str().unwrap(), "--input", "20,22"]).unwrap();
        assert!(output.starts_with("42\n"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(matches!(
            run(&["run", "/nonexistent/file.twl"]),
            Err(CliError::Failed(_))
        ));
        let dir = temp_dir();
        let bad = dir.join("bad.twl");
        fs::write(&bad, "fn main() { let = ; }").unwrap();
        assert!(matches!(
            run(&["run", bad.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));
        assert!(matches!(
            run(&["query", bad.to_str().unwrap(), "zero"]),
            Err(CliError::Failed(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    /// A sink whose every write fails, standing in for a closed pipe.
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "broken pipe",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn print_failures_surface_as_cli_errors() {
        let args = vec!["--help".to_owned()];
        let err = run_command(&args, &mut BrokenPipe).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)), "{err:?}");
        assert!(err.to_string().contains("output write failed"), "{err}");
    }

    #[test]
    fn status_command_usage_and_unreachable_daemon() {
        assert!(matches!(run(&["status"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["status", "tcp:127.0.0.1:9", "--watch", "0"]),
            Err(CliError::Usage(_))
        ));
        // Nothing listens on the discard port: a clean Failed, not a hang.
        assert!(matches!(
            run(&["status", "tcp:127.0.0.1:9"]),
            Err(CliError::Failed(_))
        ));
        assert!(matches!(
            run(&["metrics-check", "tcp:127.0.0.1:9"]),
            Err(CliError::Failed(_))
        ));
    }

    #[test]
    fn admin_plane_status_and_metrics_check_through_the_cli() {
        let dir = temp_dir();
        let serve_dir = dir.join("serve");
        let port_file = dir.join("port");
        let admin_port_file = dir.join("admin-port");
        let log_path = dir.join("daemon.log");
        let args: Vec<String> = [
            "serve-ingest",
            serve_dir.to_str().unwrap(),
            "--listen",
            "tcp:127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--admin",
            "tcp:127.0.0.1:0",
            "--admin-port-file",
            admin_port_file.to_str().unwrap(),
            "--log-out",
            log_path.to_str().unwrap(),
            "--durability",
            "none",
            "--drain-after-ms",
            "2500",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let daemon = std::thread::spawn(move || {
            let mut out = Vec::new();
            run_command(&args, &mut out).map(|()| String::from_utf8(out).expect("utf-8"))
        });
        let admin_addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(addr) = fs::read_to_string(&admin_port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "admin port file never appeared");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };

        // The human table and the raw JSON both validate schema v1.
        let output = run(&["status", &admin_addr]).unwrap();
        assert!(output.contains("serve-ingest on"), "{output}");
        assert!(output.contains("no sources yet"), "{output}");
        let output = run(&["status", &admin_addr, "--json"]).unwrap();
        let doc = twpp::obs::parse_json(&output).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj.get("status_schema_version").and_then(|v| v.as_num()),
            Some(twpp::ingest::STATUS_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            obj.get("command").and_then(|v| v.as_str()),
            Some("serve-ingest")
        );

        // Live /metrics passes the strict checker end to end.
        let output = run(&["metrics-check", &admin_addr]).unwrap();
        assert!(output.contains("valid Prometheus exposition"), "{output}");

        let daemon_out = daemon.join().expect("daemon thread").unwrap();
        assert!(daemon_out.contains("admin plane on"), "{daemon_out}");
        assert!(daemon_out.contains("drained:"), "{daemon_out}");

        // The structured log is JSONL: every line parses, and the
        // daemon lifecycle events are present.
        let log_text = fs::read_to_string(&log_path).unwrap();
        assert!(!log_text.is_empty());
        for line in log_text.lines() {
            let rec = twpp::obs::parse_json(line).unwrap();
            let rec = rec.as_obj().unwrap();
            assert!(rec.contains_key("ts_ms"), "{line}");
            assert!(rec.contains_key("level"), "{line}");
            assert!(rec.contains_key("msg"), "{line}");
        }
        assert!(log_text.contains("\"msg\":\"daemon started\""), "{log_text}");
        assert!(log_text.contains("\"msg\":\"daemon drained\""), "{log_text}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_flags_write_trace_metrics_and_report() {
        let dir = temp_dir();
        let src_path = dir.join("prog.twl");
        fs::write(
            &src_path,
            "fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
             fn main() { let i = 0; while (i < 6) { f(i); i = i + 1; } }",
        )
        .unwrap();
        let src = src_path.to_str().unwrap();
        let wpp_path = dir.join("prog.wpp");
        run(&["trace", src, "-o", wpp_path.to_str().unwrap()]).unwrap();

        // Plain compact, then an instrumented one: the archives must be
        // byte-identical (observation never perturbs output).
        let plain = dir.join("plain.twpa");
        run(&["compact", wpp_path.to_str().unwrap(), "-o", plain.to_str().unwrap()]).unwrap();
        let observed = dir.join("observed.twpa");
        let trace_out = dir.join("run.json");
        let metrics_out = dir.join("run.prom");
        let report_out = dir.join("report.json");
        let output = run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            observed.to_str().unwrap(),
            "--trace-out",
            trace_out.to_str().unwrap(),
            "--metrics-out",
            metrics_out.to_str().unwrap(),
            "--report",
            report_out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(output.contains("wrote trace events"), "{output}");
        assert!(output.contains("wrote metrics"), "{output}");
        assert!(output.contains("wrote run report"), "{output}");
        assert_eq!(fs::read(&plain).unwrap(), fs::read(&observed).unwrap());

        // The trace file is loadable Chrome trace-event JSON with the
        // pipeline spans.
        let trace_text = fs::read_to_string(&trace_out).unwrap();
        let doc = twpp::obs::parse_json(&trace_text).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert!(!events.is_empty());
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"compact"), "{names:?}");
        assert!(names.contains(&"archive_encode"), "{names:?}");

        // The metrics file is Prometheus text exposition.
        let prom = fs::read_to_string(&metrics_out).unwrap();
        assert!(
            prom.contains("# TYPE twpp_core_events_processed_total counter"),
            "{prom}"
        );
        assert!(prom.contains("twpp_core_frames_encoded_total"), "{prom}");

        // metrics-check accepts the emitted exposition…
        let output = run(&["metrics-check", metrics_out.to_str().unwrap()]).unwrap();
        assert!(output.contains("valid Prometheus exposition"), "{output}");
        // …and rejects a malformed one (TYPE before HELP).
        let bad_prom = dir.join("bad.prom");
        fs::write(&bad_prom, "# TYPE x counter\n# HELP x late\nx 1\n").unwrap();
        assert!(matches!(
            run(&["metrics-check", bad_prom.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));

        // The report validates against the schema and carries the
        // pipeline section with the archive_encode timing filled in.
        let report_text = fs::read_to_string(&report_out).unwrap();
        twpp::validate_report_json(&report_text).unwrap();
        assert!(report_text.contains("\"command\":\"compact\""), "{report_text}");
        assert!(report_text.contains("\"archive_encode\":"), "{report_text}");

        // report-check accepts it…
        let output = run(&["report-check", report_out.to_str().unwrap()]).unwrap();
        assert!(output.contains("valid run report"), "{output}");

        // …and rejects garbage and schema violations.
        let junk = dir.join("junk.json");
        fs::write(&junk, "{\"schema_version\":999}").unwrap();
        assert!(matches!(
            run(&["report-check", junk.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));
        let notjson = dir.join("notjson.json");
        fs::write(&notjson, "not json at all").unwrap();
        assert!(matches!(
            run(&["report-check", notjson.to_str().unwrap()]),
            Err(CliError::Failed(_))
        ));

        // fsck + query also emit schema-valid reports.
        let fsck_report = dir.join("fsck.json");
        run(&[
            "fsck",
            observed.to_str().unwrap(),
            "--report",
            fsck_report.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&fsck_report).unwrap();
        twpp::validate_report_json(&text).unwrap();
        assert!(text.contains("\"command\":\"fsck\""), "{text}");
        assert!(text.contains("\"outcome\":\"complete\""), "{text}");

        let query_report = dir.join("query.json");
        run(&[
            "query",
            observed.to_str().unwrap(),
            "0",
            "--report",
            query_report.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&query_report).unwrap();
        twpp::validate_report_json(&text).unwrap();
        assert!(text.contains("\"command\":\"query\""), "{text}");
        assert!(
            text.contains("twpp_cli_query_traces_printed_total"),
            "{text}"
        );

        // A budget-stopped compact still writes a "stopped" report.
        let stopped_report = dir.join("stopped.json");
        let never = dir.join("never.twpa");
        let err = run(&[
            "compact",
            wpp_path.to_str().unwrap(),
            "-o",
            never.to_str().unwrap(),
            "--max-events",
            "1",
            "--report",
            stopped_report.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Failed(_)), "{err}");
        let text = fs::read_to_string(&stopped_report).unwrap();
        twpp::validate_report_json(&text).unwrap();
        assert!(text.contains("\"outcome\":\"stopped\""), "{text}");
        assert!(text.contains("\"stop_reason\":\"step_limit\""), "{text}");

        fs::remove_dir_all(&dir).ok();
    }
}
