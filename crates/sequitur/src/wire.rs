//! Serialization of Sequitur grammars, used to measure the "read" half of
//! Table 5's extraction times.

use std::error::Error;
use std::fmt;

use crate::grammar::Sym;

/// Rule references use the `0b11` top-bit tag, which the WPP event
/// encoding never produces (tags are `00` block, `01` enter, `10` exit).
const NT_TAG: u32 = 0b11 << 30;
const MAGIC: [u8; 4] = *b"SQTR";

/// Errors produced while decoding a serialized grammar.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Missing `SQTR` magic.
    BadMagic,
    /// The stream ended early or is not a whole number of words.
    Truncated,
    /// A rule reference points past the rule table.
    BadRuleRef(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("missing SQTR magic"),
            WireError::Truncated => f.write_str("truncated grammar stream"),
            WireError::BadRuleRef(r) => write!(f, "rule reference {r} out of range"),
        }
    }
}

impl Error for WireError {}

/// Serializes dense rules to bytes: magic, rule count, then per rule a
/// length word and the body (terminals verbatim, rule refs with the high
/// bit set).
///
/// # Panics
///
/// Panics if a terminal carries the reserved `0b11` top-bit tag (WPP event
/// words never do) or there are more than `2^30` rules.
pub fn encode(rules: &[Vec<Sym>]) -> Vec<u8> {
    let mut words: Vec<u32> = Vec::with_capacity(1 + rules.len());
    words.push(rules.len() as u32);
    for body in rules {
        words.push(u32::try_from(body.len()).expect("rule body exceeds u32"));
        for s in body {
            words.push(match *s {
                Sym::T(t) => {
                    assert!(t & NT_TAG != NT_TAG, "terminal uses the rule-reference tag");
                    t
                }
                Sym::N(r) => {
                    assert!(r & NT_TAG == 0, "too many rules");
                    r | NT_TAG
                }
            });
        }
    }
    let mut bytes = Vec::with_capacity(4 + words.len() * 4);
    bytes.extend_from_slice(&MAGIC);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Decodes a grammar serialized with [`encode`].
///
/// # Errors
///
/// Returns a [`WireError`] for malformed input.
pub fn decode(bytes: &[u8]) -> Result<Vec<Vec<Sym>>, WireError> {
    if bytes.len() < 4 || bytes[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let body = &bytes[4..];
    if !body.len().is_multiple_of(4) {
        return Err(WireError::Truncated);
    }
    let words: Vec<u32> = body
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut pos = 0usize;
    let take = |pos: &mut usize| -> Result<u32, WireError> {
        let w = *words.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        Ok(w)
    };
    let n_rules = take(&mut pos)? as usize;
    // Counts are untrusted input: clamp pre-allocations to the stream size.
    let mut rules = Vec::with_capacity(n_rules.min(words.len()));
    for _ in 0..n_rules {
        let len = take(&mut pos)? as usize;
        let mut body = Vec::with_capacity(len.min(words.len() - pos + 1));
        for _ in 0..len {
            let w = take(&mut pos)?;
            body.push(if w & NT_TAG == NT_TAG {
                let r = w & !NT_TAG;
                if r as usize >= n_rules {
                    return Err(WireError::BadRuleRef(r));
                }
                Sym::N(r)
            } else {
                Sym::T(w)
            });
        }
        rules.push(body);
    }
    if pos != words.len() {
        return Err(WireError::Truncated);
    }
    Ok(rules)
}

/// Serialized size in bytes of a grammar.
pub fn encoded_size(rules: &[Vec<Sym>]) -> usize {
    4 + (1 + rules.len() + rules.iter().map(Vec::len).sum::<usize>()) * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;

    #[test]
    fn encode_decode_round_trip() {
        let input: Vec<u32> = (0..500u32).map(|i| i % 9 + 1).collect();
        let rules = Grammar::build(&input).to_rules();
        let bytes = encode(&rules);
        assert_eq!(bytes.len(), encoded_size(&rules));
        assert_eq!(decode(&bytes).unwrap(), rules);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(decode(b"XXXX"), Err(WireError::BadMagic));
        let rules = Grammar::build(&[1, 2, 3, 1, 2, 3]).to_rules();
        let bytes = encode(&rules);
        for cut in 4..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err());
        }
        // A bogus rule reference.
        let mut bad = encode(&[vec![Sym::N(0)]]);
        let w = (5u32 | (0b11 << 30)).to_le_bytes();
        let n = bad.len();
        bad[n - 4..].copy_from_slice(&w);
        assert_eq!(decode(&bad), Err(WireError::BadRuleRef(5)));
    }
}
