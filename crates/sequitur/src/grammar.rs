//! The Sequitur grammar inference algorithm (Nevill-Manning & Witten),
//! operating on a stream of `u32` symbols.
//!
//! Sequitur maintains two invariants while consuming the input:
//!
//! * **digram uniqueness** — no pair of adjacent symbols appears more than
//!   once in the grammar (non-overlapping);
//! * **rule utility** — every rule other than the start rule is referenced
//!   at least twice.
//!
//! The result is a context-free grammar generating exactly one string: the
//! input. Larus (PLDI 1999) compressed whole program paths this way; the
//! TWPP paper uses it as the baseline of its Table 5 comparison.

use std::collections::HashMap;

/// A grammar symbol: a terminal word or a reference to a rule.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// A terminal input word.
    T(u32),
    /// A reference to grammar rule `r`.
    N(u32),
}

/// Sentinel for "no link yet" on freshly created nodes.
const NONE: usize = usize::MAX;

#[derive(Copy, Clone, Debug)]
struct Node {
    sym: Sym,
    prev: usize,
    next: usize,
    /// `Some(rule)` marks the guard node of that rule's circular list.
    guard_of: Option<u32>,
    alive: bool,
}

#[derive(Copy, Clone, Debug)]
struct Rule {
    guard: usize,
    refs: u32,
    alive: bool,
}

/// A Sequitur grammar. Build one with [`Grammar::build`], or incrementally
/// with [`Grammar::new`] + [`Grammar::push`].
#[derive(Clone, Debug)]
pub struct Grammar {
    nodes: Vec<Node>,
    rules: Vec<Rule>,
    digrams: HashMap<(Sym, Sym), usize>,
}

impl Grammar {
    /// Creates an empty grammar (start rule only).
    pub fn new() -> Grammar {
        let mut g = Grammar {
            nodes: Vec::new(),
            rules: Vec::new(),
            digrams: HashMap::new(),
        };
        g.new_rule();
        g
    }

    /// Runs Sequitur over `input`.
    pub fn build(input: &[u32]) -> Grammar {
        let mut g = Grammar::new();
        for &t in input {
            g.push(t);
        }
        g
    }

    /// Appends one terminal to the input string.
    pub fn push(&mut self, t: u32) {
        let guard = self.rules[0].guard;
        let last = self.nodes[guard].prev;
        let n = self.insert_after(last, Sym::T(t));
        if !self.is_guard(last) {
            self.check(self.nodes[n].prev);
        }
    }

    // ----- structural primitives -------------------------------------

    fn new_node(&mut self, sym: Sym) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            sym,
            prev: NONE,
            next: NONE,
            guard_of: None,
            alive: true,
        });
        idx
    }

    fn new_rule(&mut self) -> u32 {
        let r = self.rules.len() as u32;
        let guard = self.new_node(Sym::T(0));
        self.nodes[guard].guard_of = Some(r);
        self.nodes[guard].prev = guard;
        self.nodes[guard].next = guard;
        self.rules.push(Rule {
            guard,
            refs: 0,
            alive: true,
        });
        r
    }

    fn is_guard(&self, i: usize) -> bool {
        self.nodes[i].guard_of.is_some()
    }

    fn digram_key(&self, first: usize) -> Option<(Sym, Sym)> {
        if first == NONE {
            return None;
        }
        let second = self.nodes[first].next;
        if second == NONE || self.is_guard(first) || self.is_guard(second) {
            None
        } else {
            Some((self.nodes[first].sym, self.nodes[second].sym))
        }
    }

    /// Removes the digram starting at `first` from the index if the index
    /// points at `first`.
    fn delete_digram(&mut self, first: usize) {
        if let Some(key) = self.digram_key(first) {
            if self.digrams.get(&key) == Some(&first) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Links `left -> right`, maintaining the digram index (including the
    /// canonical triple repairs for runs of equal symbols).
    fn join(&mut self, left: usize, right: usize) {
        if self.nodes[left].next != NONE {
            self.delete_digram(left);
            // Triple repair (canonical "aaa" handling): if `right` or
            // `left` sits in a run of equal symbols, re-point the index at
            // the copy whose digram survives the relink.
            let (rp, rn) = (self.nodes[right].prev, self.nodes[right].next);
            if rp != NONE
                && rn != NONE
                && !self.is_guard(right)
                && !self.is_guard(rp)
                && !self.is_guard(rn)
                && self.nodes[right].sym == self.nodes[rp].sym
                && self.nodes[right].sym == self.nodes[rn].sym
            {
                let key = (self.nodes[right].sym, self.nodes[right].sym);
                self.digrams.insert(key, right);
            }
            let (lp, ln) = (self.nodes[left].prev, self.nodes[left].next);
            if lp != NONE
                && ln != NONE
                && !self.is_guard(left)
                && !self.is_guard(lp)
                && !self.is_guard(ln)
                && self.nodes[left].sym == self.nodes[ln].sym
                && self.nodes[left].sym == self.nodes[lp].sym
            {
                let key = (self.nodes[left].sym, self.nodes[left].sym);
                self.digrams.insert(key, lp);
            }
        }
        self.nodes[left].next = right;
        self.nodes[right].prev = left;
    }

    fn insert_after(&mut self, after: usize, sym: Sym) -> usize {
        let n = self.new_node(sym);
        if let Sym::N(r) = sym {
            self.rules[r as usize].refs += 1;
        }
        let old_next = self.nodes[after].next;
        self.join(n, old_next);
        self.join(after, n);
        n
    }

    /// Unlinks and kills a symbol node, maintaining digram index and rule
    /// reference counts.
    fn delete_node(&mut self, i: usize) {
        debug_assert!(self.nodes[i].alive && !self.is_guard(i));
        self.delete_digram(i);
        let (p, n) = (self.nodes[i].prev, self.nodes[i].next);
        self.join(p, n);
        if let Sym::N(r) = self.nodes[i].sym {
            self.rules[r as usize].refs -= 1;
        }
        self.nodes[i].alive = false;
    }

    // ----- the Sequitur invariants ------------------------------------

    /// Ensures digram uniqueness for the digram beginning at `first`.
    /// Returns `true` if the grammar changed.
    fn check(&mut self, first: usize) -> bool {
        let Some(key) = self.digram_key(first) else {
            return false;
        };
        match self.digrams.get(&key).copied() {
            None => {
                self.digrams.insert(key, first);
                false
            }
            Some(found) if found == first => false,
            // Stale entry (its digram no longer matches): repair in place.
            Some(found)
                if !self.nodes[found].alive || self.digram_key(found) != Some(key) =>
            {
                self.digrams.insert(key, first);
                false
            }
            // Overlapping occurrence (e.g. in "aaa"): leave it alone.
            Some(found)
                if self.nodes[found].next == first || self.nodes[first].next == found =>
            {
                false
            }
            Some(found) => {
                self.handle_match(first, found);
                true
            }
        }
    }

    /// Both `newly` and `found` start the same digram at distinct,
    /// non-overlapping positions.
    fn handle_match(&mut self, newly: usize, found: usize) {
        let found_prev = self.nodes[found].prev;
        let found_second = self.nodes[found].next;
        let found_after = self.nodes[found_second].next;
        let rule = if self.is_guard(found_prev)
            && self.is_guard(found_after)
            && found_prev == found_after
        {
            // The found occurrence is exactly an existing rule's body.
            self.nodes[found_prev].guard_of.expect("guard node")
        } else {
            // Create a new rule for the digram.
            let r = self.new_rule();
            let guard = self.rules[r as usize].guard;
            let (s1, s2) = (self.nodes[found].sym, self.nodes[found_second].sym);
            let a = self.insert_after(guard, s1);
            let _b = self.insert_after(a, s2);
            // Replace the found occurrence first, then record the body
            // digram (replacing first avoids matching the body with it).
            self.substitute(found, r);
            self.digrams.insert((s1, s2), a);
            r
        };
        self.substitute(newly, rule);
        // Rule utility: substitution may have dropped a body symbol's rule
        // to a single reference; inline it.
        let guard = self.rules[rule as usize].guard;
        let first_body = self.nodes[guard].next;
        if let Sym::N(r) = self.nodes[first_body].sym {
            if self.rules[r as usize].refs == 1 {
                self.expand(first_body, r);
            }
        }
        let guard = self.rules[rule as usize].guard;
        let last_body = self.nodes[guard].prev;
        if !self.is_guard(last_body) {
            if let Sym::N(r) = self.nodes[last_body].sym {
                if self.rules[r as usize].refs == 1 {
                    self.expand(last_body, r);
                }
            }
        }
    }

    /// Replaces the digram starting at `first` with a reference to `rule`.
    fn substitute(&mut self, first: usize, rule: u32) {
        let second = self.nodes[first].next;
        let p = self.nodes[first].prev;
        self.delete_node(first);
        self.delete_node(second);
        let m = self.insert_after(p, Sym::N(rule));
        if !self.check(p) {
            self.check(m);
        }
    }

    /// Inlines rule `r` (referenced exactly once) at its occurrence `at`.
    fn expand(&mut self, at: usize, r: u32) {
        debug_assert_eq!(self.nodes[at].sym, Sym::N(r));
        debug_assert_eq!(self.rules[r as usize].refs, 1);
        let left = self.nodes[at].prev;
        let right = self.nodes[at].next;
        let guard = self.rules[r as usize].guard;
        let body_first = self.nodes[guard].next;
        let body_last = self.nodes[guard].prev;
        // Remove the occurrence (without touching r's refcount bookkeeping
        // beyond the decrement in delete_node).
        self.delete_digram(at);
        self.delete_digram(left);
        self.nodes[at].alive = false;
        self.rules[r as usize].refs -= 1;
        self.rules[r as usize].alive = false;
        self.nodes[guard].alive = false;
        if self.is_guard(body_first) {
            // Empty body (cannot happen for digram-built rules).
            self.join(left, right);
            return;
        }
        self.nodes[left].next = body_first;
        self.nodes[body_first].prev = left;
        self.nodes[body_last].next = right;
        self.nodes[right].prev = body_last;
        // Record the new junction digram (canonical behaviour).
        if let Some(key) = self.digram_key(body_last) {
            self.digrams.insert(key, body_last);
        }
        if !self.check(left) {
            // The left junction may itself form a duplicate digram.
        }
    }

    // ----- read-side API ----------------------------------------------

    /// Number of live rules (including the start rule).
    pub fn rule_count(&self) -> usize {
        self.rules.iter().filter(|r| r.alive).count()
    }

    /// Total number of symbols across all live rule bodies — the grammar
    /// size Sequitur papers report.
    pub fn symbol_count(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.alive)
            .map(|r| self.body_len(r.guard))
            .sum()
    }

    fn body_len(&self, guard: usize) -> usize {
        let mut n = 0;
        let mut cur = self.nodes[guard].next;
        while cur != guard {
            n += 1;
            cur = self.nodes[cur].next;
        }
        n
    }

    /// Extracts the rules as dense vectors: index 0 is the start rule.
    /// Rule references in the result are re-numbered densely.
    pub fn to_rules(&self) -> Vec<Vec<Sym>> {
        let mut dense = vec![u32::MAX; self.rules.len()];
        let mut count = 0u32;
        for (i, r) in self.rules.iter().enumerate() {
            if r.alive {
                dense[i] = count;
                count += 1;
            }
        }
        let mut out = Vec::with_capacity(count as usize);
        for r in self.rules.iter().filter(|r| r.alive) {
            let mut body = Vec::new();
            let mut cur = self.nodes[r.guard].next;
            while cur != r.guard {
                body.push(match self.nodes[cur].sym {
                    Sym::T(t) => Sym::T(t),
                    Sym::N(x) => Sym::N(dense[x as usize]),
                });
                cur = self.nodes[cur].next;
            }
            out.push(body);
        }
        out
    }

    /// Expands the grammar back into the original input.
    pub fn expand_input(&self) -> Vec<u32> {
        expand_rules(&self.to_rules())
    }

    /// Verifies the digram-uniqueness invariant (test support): every
    /// non-overlapping digram occurs at most once across all rule bodies.
    pub fn digram_uniqueness_holds(&self) -> bool {
        let rules = self.to_rules();
        let mut seen: HashMap<(Sym, Sym), (usize, usize)> = HashMap::new();
        for (ri, body) in rules.iter().enumerate() {
            for i in 0..body.len().saturating_sub(1) {
                let key = (body[i], body[i + 1]);
                if let Some(&(pr, pi)) = seen.get(&key) {
                    // Overlapping occurrence in a run of equal symbols is
                    // permitted.
                    let overlapping = pr == ri && i == pi + 1 && body[i] == body[i + 1];
                    if !overlapping {
                        return false;
                    }
                    continue;
                }
                seen.insert(key, (ri, i));
            }
        }
        true
    }

    /// Verifies the rule-utility invariant (test support): every rule
    /// except the start rule is referenced at least twice.
    pub fn rule_utility_holds(&self) -> bool {
        let rules = self.to_rules();
        let mut refs = vec![0usize; rules.len()];
        for body in &rules {
            for s in body {
                if let Sym::N(r) = s {
                    refs[*r as usize] += 1;
                }
            }
        }
        refs.iter().skip(1).all(|&c| c >= 2)
    }
}

impl Default for Grammar {
    fn default() -> Grammar {
        Grammar::new()
    }
}

/// Expands dense rules (as produced by [`Grammar::to_rules`]) back into the
/// generated string.
pub fn expand_rules(rules: &[Vec<Sym>]) -> Vec<u32> {
    let mut out = Vec::new();
    if rules.is_empty() {
        return out;
    }
    // Iterative expansion with an explicit stack of (rule, position).
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some(&mut (r, ref mut pos)) = stack.last_mut() {
        if *pos >= rules[r].len() {
            stack.pop();
            continue;
        }
        let sym = rules[r][*pos];
        *pos += 1;
        match sym {
            Sym::T(t) => out.push(t),
            Sym::N(x) => stack.push((x as usize, 0)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(input: &[u32]) -> Grammar {
        let g = Grammar::build(input);
        assert_eq!(g.expand_input(), input, "expansion mismatch");
        g
    }

    #[test]
    fn empty_and_tiny() {
        check_round_trip(&[]);
        check_round_trip(&[1]);
        check_round_trip(&[1, 2]);
        check_round_trip(&[1, 1]);
    }

    #[test]
    fn classic_abcdbc() {
        // The canonical example: abcdbc -> S: a A d A, A: b c.
        let g = check_round_trip(&[1, 2, 3, 4, 2, 3]);
        assert_eq!(g.rule_count(), 2);
        assert!(g.digram_uniqueness_holds());
        assert!(g.rule_utility_holds());
    }

    #[test]
    fn repeats_compress_hierarchically() {
        // (ab)^64: grammar should be logarithmic in the input.
        let input: Vec<u32> = std::iter::repeat_n([7u32, 9], 64)
            .flatten()
            .collect();
        let g = check_round_trip(&input);
        assert!(g.symbol_count() < 30, "got {}", g.symbol_count());
        assert!(g.digram_uniqueness_holds());
        assert!(g.rule_utility_holds());
    }

    #[test]
    fn runs_of_equal_symbols() {
        for n in 1..40 {
            let input = vec![5u32; n];
            check_round_trip(&input);
        }
    }

    #[test]
    fn invariants_on_structured_input() {
        // Loop-like traces: 1 (2 3 4 5 6)^k 10 repeated with variations.
        let mut input = Vec::new();
        for k in [3usize, 3, 5, 3, 4] {
            input.push(1);
            for _ in 0..k {
                input.extend_from_slice(&[2, 3, 4, 5, 6]);
            }
            input.push(10);
        }
        let g = check_round_trip(&input);
        assert!(g.digram_uniqueness_holds());
        assert!(g.rule_utility_holds());
        assert!(g.symbol_count() < input.len());
    }

    #[test]
    fn pseudorandom_streams_round_trip() {
        let mut x: u64 = 42;
        for len in [10usize, 100, 1000, 5000] {
            for alphabet in [2u32, 3, 8, 64] {
                let input: Vec<u32> = (0..len)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        ((x >> 33) as u32) % alphabet + 1
                    })
                    .collect();
                check_round_trip(&input);
            }
        }
    }

    #[test]
    fn utility_holds_on_pseudorandom_small_alphabet() {
        let mut x: u64 = 7;
        let input: Vec<u32> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) as u32) % 3 + 1
            })
            .collect();
        let g = Grammar::build(&input);
        assert_eq!(g.expand_input(), input);
        assert!(g.rule_utility_holds());
    }
}
