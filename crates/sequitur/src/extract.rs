//! Extracting one function's path traces from a Sequitur-compressed WPP —
//! the "process" half of Table 5's extraction times.
//!
//! Unlike the TWPP archive, a grammar has no per-function locality: the
//! trace of any function is scattered through rule expansions, so
//! extraction must walk the **entire** expansion while tracking the
//! activation stack. That whole-grammar walk is precisely the access-cost
//! asymmetry the paper measures.

use twpp_ir::{BlockId, FuncId};
use twpp_tracer::WppEvent;

use crate::grammar::Sym;

/// Collects the path traces of every call to `func` by walking the full
/// expansion of `rules` (dense form, rule 0 = start). Terminals must be
/// encoded WPP event words.
///
/// Events that fail to decode are skipped (a grammar built from a valid
/// [`twpp_tracer::RawWpp`] contains only valid words).
pub fn extract_function(rules: &[Vec<Sym>], func: FuncId) -> Vec<Vec<BlockId>> {
    let mut result = Vec::new();
    if rules.is_empty() {
        return result;
    }
    // Activation stack: Some(trace) for activations of `func`.
    let mut activations: Vec<Option<Vec<BlockId>>> = Vec::new();
    // Expansion stack over the rule graph.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some(&mut (r, ref mut pos)) = stack.last_mut() {
        if *pos >= rules[r].len() {
            stack.pop();
            continue;
        }
        let sym = rules[r][*pos];
        *pos += 1;
        match sym {
            Sym::N(x) => stack.push((x as usize, 0)),
            Sym::T(word) => match WppEvent::decode(word) {
                Some(WppEvent::Enter(f)) => {
                    activations.push(if f == func { Some(Vec::new()) } else { None });
                }
                Some(WppEvent::Block(b)) => {
                    if let Some(Some(trace)) = activations.last_mut() {
                        trace.push(b);
                    }
                }
                Some(WppEvent::Exit) => {
                    if let Some(Some(trace)) = activations.pop() {
                        result.push(trace);
                    }
                }
                None => {}
            },
        }
    }
    while let Some(top) = activations.pop() {
        if let Some(trace) = top {
            result.push(trace);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Grammar;
    use twpp_tracer::RawWpp;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn extraction_matches_raw_scan() {
        // main calls f three times with two distinct traces, repeated so
        // Sequitur builds real rules.
        let mut events = vec![WppEvent::Enter(f(0)), WppEvent::Block(b(1))];
        for t in [&[1u32, 2, 4][..], &[1, 3, 4], &[1, 2, 4], &[1, 2, 4]] {
            events.push(WppEvent::Enter(f(1)));
            for &x in t {
                events.push(WppEvent::Block(b(x)));
            }
            events.push(WppEvent::Exit);
        }
        events.push(WppEvent::Block(b(2)));
        events.push(WppEvent::Exit);
        let wpp = RawWpp::from_events(&events);

        let g = Grammar::build(wpp.words());
        let rules = g.to_rules();
        for target in [f(0), f(1), f(9)] {
            assert_eq!(
                extract_function(&rules, target),
                wpp.scan_function(target),
                "mismatch for {target}"
            );
        }
    }

    #[test]
    fn empty_grammar_yields_nothing() {
        assert!(extract_function(&[], f(0)).is_empty());
        assert!(extract_function(&[vec![]], f(0)).is_empty());
    }
}
