//! **twpp-sequitur** — the Sequitur-compressed WPP baseline.
//!
//! Larus (PLDI 1999) stored whole program paths as Sequitur grammars. The
//! TWPP paper's Table 5 compares that representation against compacted
//! TWPPs on two axes: compressed size (Sequitur wins, ~3.9x) and time to
//! extract a single function's traces (TWPP wins, ~300x). This crate
//! provides the baseline side of that comparison:
//!
//! * [`Grammar`] — full Sequitur (digram uniqueness + rule utility) over
//!   the WPP event-word stream;
//! * [`wire`] — grammar serialization (the "read" cost component);
//! * [`extract_function`] — per-function trace extraction, which must walk
//!   the whole grammar (the "process" cost component).
//!
//! # Example
//!
//! ```
//! use twpp_sequitur::Grammar;
//!
//! let input = [1u32, 2, 3, 4, 2, 3];
//! let grammar = Grammar::build(&input);
//! assert_eq!(grammar.expand_input(), input);
//! assert!(grammar.symbol_count() <= input.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod grammar;
pub mod wire;

pub use extract::extract_function;
pub use grammar::{expand_rules, Grammar, Sym};
pub use wire::{decode, encode, encoded_size, WireError};

use twpp_tracer::RawWpp;

/// Compresses a raw WPP with Sequitur.
pub fn compress_wpp(wpp: &RawWpp) -> Grammar {
    Grammar::build(wpp.words())
}

/// Serialized grammar size in bytes for a raw WPP (Table 5's "Sequitur"
/// size column).
pub fn compressed_size(wpp: &RawWpp) -> usize {
    encoded_size(&compress_wpp(wpp).to_rules())
}
