//! Property tests for the byte-capped LRU caches behind the fleet
//! server's read path ([`twpp::cache`]).
//!
//! The conformance battery exercises these caches indirectly (every
//! served answer decodes through one); this suite pins the cache
//! contracts directly against a reference model:
//!
//! * the byte cap is an invariant, not a target — it holds after every
//!   operation of an arbitrary op sequence;
//! * eviction is exactly least-recently-used (model comparison);
//! * a cache hit returns a value identical to a cold decode;
//! * concurrent readers sharing one cache never observe torn values and
//!   converge on one canonical `Arc` per resident frame;
//! * a [`LazyArchive`] scanning more frame bytes than its cache cap
//!   stays bounded — the regression pinned here is the pre-cache
//!   behaviour of holding every decoded frame live forever.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use twpp::cache::{ByteLruCache, FrameCache};
use twpp::lazy::LazyArchive;
use twpp::obs::Obs;
use twpp::{compact, Codec, TwppArchive};
use twpp_ir::{BlockId, FuncId};
use twpp_tracer::{RawWpp, WppEvent};

// ---------------------------------------------------------------------------
// ByteLruCache vs. a reference model
// ---------------------------------------------------------------------------

/// One step of an arbitrary cache workload.
#[derive(Clone, Debug)]
enum Op {
    Insert { key: u8, bytes: u64 },
    Get { key: u8 },
    Retain { below: u8 },
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0u64..48).prop_map(|(key, bytes)| Op::Insert { key, bytes }),
        4 => any::<u8>().prop_map(|key| Op::Get { key }),
        1 => any::<u8>().prop_map(|below| Op::Retain { below }),
        1 => Just(Op::Clear),
    ]
}

/// A transparent reimplementation of the documented semantics: a map of
/// `key -> (bytes, last-touch stamp)` with min-stamp eviction.
struct Model {
    cap: u64,
    map: HashMap<u8, (u64, u64)>,
    clock: u64,
}

impl Model {
    fn used(&self) -> u64 {
        self.map.values().map(|(b, _)| *b).sum()
    }

    fn apply(&mut self, op: &Op) {
        self.clock += 1;
        match *op {
            Op::Insert { key, bytes } => {
                if let Some(e) = self.map.get_mut(&key) {
                    e.1 = self.clock;
                    return;
                }
                if bytes > self.cap {
                    return;
                }
                while self.used() + bytes > self.cap {
                    let Some(victim) =
                        self.map.iter().min_by_key(|(_, (_, s))| *s).map(|(k, _)| *k)
                    else {
                        break;
                    };
                    self.map.remove(&victim);
                }
                self.map.insert(key, (bytes, self.clock));
            }
            Op::Get { key } => {
                if let Some(e) = self.map.get_mut(&key) {
                    e.1 = self.clock;
                }
            }
            Op::Retain { below } => {
                self.map.retain(|k, _| *k < below);
            }
            Op::Clear => self.map.clear(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The byte cap holds after every operation of any op sequence, and
    // resident bytes always equal the sum of resident entry weights.
    #[test]
    fn cap_is_never_exceeded(
        cap in 1u64..256,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let cache: ByteLruCache<u8, u64> = ByteLruCache::new(cap);
        let mut weights: HashMap<u8, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Insert { key, bytes } => {
                    // A key can be evicted and later re-inserted with a
                    // different weight, so resident weight is the weight
                    // of the most recent insert that found the key absent
                    // (insert_or_get keeps the old weight for hits).
                    let fresh = cache.get(&key).is_none();
                    cache.insert_or_get(key, u64::from(key), bytes);
                    if fresh && bytes <= cap {
                        weights.insert(key, bytes);
                    }
                }
                Op::Get { key } => {
                    cache.get(&key);
                }
                Op::Retain { below } => {
                    cache.retain(|k| *k < below);
                }
                Op::Clear => cache.clear(),
            }
            prop_assert!(
                cache.resident_bytes() <= cap,
                "resident {} exceeds cap {cap} after {op:?}",
                cache.resident_bytes(),
            );
        }
        // Cross-check the byte accounting: resident bytes must equal the
        // sum of the weights of the entries still answering lookups.
        // (Weights are first-insert-wins, like the values.)
        let stats = cache.stats();
        let resident: u64 = (0..=u8::MAX)
            .filter(|k| cache.get(k).is_some())
            .map(|k| weights[&k])
            .sum();
        prop_assert_eq!(stats.resident_bytes, resident);
    }

    // The cache agrees with the reference model exactly: same resident
    // key set after any op sequence, i.e. eviction is least-recently-
    // used with `get` and duplicate inserts refreshing recency.
    #[test]
    fn eviction_matches_the_lru_model(
        cap in 1u64..128,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let cache: ByteLruCache<u8, u64> = ByteLruCache::new(cap);
        let mut model = Model { cap, map: HashMap::new(), clock: 0 };
        for op in &ops {
            match *op {
                Op::Insert { key, bytes } => {
                    cache.insert_or_get(key, u64::from(key), bytes);
                }
                Op::Get { key } => {
                    cache.get(&key);
                }
                Op::Retain { below } => {
                    cache.retain(|k| *k < below);
                }
                Op::Clear => cache.clear(),
            }
            model.apply(op);
        }
        prop_assert_eq!(cache.resident_bytes(), model.used());
        prop_assert_eq!(cache.len(), model.map.len());
        // Membership probes mutate recency identically on both sides, so
        // comparing via get keeps cache and model in lockstep.
        for key in 0..=u8::MAX {
            let op = Op::Get { key };
            prop_assert_eq!(
                cache.get(&key).is_some(),
                model.map.contains_key(&key),
                "key {key} diverges from the LRU model",
            );
            model.apply(&op);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame cache over a real archive
// ---------------------------------------------------------------------------

/// A deterministic two-function WPP whose archive has several frames.
fn sample_wpp(funcs: u32, calls: u32) -> RawWpp {
    let b = BlockId::new;
    let mut ev = vec![WppEvent::Enter(FuncId::from_index(0)), WppEvent::Block(b(1))];
    for i in 0..calls {
        for f in 1..=funcs {
            ev.push(WppEvent::Enter(FuncId::from_index(f as usize)));
            ev.push(WppEvent::Block(b(1)));
            ev.push(WppEvent::Block(b(i % 3 + 2)));
            ev.push(WppEvent::Exit);
        }
    }
    ev.push(WppEvent::Exit);
    RawWpp::from_events(&ev)
}

fn write_archive(dir: &std::path::Path, funcs: u32, calls: u32) -> std::path::PathBuf {
    let c = compact(&sample_wpp(funcs, calls)).expect("sample WPP compacts");
    let a = TwppArchive::from_compacted_codec(
        &c,
        &HashMap::new(),
        1,
        &[],
        &Obs::noop(),
        Codec::default(),
    );
    let path = dir.join("cache-props.twpa");
    a.save(&path).expect("write archive");
    path
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twpp-cache-props-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A cache hit returns a record identical to a cold decode — and the
/// same canonical `Arc` while the entry stays resident.
#[test]
fn hit_is_identical_to_cold_decode() {
    let dir = tempdir("hit");
    let path = write_archive(&dir, 6, 8);
    let la = LazyArchive::open(&path).expect("lazy open");
    for func in la.function_ids() {
        let cold = TwppArchive::read_function_from_file(&path, func).expect("cold decode");
        let first = la.read_function(func).expect("first read");
        let second = la.read_function(func).expect("second read");
        assert_eq!(*first, cold, "cached read diverges from a cold decode");
        assert!(
            Arc::ptr_eq(&first, &second),
            "resident hits must share one canonical Arc"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent readers over one shared cache: no torn values, every
/// returned record equals the cold decode, and the cap holds throughout.
#[test]
fn concurrent_reads_share_untorn_arcs() {
    let dir = tempdir("conc");
    let path = write_archive(&dir, 8, 8);
    let cache = Arc::new(FrameCache::new(1 << 20));
    let la = Arc::new(
        LazyArchive::open_with_cache(&path, Arc::clone(&cache), Obs::noop()).expect("open"),
    );
    let funcs = la.function_ids();
    let baseline: HashMap<FuncId, _> = funcs
        .iter()
        .map(|&f| (f, TwppArchive::read_function_from_file(&path, f).expect("cold")))
        .collect();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let la = Arc::clone(&la);
            let cache = Arc::clone(&cache);
            let funcs = &funcs;
            let baseline = &baseline;
            scope.spawn(move || {
                for round in 0..50 {
                    let func = funcs[(t + round) % funcs.len()];
                    let rec = la.read_function(func).expect("concurrent read");
                    assert_eq!(*rec, baseline[&func], "torn or stale frame");
                    assert!(cache.resident_bytes() <= cache.cap_bytes());
                }
            });
        }
    });
    // After the dust settles every resident function resolves to one
    // canonical Arc: two fresh reads hit the same allocation.
    for &func in &funcs {
        let a = la.read_function(func).expect("read");
        let b = la.read_function(func).expect("read");
        assert!(Arc::ptr_eq(&a, &b));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The regression this module exists for: scanning an archive whose
/// frames outweigh the cache cap must not grow resident bytes past the
/// cap — the old unbounded per-archive cache held every frame forever.
#[test]
fn lazy_scan_stays_under_a_tiny_cap() {
    let dir = tempdir("bounded");
    let path = write_archive(&dir, 12, 16);
    // A cap much smaller than the archive's total frame bytes, but large
    // enough to hold any single frame (oversize entries pass through
    // unstored, which would trivially satisfy the bound).
    let cap = 256u64;
    let cache = Arc::new(FrameCache::new(cap));
    let la = LazyArchive::open_with_cache(&path, Arc::clone(&cache), Obs::noop()).expect("open");
    let mut peak = 0u64;
    for _ in 0..3 {
        for func in la.function_ids() {
            let rec = la.read_function(func).expect("scan read");
            assert!(!rec.traces.is_empty() || rec.call_count == 0);
            peak = peak.max(cache.resident_bytes());
        }
    }
    assert!(
        peak <= cap,
        "peak resident {peak} bytes exceeds the {cap}-byte cap"
    );
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "the scan must actually overflow the cap for this regression \
         test to bite (resident {}, cap {cap})",
        stats.resident_bytes
    );
    assert_eq!(
        la.decoded_count(),
        la.function_ids().len(),
        "every frame decoded at least once despite the tiny cap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
