//! Property tests for the [`twpp::Retry`] backoff policy: sequences are
//! deterministic per seed, bounded by the cap, monotonically shaped by
//! the exponential, and a fault plan injecting N transient failures
//! succeeds iff N is below the attempt cap — the contract the ingest
//! daemon's transient-I/O wrapping rests on.

use proptest::prelude::*;
use twpp::{FaultPlan, Retry};

fn retry_strategy() -> impl Strategy<Value = Retry> {
    (1u32..=16, 1u64..50, 1u64..2_000, any::<u64>())
        .prop_map(|(attempts, base, span, seed)| Retry::new(attempts, base, base + span, seed))
}

/// The backoff sequence a policy would sleep through `n` failures.
fn backoff_sequence(retry: &Retry, n: u32) -> Vec<u64> {
    (1..=n).map(|f| retry.backoff_ms(f)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The same policy always produces the same backoff sequence, and
    /// changing only the seed still respects the same bounds.
    #[test]
    fn backoff_is_deterministic_per_seed(retry in retry_strategy()) {
        let a = backoff_sequence(&retry, 32);
        let b = backoff_sequence(&retry, 32);
        prop_assert_eq!(a, b, "same (policy, failure) must map to the same delay");
    }

    /// Every delay is within [exp/2, cap]: never above the cap, never
    /// below half the (capped) exponential for that failure count —
    /// the "equal jitter" shape.
    #[test]
    fn backoff_is_bounded_by_cap_and_exponential(
        retry in retry_strategy(),
        failures in 1u32..64,
    ) {
        let ms = retry.backoff_ms(failures);
        prop_assert!(ms <= retry.cap_delay_ms, "{ms} > cap {}", retry.cap_delay_ms);
        let exp = u32::min(failures - 1, 62);
        let full = retry.base_delay_ms.saturating_mul(1u64 << exp).min(retry.cap_delay_ms);
        prop_assert!(ms >= full / 2, "{ms} below the equal-jitter floor {}", full / 2);
        prop_assert!(ms <= full, "{ms} above the capped exponential {full}");
    }

    /// A policy with no delay configured never backs off, regardless of
    /// seed or failure count.
    #[test]
    fn backoff_without_delay_is_zero(seed in any::<u64>(), failures in 0u32..64) {
        prop_assert_eq!(Retry::new(8, 0, 500, seed).backoff_ms(failures.max(1)), 0);
        prop_assert_eq!(Retry::new(8, 10, 0, seed).backoff_ms(failures.max(1)), 0);
        prop_assert_eq!(Retry::new(8, 10, 500, seed).backoff_ms(0), 0);
    }

    /// `run_with` sleeps exactly the policy's backoff sequence and stops
    /// at the cap: N injected transient failures succeed iff N is below
    /// `max_attempts`, with attempts = N + 1 on success.
    #[test]
    fn injected_faults_succeed_iff_below_attempt_cap(
        retry in retry_strategy(),
        faults in 0u32..20,
    ) {
        let mut remaining = faults;
        let mut slept: Vec<u64> = Vec::new();
        let mut attempt_numbers: Vec<u32> = Vec::new();
        let outcome = retry.run_with(
            |ms| slept.push(ms),
            |attempt| {
                attempt_numbers.push(attempt);
                if remaining > 0 {
                    remaining -= 1;
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
        );
        let made = attempt_numbers.len() as u32;
        prop_assert_eq!(attempt_numbers, (1..=made).collect::<Vec<_>>(), "attempt numbering");
        let cap = retry.max_attempts.max(1);
        let failures_backed_off = if faults < cap {
            let (value, attempts) = outcome.expect("must succeed below the cap");
            prop_assert_eq!(attempts, faults + 1);
            prop_assert_eq!(value, attempts);
            faults
        } else {
            let exhausted = outcome.expect_err("must exhaust at the cap");
            prop_assert_eq!(exhausted.attempts, cap);
            prop_assert_eq!(exhausted.last, "transient");
            // No backoff after the final failure.
            cap - 1
        };
        // `run_with` skips zero-length sleeps, so the observed sleeps
        // are exactly the nonzero entries of the policy's sequence.
        let expected: Vec<u64> = backoff_sequence(&retry, failures_backed_off)
            .into_iter()
            .filter(|&ms| ms > 0)
            .collect();
        prop_assert_eq!(&slept, &expected);
    }

    /// The same contract through the shared [`FaultPlan`] counter the
    /// ingest paths use: a plan with N transient I/O faults drains
    /// exactly N `take_io_fault` hits, then reports healthy forever.
    #[test]
    fn fault_plan_transient_io_drains_exactly_n(n in 0u64..40) {
        let plan = FaultPlan::transient_io(n);
        let hits = (0..n + 10).filter(|_| plan.take_io_fault()).count() as u64;
        prop_assert_eq!(hits, n);
        prop_assert!(!plan.take_io_fault(), "counter must stay drained");
    }
}

#[test]
fn different_seeds_diverge_somewhere() {
    // A fixed pair of seeds over a wide jitter span must disagree on at
    // least one delay in a long sequence; if this ever fails, the seed
    // is not reaching the jitter.
    let a = Retry::new(8, 10, 10_000, 1);
    let b = Retry::new(8, 10, 10_000, 2);
    assert_ne!(backoff_sequence(&a, 64), backoff_sequence(&b, 64));
}

#[test]
fn none_policy_never_sleeps_or_retries() {
    let retry = Retry::none();
    assert!(!retry.is_active());
    let mut calls = 0;
    let out = retry.run_with(
        |_| panic!("Retry::none must never sleep"),
        |attempt| {
            calls += 1;
            Err::<u32, u32>(attempt)
        },
    );
    let exhausted = out.unwrap_err();
    assert_eq!(calls, 1);
    assert_eq!(exhausted.attempts, 1);
    assert_eq!(backoff_sequence(&retry, 8), vec![0; 8]);
}
