//! Property tests for the two codecs that guard the archive's integrity:
//! the LZW byte codec ([`twpp::lzw`]) and the `l:h:s` timestamp-set wire
//! format ([`twpp::tsset`]).
//!
//! These complement the conformance battery (`twpp selftest`): the
//! battery drives the codecs with its own generators; this suite pins
//! the adversarial corners directly — empty input, single-symbol runs,
//! the dictionary-reset boundary, max-code overflow, and series entries
//! straddling the `i32::MAX` sign-bit framing boundary.

use proptest::prelude::*;

use twpp::bitcodec::{decode_delta_delta, encode_delta_delta, BitReader};
use twpp::lzw::{self, LzwError};
use twpp::tsset::{TsSet, TsSetError};

// ---------------------------------------------------------------------------
// LZW
// ---------------------------------------------------------------------------

#[test]
fn lzw_empty_input_round_trips_to_empty() {
    let c = lzw::compress(&[]);
    assert_eq!(lzw::decompress(&c).unwrap(), Vec::<u8>::new());
    assert_eq!(lzw::compressed_size(&[]), c.len());
    assert_eq!(lzw::decompress_bounded(&c, 0).unwrap(), Vec::<u8>::new());
}

#[test]
fn lzw_round_trips_across_the_dictionary_reset_boundary() {
    // A fixed LCG byte stream has enough digram entropy that the 16-bit
    // dictionary fills somewhere inside this length range; round-trip at
    // several prefix lengths so at least one sits before the clear code,
    // one near it, and one well past it.
    let mut data = Vec::with_capacity(700_000);
    let mut x: u32 = 987_654_321;
    for _ in 0..700_000 {
        x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
        data.push((x >> 16) as u8);
    }
    for cut in [65_536, 250_000, 500_000, 620_000, 700_000] {
        let slice = &data[..cut];
        let c = lzw::compress(slice);
        assert_eq!(lzw::decompress(&c).unwrap(), slice, "cut={cut}");
        assert_eq!(lzw::compressed_size(slice), c.len(), "cut={cut}");
    }
}

#[test]
fn lzw_max_code_overflow_resets_cleanly_on_low_entropy_input() {
    // Two-symbol streams grow the dictionary one entry per emitted code:
    // long enough to overflow the max code and force a mid-stream reset
    // even at minimal alphabet size.
    let mut data = Vec::with_capacity(900_000);
    let mut x: u32 = 42;
    for _ in 0..900_000 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        data.push((x >> 31) as u8);
    }
    let c = lzw::compress(&data);
    assert_eq!(lzw::decompress(&c).unwrap(), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lzw_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&c).unwrap(), data.clone());
        prop_assert_eq!(lzw::compressed_size(&data), c.len());
    }

    #[test]
    fn lzw_round_trips_single_symbol_runs(sym in any::<u8>(), len in 0usize..20_000) {
        // KwKwK territory: every code refers to the just-defined entry.
        let data = vec![sym; len];
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzw_round_trips_tiny_alphabets(
        data in prop::collection::vec(0u8..3, 0..8192),
    ) {
        // Low-entropy streams churn the dictionary fastest per input byte.
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzw_truncation_never_panics_and_yields_a_prefix(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        cut_permille in 0u32..1000,
    ) {
        let c = lzw::compress(&data);
        let cut = (c.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        if let Ok(d) = lzw::decompress(&c[..cut]) {
            prop_assert!(data.starts_with(&d));
        }
    }

    #[test]
    fn lzw_bounded_decode_enforces_its_cap(
        data in prop::collection::vec(any::<u8>(), 1..2048),
    ) {
        let c = lzw::compress(&data);
        prop_assert_eq!(lzw::decompress_bounded(&c, data.len()).unwrap(), data.clone());
        prop_assert_eq!(
            lzw::decompress_bounded(&c, data.len() - 1),
            Err(LzwError::OutputLimit(data.len() - 1))
        );
    }

    #[test]
    fn lzw_decompress_of_garbage_never_panics(
        garbage in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // Any outcome is fine; crashing or unbounded growth is not.
        let _ = lzw::decompress_bounded(&garbage, 1 << 16);
    }
}

// ---------------------------------------------------------------------------
// Delta-of-delta bit codec (adaptive archive codec, DESIGN.md §16)
// ---------------------------------------------------------------------------

#[test]
fn dd_degenerate_shapes_round_trip_exactly() {
    // Single element, constant step (dod == 0 everywhere), step jumps,
    // and the minimal value 1: the shapes the adaptive selector feeds
    // the codec most often.
    let cases: &[&[u32]] = &[
        &[1],
        &[7],
        &[i32::MAX as u32],
        &[1, 2],
        &[1, 2, 3, 4, 5, 6, 7, 8],
        &[10, 20, 30, 40, 50],
        &[1, 100, 101, 102, 5_000, 5_001],
        &[1, 2, 4, 8, 16, 32, 64, 128],
    ];
    for values in cases {
        let words = encode_delta_delta(values);
        let cap = *values.last().unwrap();
        assert_eq!(
            decode_delta_delta(&words, cap).unwrap(),
            *values,
            "values={values:?}"
        );
    }
    // Empty decode: a zero count with no payload is the empty vector.
    assert_eq!(decode_delta_delta(&encode_delta_delta(&[]), 1).unwrap(), []);
}

// ---------------------------------------------------------------------------
// TsSet `l:h:s` wire format
// ---------------------------------------------------------------------------

/// A strictly increasing timestamp vector whose runs straddle `around`:
/// the generated values cross from below the pivot to above it, so wire
/// encodings exercise both sides of any framing boundary at the pivot.
fn straddling_values(around: u32, below: u32, spec: &[(u32, u32)]) -> Vec<u32> {
    // `spec` is (len, step) pairs; runs are laid out back to back
    // starting `below` under the pivot.
    let mut out = Vec::new();
    let mut cursor = u64::from(around.saturating_sub(below));
    for &(len, step) in spec {
        for _ in 0..len {
            if cursor > u64::from(u32::MAX) {
                return out;
            }
            out.push(cursor as u32);
            cursor += u64::from(step.max(1));
        }
        cursor += 1;
    }
    out
}

#[test]
fn tsset_series_straddling_the_sign_bit_boundary_encode_iff_in_range() {
    let pivot = i32::MAX as u32;
    // Entirely below the boundary (last element == i32::MAX): encodable.
    let v = straddling_values(pivot, 8, &[(3, 4)]); // 2147483639, 43, 47
    assert_eq!(*v.last().unwrap(), pivot);
    let set = TsSet::from_sorted(&v);
    assert_eq!(set.to_vec(), v);
    let wire = set.to_wire().expect("values ≤ i32::MAX encode");
    assert_eq!(TsSet::from_wire(&wire).unwrap(), set);

    // Crossing the boundary: membership is fine, wire encoding must
    // refuse with TimestampOverflow naming the first bad value.
    let v = straddling_values(pivot, 8, &[(6, 4)]); // crosses i32::MAX
    assert!(v.iter().any(|&x| x > pivot) && v.iter().any(|&x| x <= pivot));
    let set = TsSet::from_sorted(&v);
    assert_eq!(set.to_vec(), v);
    match set.to_wire() {
        Err(TsSetError::TimestampOverflow { value }) => {
            assert!(
                value > u64::from(pivot),
                "reported value {value} not past the boundary"
            )
        }
        other => panic!("expected TimestampOverflow, got {other:?}"),
    }

    // One past the boundary as a lone singleton: same refusal.
    let set = TsSet::from_sorted(&[pivot + 1]);
    assert!(matches!(
        set.to_wire(),
        Err(TsSetError::TimestampOverflow { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tsset_wire_round_trips_near_the_boundary(
        below in 1u32..2048,
        runs in prop::collection::vec((1u32..12, 1u32..8), 1..6),
    ) {
        let pivot = i32::MAX as u32;
        let values = straddling_values(pivot, below, &runs);
        if values.is_empty() {
            return; // degenerate spec: nothing to encode
        }
        let set = TsSet::from_sorted(&values);
        prop_assert_eq!(set.to_vec(), values.clone());
        let overflows = values.iter().any(|&v| v > pivot);
        match set.to_wire() {
            Ok(wire) => {
                prop_assert!(!overflows, "encoded a value past i32::MAX");
                // Sign-delimited framing: every entry boundary is marked
                // by exactly one negative word.
                let negatives = wire.iter().filter(|&&w| w < 0).count();
                prop_assert_eq!(negatives, set.entries().len());
                prop_assert_eq!(TsSet::from_wire(&wire).unwrap(), set);
            }
            Err(TsSetError::TimestampOverflow { value }) => {
                prop_assert!(overflows, "spurious overflow for {value}");
            }
            Err(other) => prop_assert!(false, "unexpected encode error: {other}"),
        }
    }

    #[test]
    fn tsset_from_wire_rejects_garbage_without_panicking(
        words in prop::collection::vec(any::<i32>(), 0..64),
    ) {
        if let Ok(set) = TsSet::from_wire(&words) {
            // Entry-level round trip: cheap no matter how many members
            // the entries claim, since equality compares entries.
            let wire = set.to_wire().unwrap();
            prop_assert_eq!(TsSet::from_wire(&wire).unwrap(), set);
        }
        // Membership-level invariant through the capped decoder, so a
        // two-word range claiming 2^31 members cannot stall the suite
        // by materialising on `to_vec`.
        if let Ok(set) = TsSet::from_wire_capped(&words, 1 << 16) {
            let v = set.to_vec();
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn dd_round_trips_sorted_timestamp_vectors(
        start in 1u32..100_000,
        gaps in prop::collection::vec(1u32..5_000, 0..128),
    ) {
        // Arbitrary strictly increasing vectors, including a lone
        // singleton when `gaps` is empty.
        let mut values = vec![start];
        for g in gaps {
            let next = u64::from(*values.last().unwrap()) + u64::from(g);
            if next > u64::from(i32::MAX as u32) {
                break;
            }
            values.push(next as u32);
        }
        let words = encode_delta_delta(&values);
        let cap = *values.last().unwrap();
        prop_assert_eq!(decode_delta_delta(&words, cap).unwrap(), values.clone());
        // A cap one below the max must be rejected, not clamped.
        if cap > 1 {
            prop_assert!(decode_delta_delta(&words, cap - 1).is_err());
        }
    }

    #[test]
    fn dd_truncation_at_every_bit_offset_never_panics(
        start in 1u32..10_000,
        gaps in prop::collection::vec(1u32..3_000, 1..48),
    ) {
        let mut values = vec![start];
        for g in gaps {
            values.push(values.last().unwrap() + g);
        }
        let words = encode_delta_delta(&values);
        let cap = *values.last().unwrap();
        // Word-level truncation through the full decoder: every prefix
        // must fail cleanly (the count header promises more values).
        for cut in 0..words.len() {
            prop_assert!(decode_delta_delta(&words[..cut], cap).is_err(), "cut={cut}");
        }
        // Bit-level truncation through the reader itself: from every
        // offset, draining the stream and asking for one more bit is a
        // typed error, never a panic — and the failed read must not
        // advance the cursor.
        let total_bits = words.len() * 32;
        for bits in 0..total_bits.min(256) {
            let mut r = BitReader::new(&words);
            let mut left = bits;
            while left > 0 {
                let take = left.min(24) as u32;
                r.read_bits(take).unwrap();
                left -= take as usize;
            }
            let remaining = total_bits - bits;
            if remaining < 64 {
                prop_assert!(r.read_bits(remaining as u32 + 1).is_err());
                prop_assert_eq!(r.remaining_bits(), remaining, "failed read moved the cursor");
            }
            let mut left = remaining;
            while left > 0 {
                let take = left.min(32) as u32;
                r.read_bits(take).unwrap();
                left -= take as usize;
            }
            prop_assert!(r.read_bits(1).is_err());
        }
    }

    #[test]
    fn dd_decode_of_garbage_never_panics(
        words in prop::collection::vec(any::<u32>(), 0..64),
        cap in 1u32..1_000_000,
    ) {
        // Any verdict is fine; a panic or unbounded allocation is not.
        if let Ok(values) = decode_delta_delta(&words, cap) {
            prop_assert!(values.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(values.first().is_none_or(|&v| v >= 1));
            prop_assert!(values.last().is_none_or(|&v| v <= cap));
        }
    }

    #[test]
    fn tsset_from_wire_capped_bounds_hostile_ranges(
        first in 1u32..1000, extra in 1u32..100_000, cap in 1u32..50_000,
    ) {
        // A two-word range entry can claim millions of members; the
        // capped decoder must reject anything whose max exceeds the cap
        // before materialisation.
        let last = first.saturating_add(extra);
        // `f, -l` is the two-word step-1 range encoding.
        let words = vec![first as i32, -(i64::from(last)) as i32];
        match TsSet::from_wire_capped(&words, cap) {
            Ok(set) => prop_assert!(set.last().unwrap_or(0) <= cap),
            Err(TsSetError::ExceedsCap { value, cap: c }) => {
                prop_assert!(value > c);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}
