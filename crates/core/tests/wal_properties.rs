//! Property tests for the ingest write-ahead log: arbitrary event
//! batches round-trip exactly, and a WAL truncated at *every* byte
//! offset either replays the clean record prefix or reports a typed
//! [`WalError::TornTail`] — never a panic, never silently wrong data.

use proptest::prelude::*;
use twpp::ingest::{
    encode_record, replay_bytes, replay_strict, WalError, WAL_HEADER_LEN, WAL_RECORD_HEADER_LEN,
    WAL_VERSION,
};
use twpp_ir::{BlockId, FuncId};
use twpp_tracer::WppEvent;

fn event_strategy() -> impl Strategy<Value = WppEvent> {
    prop_oneof![
        (0u32..1 << 20).prop_map(|i| WppEvent::Enter(FuncId::from_u32(i))),
        (1u32..1 << 20).prop_map(|i| WppEvent::Block(BlockId::new(i))),
        Just(WppEvent::Exit),
    ]
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<WppEvent>>> {
    prop::collection::vec(prop::collection::vec(event_strategy(), 1..40), 0..8)
}

/// Replay expectation: each record's global event offset and batch.
type ExpectedRecords = Vec<(u64, Vec<WppEvent>)>;

/// A full WAL image for `batches`, with chained global event offsets,
/// plus the byte offset where each record ends.
fn image(batches: &[Vec<WppEvent>]) -> (Vec<u8>, ExpectedRecords, Vec<usize>) {
    let mut bytes = b"TWPW".to_vec();
    bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
    let mut offset = 0u64;
    let mut expected = Vec::new();
    let mut boundaries = vec![bytes.len()];
    for batch in batches {
        encode_record(offset, batch, &mut bytes);
        expected.push((offset, batch.clone()));
        boundaries.push(bytes.len());
        offset += batch.len() as u64;
    }
    (bytes, expected, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then replaying arbitrary batches is the identity.
    #[test]
    fn round_trips_arbitrary_batches(batches in batches_strategy()) {
        let (bytes, expected, boundaries) = image(&batches);
        prop_assert_eq!(
            bytes.len(),
            *boundaries.last().unwrap_or(&WAL_HEADER_LEN)
        );
        let replay = replay_bytes(&bytes).expect("own image must replay");
        prop_assert_eq!(&replay.batches, &expected);
        prop_assert_eq!(replay.clean_bytes, bytes.len() as u64);
        prop_assert_eq!(replay.torn_at, None);
        prop_assert_eq!(replay_strict(&bytes).expect("not torn"), expected);
    }

    /// Truncating a WAL at every byte offset yields exactly the records
    /// whose bytes fully survive; a cut inside a record is a torn tail
    /// at the last record boundary. Strict replay turns that tail into
    /// the typed error.
    #[test]
    fn truncation_at_every_offset_is_prefix_or_torn(batches in batches_strategy()) {
        let (bytes, expected, boundaries) = image(&batches);
        for cut in 0..bytes.len() {
            let img = &bytes[..cut];
            let replay = replay_bytes(img).expect("truncations of our image are never foreign");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            prop_assert_eq!(&replay.batches, &expected[..whole], "cut at {}", cut);
            if cut < WAL_HEADER_LEN {
                prop_assert_eq!(replay.clean_bytes, 0);
            } else {
                prop_assert_eq!(replay.clean_bytes, boundaries[whole] as u64);
            }
            let on_boundary = cut == 0 || boundaries.contains(&cut);
            prop_assert_eq!(replay.torn_at.is_none(), on_boundary, "cut at {}", cut);
            prop_assert_eq!(
                replay.torn_bytes,
                cut as u64 - replay.clean_bytes,
                "torn_bytes must account for every dropped byte at cut {}",
                cut
            );
            match replay_strict(img) {
                Ok(records) => {
                    prop_assert!(on_boundary);
                    prop_assert_eq!(&records, &expected[..whole]);
                }
                Err(WalError::TornTail { offset }) => {
                    prop_assert!(!on_boundary);
                    prop_assert_eq!(offset, replay.clean_bytes);
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }

    /// Replay never panics on arbitrary bytes, and a clean replay of a
    /// record implies its payload survived bit-for-bit (CRC framing).
    #[test]
    fn replay_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = replay_bytes(&bytes);
        let _ = replay_strict(&bytes);
    }

    /// Flipping any single byte of a one-record image is always caught:
    /// a header flip is a typed magic/version error and a record flip
    /// fails the CRC framing, so the record never replays corrupted.
    #[test]
    fn single_byte_flips_never_replay_corrupted_data(
        batch in prop::collection::vec(event_strategy(), 1..40),
        at in 0usize..100_000,
        mask in 1u8..=255,
    ) {
        let (bytes, _, _) = image(std::slice::from_ref(&batch));
        let mut corrupt = bytes.clone();
        let i = at % corrupt.len();
        corrupt[i] ^= mask;
        match replay_bytes(&corrupt) {
            Err(WalError::BadMagic) => prop_assert!(i < 4),
            Err(WalError::BadVersion(_)) => prop_assert!((4..WAL_HEADER_LEN).contains(&i)),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            Ok(replay) => {
                prop_assert!(i >= WAL_HEADER_LEN);
                prop_assert_eq!(replay.batches.len(), 0, "corrupted record replayed");
                prop_assert_eq!(replay.torn_at, Some(WAL_HEADER_LEN as u64));
                let _ = WAL_RECORD_HEADER_LEN; // part of the public format contract
            }
        }
    }
}
