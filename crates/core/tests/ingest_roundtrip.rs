//! End-to-end tests of the incremental compactor: however the event
//! stream is chunked across `feed` calls, seals, process deaths and
//! resumes, the merged archive is byte-identical to batch compaction of
//! the whole stream.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use twpp::ingest::{replay_dir_events, Compactor, IngestError, IngestOptions};
use twpp::{compact_governed, Durability, GovOptions, PipelineError, TwppArchive};
use twpp_ir::{BlockId, FuncId};
use twpp_tracer::raw::RawWpp;
use twpp_tracer::WppEvent;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twpp-ingest-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic ~2.3k-event stream: nested calls, loops (arithmetic
/// timestamp series), repeated bodies (redundant traces) and a final
/// still-open activation (truncated-stream path).
fn stream() -> Vec<WppEvent> {
    let f = |i: usize| WppEvent::Enter(FuncId::from_index(i));
    let b = |i: u32| WppEvent::Block(BlockId::new(i));
    let x = WppEvent::Exit;
    let mut ev = vec![f(0), b(1)];
    for outer in 0..24 {
        ev.extend([b(2), f(1), b(1)]);
        for inner in 0..(outer % 5) + 2 {
            ev.extend([b(2), b(3), f(2), b(1)]);
            for _ in 0..inner % 3 {
                ev.extend([b(2), b(4)]);
            }
            ev.extend([b(5), x, b(4)]);
        }
        ev.extend([b(6), x, b(3)]);
        if outer % 4 == 0 {
            ev.extend([f(3), b(1), f(1), b(1), b(6), x, b(2), x]);
        }
    }
    // Leave one activation open: partition closes it implicitly, and the
    // compactor must agree byte-for-byte.
    ev.extend([f(1), b(1), b(2)]);
    ev
}

fn batch_bytes(events: &[WppEvent]) -> Vec<u8> {
    let wpp = RawWpp::from_events(events);
    let (compacted, stats) =
        compact_governed(&wpp, &GovOptions::default()).expect("batch compaction");
    TwppArchive::from_compacted_governed_obs(
        &compacted,
        &HashMap::new(),
        twpp::resolve_threads(None),
        &stats.degraded.failed,
        &twpp::Obs::noop(),
    )
    .as_bytes()
    .to_vec()
}

fn small_opts() -> IngestOptions {
    IngestOptions {
        // ~64 events per window: many segments from a small stream.
        seal_bytes: 256,
        durability: Durability::None,
        ..IngestOptions::default()
    }
}

#[test]
fn chunked_ingest_is_byte_identical_to_batch() {
    let events = stream();
    let expected = batch_bytes(&events);
    for chunk in [1usize, 7, 64, events.len()] {
        let dir = temp_dir("chunk");
        let mut c = Compactor::create(&dir, small_opts()).expect("create");
        for piece in events.chunks(chunk) {
            c.feed(piece).expect("feed");
        }
        let report = c.finish().expect("finish");
        assert_eq!(report.events, events.len() as u64);
        assert!(report.segments >= 1);
        let merged = std::fs::read(&report.path).expect("merged archive");
        assert_eq!(
            merged, expected,
            "chunk size {chunk}: merged archive differs from batch"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn resume_after_silent_death_continues_exactly() {
    let events = stream();
    let expected = batch_bytes(&events);
    let dir = temp_dir("resume");
    // First process: feed 60% in ragged chunks, then vanish without
    // sealing (drop = no cleanup, like a SIGKILL between syscalls).
    let fed;
    {
        let mut c = Compactor::create(&dir, small_opts()).expect("create");
        let cut = events.len() * 6 / 10;
        for piece in events[..cut].chunks(13) {
            c.feed(piece).expect("feed");
        }
        fed = c.accepted_events();
        assert!(c.window_events() > 0, "test wants a non-empty WAL tail");
    }
    // Second process: resume, verify the report, feed the rest.
    let (mut c, report) = Compactor::resume(&dir, small_opts()).expect("resume");
    assert_eq!(report.sealed_events + report.wal_events, fed);
    assert!(!report.wal_torn);
    assert_eq!(c.accepted_events(), fed);
    for piece in events[fed as usize..].chunks(29) {
        c.feed(piece).expect("feed after resume");
    }
    let finish = c.finish().expect("finish");
    assert_eq!(std::fs::read(&finish.path).expect("merged"), expected);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resume_drops_torn_wal_tail_and_refeeds() {
    let events = stream();
    let expected = batch_bytes(&events);
    let dir = temp_dir("torn");
    {
        let mut c = Compactor::create(&dir, small_opts()).expect("create");
        for piece in events[..events.len() / 2].chunks(11) {
            c.feed(piece).expect("feed");
        }
        assert!(c.window_events() > 0);
    }
    // Tear the final WAL record: the crash raced the last append.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).expect("wal");
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).expect("truncate");

    let (mut c, report) = Compactor::resume(&dir, small_opts()).expect("resume");
    assert!(report.wal_torn, "the torn record must be detected");
    let durable = c.accepted_events() as usize;
    assert!(durable < events.len() / 2, "the torn batch must be dropped");
    // The producer re-sends everything past the last acknowledged event.
    for piece in events[durable..].chunks(17) {
        c.feed(piece).expect("refeed");
    }
    let finish = c.finish().expect("finish");
    assert_eq!(std::fs::read(&finish.path).expect("merged"), expected);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn replay_dir_reconstructs_the_exact_stream() {
    let events = stream();
    let dir = temp_dir("replay");
    let mut c = Compactor::create(&dir, small_opts()).expect("create");
    for piece in events.chunks(41) {
        c.feed(piece).expect("feed");
    }
    // Half-open state: some sealed segments plus a WAL tail.
    let replay = replay_dir_events(&dir).expect("replay");
    assert_eq!(replay.events, events);
    assert_eq!(replay.sealed_events, c.sealed_events());
    drop(c);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn feed_mirrors_partition_error_contract() {
    let dir = temp_dir("errors");
    let mut c = Compactor::create(&dir, small_opts()).expect("create");
    // Block outside any activation.
    let err = c.feed(&[WppEvent::Block(BlockId::new(1))]).unwrap_err();
    assert!(matches!(err, IngestError::Stream(_)), "got {err:?}");
    // The rejected batch acknowledged nothing.
    assert_eq!(c.accepted_events(), 0);
    // A valid root run...
    c.feed(&[
        WppEvent::Enter(FuncId::from_index(0)),
        WppEvent::Block(BlockId::new(1)),
        WppEvent::Exit,
    ])
    .expect("valid stream");
    // ...then a second root is rejected, mid-batch, atomically.
    let err = c
        .feed(&[WppEvent::Enter(FuncId::from_index(1))])
        .unwrap_err();
    assert!(matches!(err, IngestError::Stream(_)), "got {err:?}");
    assert_eq!(c.accepted_events(), 3);
    drop(c);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn finishing_an_empty_run_matches_batch_empty_error() {
    let dir = temp_dir("empty");
    let c = Compactor::create(&dir, small_opts()).expect("create");
    let err = c.finish().unwrap_err();
    assert!(
        matches!(
            err,
            IngestError::Pipeline(PipelineError::Partition(twpp::PartitionError::Empty))
        ),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn budget_exhaustion_seals_early_instead_of_dying() {
    let events = stream();
    let expected = batch_bytes(&events);
    let dir = temp_dir("budget");
    let opts = IngestOptions {
        // A step budget far smaller than the stream: every feed past the
        // cap forces an early seal, but ingestion keeps going.
        budget: twpp::Limits {
            max_steps: Some(64),
            ..twpp::Limits::default()
        }
        .start(),
        seal_bytes: 1 << 20,
        durability: Durability::None,
        ..IngestOptions::default()
    };
    let mut c = Compactor::create(&dir, opts).expect("create");
    for piece in events.chunks(50) {
        c.feed(piece).expect("budget must backpressure, not kill");
    }
    assert!(
        c.segment_count() > 1,
        "exhaustion should have forced early seals"
    );
    let finish = c.finish().expect("finish");
    assert_eq!(std::fs::read(&finish.path).expect("merged"), expected);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
