//! Integration tests for `twpp::obs` (ISSUE 4 satellite 3):
//!
//! * the noop-observer overhead guard — an instrumented pipeline run with
//!   a noop `Obs` produces byte-identical archives to the uninstrumented
//!   path for every worker-pool size from 1 to 8, and a *collecting*
//!   observer never perturbs the output either;
//! * golden-file tests pinning the exact Chrome trace-event JSON and
//!   Prometheus text exposition formats;
//! * an end-to-end run-report schema check.

use std::collections::HashMap;

use twpp::obs::{BudgetSection, Obs};
use twpp::{GovOptions, RunOutcome, RunReport, TwppArchive};
use twpp_tracer::{run_traced, ExecLimits};

/// A workload with enough functions to keep several workers busy.
const SRC: &str = "
    fn f(x) { if (x % 2 == 0) { print(x); } else { print(0 - x); } }
    fn g(x) { let j = 0; while (j < x) { print(j); j = j + 1; } }
    fn h(x) { print(x * x); }
    fn k(x) { if (x > 3) { h(x); } else { g(x); } }
    fn main() {
        let i = 0;
        while (i < 12) { f(i); g(i % 4); h(i); k(i); i = i + 1; }
    }";

fn trace() -> (twpp_ir::Program, twpp_tracer::RawWpp) {
    let program = twpp_lang::compile(SRC).expect("workload compiles");
    let (_, wpp) = run_traced(&program, &[], ExecLimits::default()).expect("workload runs");
    (program, wpp)
}

/// Compacts and encodes the archive with the given observer and thread
/// count, returning the final archive bytes.
fn archive_bytes(wpp: &twpp_tracer::RawWpp, threads: usize, obs: &Obs) -> Vec<u8> {
    let options = GovOptions {
        threads: Some(threads),
        obs: obs.clone(),
        ..GovOptions::default()
    };
    let (compacted, stats) = twpp::compact_governed(wpp, &options).expect("compaction succeeds");
    let archive = TwppArchive::from_compacted_governed_obs(
        &compacted,
        &HashMap::new(),
        threads,
        &stats.degraded.failed,
        obs,
    );
    archive.as_bytes().to_vec()
}

#[test]
fn noop_observer_is_byte_identical_for_one_to_eight_threads() {
    let (_, wpp) = trace();
    // The uninstrumented baseline: plain compact() + plain encoder.
    let baseline = {
        let compacted = twpp::compact(&wpp).expect("baseline compaction");
        let archive =
            TwppArchive::from_compacted_governed(&compacted, &HashMap::new(), 1, &[]);
        archive.as_bytes().to_vec()
    };
    for threads in 1..=8 {
        let noop = archive_bytes(&wpp, threads, &Obs::noop());
        assert_eq!(
            noop, baseline,
            "noop-observed archive differs from baseline at {threads} threads"
        );
        let collecting = Obs::collecting();
        let observed = archive_bytes(&wpp, threads, &collecting);
        assert_eq!(
            observed, baseline,
            "collecting-observed archive differs from baseline at {threads} threads"
        );
        // The collecting run actually recorded something; the noop one
        // by construction records nothing (its span_count is 0).
        assert!(collecting.span_count() > 0);
        assert!(Obs::noop().span_count() == 0);
    }
}

#[test]
fn collecting_observer_records_pipeline_spans_and_metrics() {
    let (_, wpp) = trace();
    let obs = Obs::collecting();
    let _ = archive_bytes(&wpp, 4, &obs);
    let names: Vec<&str> = obs.spans().iter().map(|s| s.name).collect();
    for expected in [
        "compact",
        "partition",
        "dedup",
        "function_stage",
        "dcg_compress",
        "archive_encode",
    ] {
        assert!(names.contains(&expected), "missing span {expected}: {names:?}");
    }
    let snap = obs.snapshot();
    let events = snap
        .get("twpp_core_events_processed_total")
        .expect("events counter registered");
    match events.value {
        twpp::obs::SampleValue::Counter(v) => assert_eq!(v, wpp.event_count() as u64),
        ref other => panic!("expected counter, got {other:?}"),
    }
    assert!(snap.get("twpp_core_frames_encoded_total").is_some());
    assert!(snap.get("twpp_core_unique_traces_total").is_some());
}

#[test]
fn golden_chrome_trace_json() {
    let obs = Obs::collecting();
    // Injected spans with fixed timestamps make the export reproducible:
    // sorted by (start_ns, tid, name), microsecond units, 3 decimals.
    obs.record_span("alpha", 1, 1_500, 2_500);
    obs.record_span("beta", 2, 1_000, 250);
    let expected = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        "{\"name\":\"beta\",\"cat\":\"twpp\",\"ph\":\"X\",",
        "\"ts\":1.000,\"dur\":0.250,\"pid\":1,\"tid\":2},",
        "{\"name\":\"alpha\",\"cat\":\"twpp\",\"ph\":\"X\",",
        "\"ts\":1.500,\"dur\":2.500,\"pid\":1,\"tid\":1}",
        "]}"
    );
    assert_eq!(obs.chrome_trace_json(), expected);
    // And it parses back as JSON.
    let doc = twpp::obs::parse_json(&obs.chrome_trace_json()).expect("valid JSON");
    assert_eq!(
        doc.get("traceEvents").and_then(|e| e.as_arr()).map(<[_]>::len),
        Some(2)
    );
}

#[test]
fn golden_prometheus_text() {
    let obs = Obs::collecting();
    obs.counter("twpp_test_events_total", "Events seen").add(42);
    obs.gauge("twpp_test_queue_depth", "Queue depth").set(-3);
    let h = obs.histogram("twpp_test_latency", "Latency", &[1, 2, 4]);
    h.observe(1);
    h.observe(3);
    h.observe(9);
    let expected = "\
# HELP twpp_test_events_total Events seen
# TYPE twpp_test_events_total counter
twpp_test_events_total 42
# HELP twpp_test_latency Latency
# TYPE twpp_test_latency histogram
twpp_test_latency_bucket{le=\"1\"} 1
twpp_test_latency_bucket{le=\"2\"} 1
twpp_test_latency_bucket{le=\"4\"} 2
twpp_test_latency_bucket{le=\"+Inf\"} 3
twpp_test_latency_sum 13
twpp_test_latency_count 3
# HELP twpp_test_queue_depth Queue depth
# TYPE twpp_test_queue_depth gauge
twpp_test_queue_depth -3
";
    assert_eq!(obs.prometheus_text(), expected);
}

#[test]
fn end_to_end_run_report_validates_against_schema() {
    let (_, wpp) = trace();
    let obs = Obs::collecting();
    let budget = twpp::Limits::new().max_steps(1_000_000).start();
    let options = GovOptions {
        threads: Some(2),
        budget: budget.clone(),
        obs: obs.clone(),
        ..GovOptions::default()
    };
    let (_, stats) = twpp::compact_governed(&wpp, &options).expect("compaction succeeds");
    let mut report = RunReport::new("compact", RunOutcome::Complete);
    report.threads = 2;
    report.pipeline = Some(stats.to_section());
    report.budget = BudgetSection {
        limited: !budget.is_unlimited(),
        steps_used: budget.steps_used(),
        bytes_used: budget.bytes_used(),
    };
    report.metrics = obs.snapshot();
    report.span_count = obs.span_count() as u64;
    let json = report.to_json();
    twpp::validate_report_json(&json).expect("report satisfies its schema");
    assert!(report.budget.limited);
    assert!(report.budget.steps_used > 0);

    // Schema violations are rejected.
    assert!(twpp::validate_report_json("{}").is_err());
    assert!(twpp::validate_report_json(&json.replace(
        "\"outcome\":\"complete\"",
        "\"outcome\":\"sideways\""
    ))
    .is_err());
}
