//! Compacted timestamp sets: ordered sets of timestamps stored as
//! arithmetic series, the representation at the heart of the TWPP.
//!
//! A timestamp sequence like `2.3.4.5.6` — block 2 executing on successive
//! loop iterations — is stored as the single entry `2:6`; `2.4.6` becomes
//! `2:6:2`. On the wire an entry uses one, two or three signed words and
//! the entry boundary is encoded **in the sign of its last word** (the
//! paper's trick for avoiding any framing overhead): `-l` is the singleton
//! `l`, `l,-h` the series `l..=h` step 1, and `l,h,-s` the series `l..=h`
//! step `s`.
//!
//! [`TsSet`] also implements the set algebra the demand-driven data flow
//! queries of §4.2 need: shifting by ±1 (one backward/forward step of all
//! traversal points at once), intersection, difference, and order queries.

#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;

/// One arithmetic-series entry: `first`, `first + step`, …, `last`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SeriesEntry {
    first: u32,
    last: u32,
    step: u32,
}

impl SeriesEntry {
    /// Creates an entry.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= first <= last`, `step >= 1` and
    /// `(last - first) % step == 0`. Singletons normalise `step` to 1.
    pub fn new(first: u32, last: u32, step: u32) -> SeriesEntry {
        assert!(first >= 1, "timestamps are 1-based");
        assert!(first <= last, "series must be non-decreasing");
        assert!(step >= 1, "step must be positive");
        assert!((last - first).is_multiple_of(step), "last must lie on the series");
        let step = if first == last { 1 } else { step };
        SeriesEntry { first, last, step }
    }

    /// Creates a singleton entry.
    pub fn singleton(value: u32) -> SeriesEntry {
        SeriesEntry::new(value, value, 1)
    }

    /// First (smallest) timestamp.
    pub fn first(&self) -> u32 {
        self.first
    }

    /// Last (largest) timestamp.
    pub fn last(&self) -> u32 {
        self.last
    }

    /// Step between consecutive timestamps.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Number of timestamps in the entry.
    pub fn len(&self) -> u64 {
        u64::from((self.last - self.first) / self.step) + 1
    }

    /// Entries are never empty; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    pub fn contains(&self, t: u32) -> bool {
        t >= self.first && t <= self.last && (t - self.first).is_multiple_of(self.step)
    }

    /// Number of wire words the entry occupies (1, 2 or 3).
    pub fn wire_words(&self) -> usize {
        if self.first == self.last {
            1
        } else if self.step == 1 {
            2
        } else {
            3
        }
    }

    /// Iterates over the timestamps.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        let e = *self;
        (0..self.len()).filter_map(move |k| e.try_nth(k).ok())
    }

    /// The `k`-th timestamp of the series (0-based), as a checked
    /// computation: `first + k * step` is evaluated in `u64`, so entries
    /// near the top of the `u32` domain cannot wrap in release builds
    /// (the same treatment [`TsSet::try_shift`] gives the shift path).
    ///
    /// # Errors
    ///
    /// Returns [`TsSetError::TimestampOverflow`] if `k` is past the end
    /// of the series or the computed value leaves the `u32` domain.
    pub fn try_nth(&self, k: u64) -> Result<u32, TsSetError> {
        let v = k
            .checked_mul(u64::from(self.step))
            .and_then(|o| o.checked_add(u64::from(self.first)))
            .ok_or(TsSetError::TimestampOverflow { value: u64::MAX })?;
        if k >= self.len() || v > u64::from(u32::MAX) {
            return Err(TsSetError::TimestampOverflow { value: v });
        }
        debug_assert!(v <= u64::from(self.last));
        Ok(v as u32)
    }

    /// Intersects two arithmetic series exactly; the intersection of two
    /// arithmetic series is again an arithmetic series. Singleton,
    /// equal-step and step-1 pairs take O(1) fast paths; the general case
    /// solves the congruence pair with the Chinese remainder theorem.
    pub fn intersect(&self, other: &SeriesEntry) -> Option<SeriesEntry> {
        let lo = self.first.max(other.first);
        let hi = self.last.min(other.last);
        if lo > hi {
            return None;
        }
        // Singletons: a membership test.
        if self.first == self.last {
            return other.contains(self.first).then_some(*self);
        }
        if other.first == other.last {
            return self.contains(other.first).then_some(*other);
        }
        // Equal steps: aligned residues overlap directly.
        if self.step == other.step {
            let s = self.step;
            if self.first % s != other.first % s {
                return None;
            }
            return clip(self.first.max(other.first), hi, s);
        }
        // A step-1 range is just a window over the other series.
        if self.step == 1 {
            return clip_series(other, lo, hi);
        }
        if other.step == 1 {
            return clip_series(self, lo, hi);
        }
        let (lo, hi) = (lo as i128, hi as i128);
        let (a, s1) = (self.first as i128, self.step as i128);
        let (b, s2) = (other.first as i128, other.step as i128);
        let g = gcd(s1, s2);
        if (b - a).rem_euclid(g) != 0 {
            return None;
        }
        let lcm = s1 / g * s2;
        // Solve x ≡ a (mod s1), x ≡ b (mod s2).
        let (_, m1, _) = ext_gcd(s1, s2);
        // x0 = a + s1 * ((b - a) / g * m1 mod (s2 / g))
        let t = ((b - a) / g % (s2 / g) * m1).rem_euclid(s2 / g);
        let x0 = a + s1 * t;
        // Smallest solution >= lo: div_euclid rounds toward -inf, so the
        // candidate is <= lo and at most one lcm below the answer.
        let x = x0 + (lo - x0).div_euclid(lcm) * lcm;
        let x = if x < lo { x + lcm } else { x };
        if x > hi {
            return None;
        }
        if lcm > i128::from(u32::MAX) {
            // The solution period exceeds the timestamp domain, so the
            // window [lo, hi] (narrower than 2^32) holds at most one
            // solution. Splitting the entry down to that single member is
            // always correct; clamping the step to u32::MAX could
            // fabricate an entry whose `last` does not lie on the series
            // and trip `SeriesEntry::new`'s invariant.
            debug_assert!(x + lcm > hi, "period > domain admits one solution");
            // `x` lies in `[lo, hi]`, both u32 values, so the conversion
            // cannot fail for a true member; `try_from` (not `as`) makes
            // a violated invariant yield "no intersection" instead of a
            // silently truncated bogus member.
            return u32::try_from(x).ok().map(SeriesEntry::singleton);
        }
        let last = x + (hi - x).div_euclid(lcm) * lcm;
        // Same reasoning: every operand is within `[lo, hi]` (and `lcm`
        // is `<= u32::MAX` on this branch), so truncation is impossible
        // for valid input — but never silently wrap.
        match (u32::try_from(x), u32::try_from(last), u32::try_from(lcm)) {
            (Ok(f), Ok(l), Ok(s)) => Some(SeriesEntry::new(f, l, s)),
            _ => None,
        }
    }
}

impl fmt::Display for SeriesEntry {
    /// Formats the entry in the paper's `l`, `l:h`, `l:h:s` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.first == self.last {
            write!(f, "{}", self.first)
        } else if self.step == 1 {
            write!(f, "{}:{}", self.first, self.last)
        } else {
            write!(f, "{}:{}:{}", self.first, self.last, self.step)
        }
    }
}

/// The sub-series of `(first..=hi, step)` starting at the first element
/// `>= lo`, or `None` if empty.
fn clip(first: u32, hi: u32, step: u32) -> Option<SeriesEntry> {
    if first > hi {
        return None;
    }
    let last = first + (hi - first) / step * step;
    Some(SeriesEntry::new(first, last, step))
}

/// Clips a series to the window `[lo, hi]`.
fn clip_series(e: &SeriesEntry, lo: u32, hi: u32) -> Option<SeriesEntry> {
    let first = if e.first >= lo {
        e.first
    } else {
        e.first + (lo - e.first).div_ceil(e.step) * e.step
    };
    clip(first, hi.min(e.last), e.step)
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Extended gcd: returns `(g, x, y)` with `a*x + b*y = g`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - a / b * y)
    }
}

/// Errors produced while decoding a wire-format timestamp set.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TsSetError {
    /// An entry was truncated (positive word at end of stream).
    Truncated,
    /// A word violated the format (zero, wrong sign pattern, bad series).
    BadEntry(usize),
    /// Entries are not strictly increasing and disjoint.
    Unordered(usize),
    /// A timestamp exceeds the caller-supplied cap (bounded decoding:
    /// a two-word wire entry can claim billions of members, so decoders
    /// reject sets reaching past the enclosing trace length up front).
    ExceedsCap {
        /// The offending timestamp.
        value: u32,
        /// The cap it violated.
        cap: u32,
    },
    /// A timestamp left the representable domain: either a shift would
    /// push a series element past `u32::MAX`, or encoding met a value
    /// past `i32::MAX` (the price of the paper's sign-delimited wire
    /// format, which steals one bit for entry framing).
    TimestampOverflow {
        /// The unrepresentable value (as it would have been).
        value: u64,
    },
}

impl fmt::Display for TsSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsSetError::Truncated => f.write_str("truncated timestamp entry"),
            TsSetError::BadEntry(i) => write!(f, "malformed timestamp entry at word {i}"),
            TsSetError::Unordered(i) => write!(f, "out-of-order timestamp entry at word {i}"),
            TsSetError::ExceedsCap { value, cap } => {
                write!(f, "timestamp {value} exceeds the cap {cap}")
            }
            TsSetError::TimestampOverflow { value } => {
                write!(f, "timestamp {value} overflows the representable domain")
            }
        }
    }
}

impl Error for TsSetError {}

/// An ordered set of 1-based timestamps, compacted into arithmetic-series
/// entries. Entries are strictly increasing and disjoint.
///
/// # Examples
///
/// A loop executing a block on every second position compacts to a single
/// series entry, and traversal moves the whole series at once:
///
/// ```
/// use twpp::TsSet;
///
/// let ts = TsSet::from_sorted(&(1..=10).map(|k| 2 * k).collect::<Vec<_>>());
/// assert_eq!(ts.to_string(), "{2:20:2}");
/// assert_eq!(ts.entry_count(), 1);
/// assert_eq!(ts.len(), 10);
/// // One backward traversal step for all ten subpaths simultaneously:
/// assert_eq!(ts.shift(-1).to_string(), "{1:19:2}");
/// // The sign-delimited wire form of the paper:
/// assert_eq!(ts.to_wire().unwrap(), vec![2, 20, -2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct TsSet {
    entries: Vec<SeriesEntry>,
}

impl TsSet {
    /// The empty set.
    pub fn new() -> TsSet {
        TsSet::default()
    }

    /// Builds a set from a strictly increasing slice of 1-based timestamps,
    /// greedily detecting arithmetic runs (runs of length ≥ 3, or length-2
    /// runs with step 1, become series entries).
    ///
    /// # Panics
    ///
    /// Panics if the input is not strictly increasing or contains 0.
    pub fn from_sorted(values: &[u32]) -> TsSet {
        if let Some(&first) = values.first() {
            assert!(first >= 1, "timestamps are 1-based");
        }
        for w in values.windows(2) {
            assert!(w[0] < w[1], "timestamps must be strictly increasing");
        }
        let mut entries = Vec::new();
        let n = values.len();
        let mut i = 0;
        while i < n {
            let v = values[i];
            if i + 1 < n {
                let d = values[i + 1] - values[i];
                let mut j = i + 1;
                while j + 1 < n && values[j + 1] - values[j] == d {
                    j += 1;
                }
                let run = j - i + 1;
                if run >= 3 || (run == 2 && d == 1) {
                    entries.push(SeriesEntry::new(v, values[j], d));
                    i = j + 1;
                    continue;
                }
            }
            entries.push(SeriesEntry::singleton(v));
            i += 1;
        }
        TsSet { entries }
    }

    /// Builds a set holding the single contiguous range `first..=last`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= first <= last`.
    pub fn range(first: u32, last: u32) -> TsSet {
        TsSet {
            entries: vec![SeriesEntry::new(first, last, 1)],
        }
    }

    /// Builds a set directly from entries.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not strictly increasing and disjoint.
    pub fn from_entries(entries: Vec<SeriesEntry>) -> TsSet {
        for w in entries.windows(2) {
            assert!(
                w[0].last < w[1].first,
                "entries must be strictly increasing and disjoint"
            );
        }
        TsSet { entries }
    }

    /// The series entries, in increasing order.
    pub fn entries(&self) -> &[SeriesEntry] {
        &self.entries
    }

    /// Number of entries (the compacted vector length of Table 6).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of timestamps (the uncompacted vector length of Table 6).
    pub fn len(&self) -> u64 {
        self.entries.iter().map(SeriesEntry::len).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest timestamp, if any.
    pub fn first(&self) -> Option<u32> {
        self.entries.first().map(|e| e.first)
    }

    /// Largest timestamp, if any.
    pub fn last(&self) -> Option<u32> {
        self.entries.last().map(|e| e.last)
    }

    /// Membership test (binary search over entries).
    pub fn contains(&self, t: u32) -> bool {
        self.entry_candidate(t)
            .map(|e| e.contains(t))
            .unwrap_or(false)
    }

    /// The entry that could contain `t`: the last entry with `first <= t`.
    fn entry_candidate(&self, t: u32) -> Option<&SeriesEntry> {
        match self.entries.partition_point(|e| e.first <= t) {
            0 => None,
            i => Some(&self.entries[i - 1]),
        }
    }

    /// Iterates over all timestamps in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().flat_map(SeriesEntry::iter)
    }

    /// Collects the timestamps into a vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Shifts every timestamp by `delta`, **dropping results that leave
    /// the timestamp domain** on either side: elements shifted below 1
    /// vanish (the paper's traversal-off-the-front case), and elements
    /// shifted above `u32::MAX` vanish symmetrically. This is the paper's
    /// *simultaneous traversal* step: decrementing a whole vector of
    /// traversal points costs one operation per entry, not per timestamp.
    ///
    /// Callers that must distinguish "element walked off the high end"
    /// from "element never existed" should use [`TsSet::try_shift`],
    /// which reports the overflow as a typed error instead of clamping.
    pub fn shift(&self, delta: i64) -> TsSet {
        self.shift_clamped(delta).0
    }

    /// Checked shift: like [`TsSet::shift`] but returns
    /// [`TsSetError::TimestampOverflow`] if any element would exceed
    /// `u32::MAX` instead of silently dropping it. (Elements shifted
    /// below 1 are still dropped — that is the documented traversal
    /// semantics, not an overflow.)
    ///
    /// # Errors
    ///
    /// Returns [`TsSetError::TimestampOverflow`] carrying the first
    /// out-of-domain value.
    pub fn try_shift(&self, delta: i64) -> Result<TsSet, TsSetError> {
        match self.shift_clamped(delta) {
            (set, None) => Ok(set),
            (_, Some(value)) => Err(TsSetError::TimestampOverflow { value }),
        }
    }

    /// Core shift: returns the clamped set plus the first value (if any)
    /// that overflowed the high end of the domain. All arithmetic is done
    /// in `i64`, where `u32 + i64-delta` cannot wrap, so release builds
    /// are exactly as safe as debug builds.
    fn shift_clamped(&self, delta: i64) -> (TsSet, Option<u64>) {
        let mut entries = Vec::with_capacity(self.entries.len());
        let mut overflowed: Option<u64> = None;
        const MAX: i64 = u32::MAX as i64;
        for e in &self.entries {
            let nf = i64::from(e.first) + delta;
            let mut nl = i64::from(e.last) + delta;
            if nl < 1 {
                continue;
            }
            let step = i64::from(e.step);
            let nf = if nf < 1 {
                // Advance to the first series element >= 1.
                nf + (1 - nf).div_euclid(step) * step
                    + if (1 - nf) % step != 0 { step } else { 0 }
            } else {
                nf
            };
            if nl > MAX {
                // Record the overflow, then retreat to the last series
                // element still inside the domain (keeping the residue,
                // so the entry invariant `(last - first) % step == 0`
                // is preserved).
                if overflowed.is_none() {
                    overflowed = Some(nl as u64);
                }
                let over = nl - MAX;
                nl -= over.div_euclid(step) * step
                    + if over % step != 0 { step } else { 0 };
            }
            if nf > nl {
                // The whole entry left the domain.
                if nf > MAX && overflowed.is_none() {
                    overflowed = Some(nf as u64);
                }
                continue;
            }
            // Both ends were clamped into `[1, u32::MAX]` above, so the
            // conversions cannot fail; `try_from` keeps that a checked
            // invariant rather than a silent release-build truncation.
            let (Ok(nf), Ok(nl)) = (u32::try_from(nf), u32::try_from(nl)) else {
                debug_assert!(false, "clamped shift endpoints must fit u32");
                continue;
            };
            entries.push(SeriesEntry::new(nf, nl, e.step));
        }
        (TsSet { entries }, overflowed)
    }

    /// Set intersection. Entry pairs are intersected exactly (the
    /// intersection of two arithmetic series is a series), walked with two
    /// pointers over the disjoint, ordered entry lists.
    pub fn intersect(&self, other: &TsSet) -> TsSet {
        let mut out: Vec<SeriesEntry> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, b) = (&self.entries[i], &other.entries[j]);
            if let Some(e) = a.intersect(b) {
                out.push(e);
            }
            if a.last <= b.last {
                i += 1;
            } else {
                j += 1;
            }
        }
        TsSet {
            entries: merge_adjacent(out),
        }
    }

    /// Set difference `self - other`.
    pub fn subtract(&self, other: &TsSet) -> TsSet {
        if other.is_empty() {
            return self.clone();
        }
        let mut values = Vec::new();
        for e in &self.entries {
            // Fast path: no entry of `other` overlaps this one.
            let overlaps = other
                .entries
                .iter()
                .any(|o| o.first <= e.last && o.last >= e.first);
            if !overlaps {
                values.extend(e.iter());
            } else {
                values.extend(e.iter().filter(|&t| !other.contains(t)));
            }
        }
        TsSet::from_sorted(&values)
    }

    /// Set union.
    pub fn union(&self, other: &TsSet) -> TsSet {
        let mut values: Vec<u32> = Vec::with_capacity((self.len() + other.len()) as usize);
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        loop {
            match (a.peek().copied(), b.peek().copied()) {
                (Some(x), Some(y)) if x < y => {
                    values.push(x);
                    a.next();
                }
                (Some(x), Some(y)) if y < x => {
                    values.push(y);
                    b.next();
                }
                (Some(x), Some(_)) => {
                    values.push(x);
                    a.next();
                    b.next();
                }
                (Some(x), None) => {
                    values.push(x);
                    a.next();
                }
                (None, Some(y)) => {
                    values.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        TsSet::from_sorted(&values)
    }

    /// Largest timestamp strictly below `t`, if any — the "find the latest
    /// earlier instance" primitive of dynamic slicing.
    pub fn max_lt(&self, t: u32) -> Option<u32> {
        for e in self.entries.iter().rev() {
            if e.first >= t {
                continue;
            }
            if e.last < t {
                return Some(e.last);
            }
            // Largest element of the series < t, in widened arithmetic
            // (the k*step product cannot wrap for valid entries, but the
            // decode paths should not have to rely on that).
            let k = u64::from(t - 1 - e.first) / u64::from(e.step);
            let v = u64::from(e.first) + k * u64::from(e.step);
            debug_assert!(v < u64::from(t));
            return u32::try_from(v).ok();
        }
        None
    }

    /// Smallest timestamp `>= t`, if any.
    pub fn min_ge(&self, t: u32) -> Option<u32> {
        for e in &self.entries {
            if e.last < t {
                continue;
            }
            if e.first >= t {
                return Some(e.first);
            }
            // Regression: the smallest series element >= t can overshoot
            // `last` by up to `step - 1`, and for direct-built entries
            // near the top of the domain `first + k*step` wrapped in u32
            // release arithmetic, returning a bogus small member. Widen
            // to u64, where the comparison against `last` is exact.
            let k = u64::from(t - e.first).div_ceil(u64::from(e.step));
            let v = u64::from(e.first) + k * u64::from(e.step);
            if v <= u64::from(e.last) {
                return u32::try_from(v).ok();
            }
        }
        None
    }

    /// Encodes the set in the sign-delimited wire format.
    ///
    /// The sign encoding steals one bit for entry framing — the paper's
    /// "we can no longer use unsigned integers" — so any timestamp or
    /// step above `i32::MAX` is unrepresentable. Encoding such a set is a
    /// typed error, never a panic (decode paths were already panic-free;
    /// this keeps the two directions symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`TsSetError::TimestampOverflow`] if a timestamp or step
    /// exceeds `i32::MAX`.
    pub fn to_wire(&self) -> Result<Vec<i32>, TsSetError> {
        let mut words = Vec::with_capacity(self.wire_word_count());
        let enc = |v: u32| {
            i32::try_from(v).map_err(|_| TsSetError::TimestampOverflow {
                value: u64::from(v),
            })
        };
        for e in &self.entries {
            let f = enc(e.first)?;
            let l = enc(e.last)?;
            let s = enc(e.step)?;
            if e.first == e.last {
                words.push(-f);
            } else if e.step == 1 {
                words.push(f);
                words.push(-l);
            } else {
                words.push(f);
                words.push(l);
                words.push(-s);
            }
        }
        Ok(words)
    }

    /// Total number of wire words.
    pub fn wire_word_count(&self) -> usize {
        self.entries.iter().map(SeriesEntry::wire_words).sum()
    }

    /// Decodes a wire-format set.
    ///
    /// # Errors
    ///
    /// Returns a [`TsSetError`] for truncated, malformed or out-of-order
    /// input.
    pub fn from_wire(words: &[i32]) -> Result<TsSet, TsSetError> {
        // Decodes the magnitude of one sign-delimited wire word into the
        // encodable `1..=i32::MAX` domain. `try_from` replaces the old
        // unchecked `as u32` narrowing, and the explicit upper bound
        // rejects `i32::MIN` wire words, whose negation (2^31) used to
        // decode into a set `to_wire` could never re-encode.
        let magnitude = |w: i64, at: usize| -> Result<u32, TsSetError> {
            let v = u32::try_from(w).map_err(|_| TsSetError::BadEntry(at))?;
            if v == 0 || v > i32::MAX as u32 {
                return Err(TsSetError::BadEntry(at));
            }
            Ok(v)
        };
        let mut entries = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let start = i;
            let w0 = words[i];
            let entry = if w0 < 0 {
                i += 1;
                let v = magnitude(-i64::from(w0), start)?;
                SeriesEntry::singleton(v)
            } else {
                if w0 == 0 {
                    return Err(TsSetError::BadEntry(start));
                }
                let w1 = *words.get(i + 1).ok_or(TsSetError::Truncated)?;
                if w1 < 0 {
                    i += 2;
                    let f = magnitude(i64::from(w0), start)?;
                    let l = magnitude(-i64::from(w1), start)?;
                    if l <= f {
                        return Err(TsSetError::BadEntry(start));
                    }
                    SeriesEntry::new(f, l, 1)
                } else {
                    if w1 == 0 {
                        return Err(TsSetError::BadEntry(start));
                    }
                    let w2 = *words.get(i + 2).ok_or(TsSetError::Truncated)?;
                    if w2 >= 0 {
                        return Err(TsSetError::BadEntry(start));
                    }
                    i += 3;
                    let f = magnitude(i64::from(w0), start)?;
                    let l = magnitude(i64::from(w1), start)?;
                    let s = magnitude(-i64::from(w2), start)?;
                    if l <= f || (l - f) % s != 0 {
                        return Err(TsSetError::BadEntry(start));
                    }
                    SeriesEntry::new(f, l, s)
                }
            };
            if let Some(prev) = entries.last() {
                let prev: &SeriesEntry = prev;
                if prev.last >= entry.first {
                    return Err(TsSetError::Unordered(start));
                }
            }
            entries.push(entry);
        }
        Ok(TsSet { entries })
    }

    /// Like [`TsSet::from_wire`], but additionally rejects any set whose
    /// largest timestamp exceeds `cap` — the bounded-decoding entry point
    /// for untrusted input, where a two-word range entry could otherwise
    /// claim `i32::MAX` members and blow up downstream materialisation.
    ///
    /// # Errors
    ///
    /// Returns [`TsSetError::ExceedsCap`] for out-of-range sets, or any
    /// other [`TsSetError`] for malformed wire data.
    pub fn from_wire_capped(words: &[i32], cap: u32) -> Result<TsSet, TsSetError> {
        let set = TsSet::from_wire(words)?;
        // Entries are ordered, so the last timestamp is the maximum.
        if let Some(last) = set.last() {
            if last > cap {
                return Err(TsSetError::ExceedsCap { value: last, cap });
            }
        }
        Ok(set)
    }
}

/// Merges consecutive entries that form one longer series (used after
/// intersection, which can fragment runs).
fn merge_adjacent(entries: Vec<SeriesEntry>) -> Vec<SeriesEntry> {
    let mut out: Vec<SeriesEntry> = Vec::with_capacity(entries.len());
    for e in entries {
        if let Some(prev) = out.last_mut() {
            let gap = e.first - prev.last;
            let mergeable = if prev.first == prev.last && e.first == e.last {
                true // two singletons form a 2-run with step == gap
            } else if prev.first == prev.last {
                e.step == gap
            } else if e.first == e.last {
                prev.step == gap
            } else {
                prev.step == e.step && e.step == gap
            };
            if mergeable {
                let step = if prev.first == prev.last && e.first == e.last {
                    gap
                } else if prev.first == prev.last {
                    e.step
                } else {
                    prev.step
                };
                // Only merge 2-singleton pairs when a later merge could
                // extend them: conservatively merge only step-1 pairs.
                if !(prev.first == prev.last && e.first == e.last && gap != 1) {
                    *prev = SeriesEntry::new(prev.first, e.last, step);
                    continue;
                }
            }
        }
        out.push(e);
    }
    out
}

impl FromIterator<u32> for TsSet {
    /// Collects timestamps (in any order, duplicates allowed) into a set.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> TsSet {
        let mut values: Vec<u32> = iter.into_iter().collect();
        values.sort_unstable();
        values.dedup();
        TsSet::from_sorted(&values)
    }
}

impl fmt::Display for TsSet {
    /// Formats like the paper: `{2:6, 9, 12:20:2}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{e}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn greedy_encoding_detects_runs() {
        let s = TsSet::from_sorted(&[2, 3, 4, 5, 6]);
        assert_eq!(s.entry_count(), 1);
        assert_eq!(s.to_string(), "{2:6}");
        let s = TsSet::from_sorted(&[2, 4, 6, 9]);
        assert_eq!(s.to_string(), "{2:6:2, 9}");
        let s = TsSet::from_sorted(&[7]);
        assert_eq!(s.to_string(), "{7}");
        // Length-2 step-2 run stays as singletons (3 words would lose).
        let s = TsSet::from_sorted(&[5, 7]);
        assert_eq!(s.entry_count(), 2);
        // Length-2 step-1 run becomes a range (2 words either way).
        let s = TsSet::from_sorted(&[5, 6]);
        assert_eq!(s.to_string(), "{5:6}");
    }

    #[test]
    fn paper_example_wire_encoding() {
        // {1 -> {1}, 2 -> {2..6}, 6 -> {7}} compacts to {-1}, {2:-6}, {-7}.
        assert_eq!(TsSet::from_sorted(&[1]).to_wire().unwrap(), vec![-1]);
        assert_eq!(TsSet::from_sorted(&[2, 3, 4, 5, 6]).to_wire().unwrap(), vec![2, -6]);
        assert_eq!(TsSet::from_sorted(&[7]).to_wire().unwrap(), vec![-7]);
    }

    #[test]
    fn wire_round_trip() {
        for vals in [
            vec![1u32],
            vec![1, 2, 3],
            vec![2, 4, 6, 8, 11, 12, 13, 40],
            vec![5, 9, 100, 200, 300, 400],
        ] {
            let s = TsSet::from_sorted(&vals);
            let back = TsSet::from_wire(&s.to_wire().unwrap()).unwrap();
            assert_eq!(back, s);
            assert_eq!(back.to_vec(), vals);
        }
        assert_eq!(TsSet::from_wire(&[]).unwrap(), TsSet::new());
    }

    #[test]
    fn capped_decode_rejects_count_bombs() {
        // `[1, -i32::MAX]` is a 2-word wire entry claiming ~2^31 members.
        let bomb = [1i32, -i32::MAX];
        assert!(TsSet::from_wire(&bomb).is_ok(), "format itself is legal");
        assert_eq!(
            TsSet::from_wire_capped(&bomb, 1000),
            Err(TsSetError::ExceedsCap {
                value: i32::MAX as u32,
                cap: 1000
            })
        );
        // In-range sets pass through unchanged.
        let s = TsSet::from_sorted(&[2, 4, 6]);
        assert_eq!(TsSet::from_wire_capped(&s.to_wire().unwrap(), 6).unwrap(), s);
        assert!(TsSet::from_wire_capped(&s.to_wire().unwrap(), 5).is_err());
    }

    #[test]
    fn wire_rejects_malformed() {
        assert_eq!(TsSet::from_wire(&[5]), Err(TsSetError::Truncated));
        assert_eq!(TsSet::from_wire(&[5, 6]), Err(TsSetError::Truncated));
        assert_eq!(TsSet::from_wire(&[0]), Err(TsSetError::BadEntry(0)));
        // h <= l
        assert!(TsSet::from_wire(&[6, -5]).is_err());
        // Non-divisible series.
        assert!(TsSet::from_wire(&[2, 7, -2]).is_err());
        // Out of order entries.
        assert_eq!(
            TsSet::from_wire(&[-9, -3]),
            Err(TsSetError::Unordered(1))
        );
    }

    #[test]
    fn contains_and_order_queries() {
        let s = TsSet::from_sorted(&[2, 4, 6, 11, 12, 13, 40]);
        for t in [2, 4, 6, 11, 12, 13, 40] {
            assert!(s.contains(t), "{t}");
        }
        for t in [1, 3, 5, 7, 10, 14, 39, 41] {
            assert!(!s.contains(t), "{t}");
        }
        assert_eq!(s.max_lt(2), None);
        assert_eq!(s.max_lt(3), Some(2));
        assert_eq!(s.max_lt(6), Some(4));
        assert_eq!(s.max_lt(100), Some(40));
        assert_eq!(s.max_lt(12), Some(11));
        assert_eq!(s.min_ge(1), Some(2));
        assert_eq!(s.min_ge(5), Some(6));
        assert_eq!(s.min_ge(41), None);
        assert_eq!(s.min_ge(13), Some(13));
    }

    #[test]
    fn shift_is_the_simultaneous_traversal_step() {
        // Paper: (2:20:2) shifted to (3:21:2) / (1:19:2).
        let s = TsSet::from_sorted(&(1..=10).map(|k| 2 * k).collect::<Vec<_>>());
        assert_eq!(s.to_string(), "{2:20:2}");
        assert_eq!(s.shift(1).to_string(), "{3:21:2}");
        assert_eq!(s.shift(-1).to_string(), "{1:19:2}");
        // Shifting below 1 drops elements.
        assert_eq!(s.shift(-2).to_string(), "{2:18:2}");
        assert_eq!(s.shift(-3).to_string(), "{1:17:2}");
        let small = TsSet::from_sorted(&[1, 2]);
        assert_eq!(small.shift(-1).to_vec(), vec![1]);
        assert_eq!(small.shift(-2).to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn intersection_of_series() {
        let a = TsSet::range(1, 100);
        let b = TsSet::from_sorted(&(1..=33).map(|k| 3 * k).collect::<Vec<_>>());
        assert_eq!(a.intersect(&b), b);
        // Step 2 from 2 ∩ step 3 from 3 = step 6 from 6.
        let e2 = TsSet::from_sorted(&(1..=50).map(|k| 2 * k).collect::<Vec<_>>());
        let e3 = TsSet::from_sorted(&(1..=33).map(|k| 3 * k).collect::<Vec<_>>());
        assert_eq!(e2.intersect(&e3).to_string(), "{6:96:6}");
        // Disjoint residues never meet.
        let odd = TsSet::from_sorted(&[1, 3, 5, 7]);
        let even = TsSet::from_sorted(&[2, 4, 6, 8]);
        assert!(odd.intersect(&even).is_empty());
    }

    #[test]
    fn intersection_matches_naive_model() {
        let a = TsSet::from_sorted(&[1, 2, 3, 7, 9, 11, 20, 25, 30, 35]);
        let b = TsSet::from_sorted(&[2, 3, 4, 9, 20, 30, 31, 35]);
        let naive: Vec<u32> = a.to_vec().into_iter().filter(|t| b.contains(*t)).collect();
        assert_eq!(a.intersect(&b).to_vec(), naive);
    }

    #[test]
    fn subtract_and_union() {
        let a = TsSet::range(1, 10);
        let b = TsSet::from_sorted(&[2, 4, 6, 8, 10]);
        assert_eq!(a.subtract(&b).to_vec(), vec![1, 3, 5, 7, 9]);
        assert_eq!(b.subtract(&a), TsSet::new());
        assert_eq!(a.union(&b), a);
        let c = TsSet::from_sorted(&[12, 14]);
        assert_eq!(a.union(&c).len(), 12);
    }

    #[test]
    fn len_counts_series_elements() {
        let s = TsSet::from_sorted(&[2, 4, 6, 9]);
        assert_eq!(s.len(), 4);
        assert_eq!(TsSet::new().len(), 0);
        assert!(TsSet::new().is_empty());
        assert_eq!(TsSet::range(1, 1000).len(), 1000);
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s: TsSet = vec![5u32, 1, 3, 3, 2, 4].into_iter().collect();
        assert_eq!(s.to_string(), "{1:5}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_unsorted() {
        let _ = TsSet::from_sorted(&[3, 2]);
    }

    #[test]
    fn shift_overflow_is_checked_not_wrapped() {
        // Regression: release builds used to guard the high end with
        // `debug_assert!` only, silently wrapping `nl as u32` and
        // corrupting the series. The high end now mirrors the low end
        // (out-of-domain elements drop), and `try_shift` reports the
        // overflow as a typed error. This test must pass identically in
        // debug and release builds.
        let s = TsSet::from_sorted(&[u32::MAX - 4, u32::MAX - 2, u32::MAX]);
        assert_eq!(s.entry_count(), 1);

        // Partial overflow: the surviving prefix keeps its step/residue.
        let shifted = s.shift(2);
        assert_eq!(shifted.to_vec(), vec![u32::MAX - 2, u32::MAX]);
        assert_eq!(
            s.try_shift(2),
            Err(TsSetError::TimestampOverflow {
                value: u64::from(u32::MAX) + 2
            })
        );

        // Total overflow: nothing wraps back into the low domain.
        assert!(s.shift(10).is_empty());
        assert!(s.try_shift(10).is_err());

        // In-domain shifts are unchanged, and try_shift agrees with shift.
        assert_eq!(
            s.shift(-2).to_vec(),
            vec![u32::MAX - 6, u32::MAX - 4, u32::MAX - 2]
        );
        assert_eq!(s.try_shift(-2).unwrap(), s.shift(-2));
        // Singleton at the very top of the domain.
        let top = TsSet::from_sorted(&[u32::MAX]);
        assert!(top.shift(1).is_empty());
        assert_eq!(
            top.try_shift(1),
            Err(TsSetError::TimestampOverflow {
                value: u64::from(u32::MAX) + 1
            })
        );
    }

    #[test]
    fn to_wire_rejects_unencodable_timestamps() {
        // Regression: encoding used to `expect` (panic) past i32::MAX even
        // though every decode path is panic-free.
        let max = i32::MAX as u32;
        // At the boundary: encodes and round-trips.
        let s = TsSet::from_sorted(&[max - 2, max - 1, max]);
        let wire = s.to_wire().unwrap();
        assert_eq!(TsSet::from_wire(&wire).unwrap(), s);
        // One past the boundary: typed error, not a panic.
        let s = TsSet::from_sorted(&[max + 1]);
        assert_eq!(
            s.to_wire(),
            Err(TsSetError::TimestampOverflow {
                value: u64::from(max) + 1
            })
        );
        // A set mixing encodable and unencodable entries still errors.
        let s = TsSet::from_sorted(&[1, 2, 3, max + 1]);
        assert!(s.to_wire().is_err());
        // The word-count estimate stays callable either way.
        assert_eq!(s.wire_word_count(), 3);
    }

    #[test]
    fn intersect_huge_lcm_splits_instead_of_clamping() {
        // Regression: steps whose lcm exceeds u32::MAX used to be clamped
        // (`lcm.min(u32::MAX)`), which can fabricate a step that does not
        // satisfy `(last - first) % step == 0`. The window is narrower
        // than the period, so the correct fallback is to split down to
        // the single admissible member.
        let half = 1u32 << 31; // 2^31
        let a = SeriesEntry::new(1, 1 + half, half); // {1, 2^31+1}
        let top = u32::MAX - (u32::MAX - 1) % 3;
        let b = SeriesEntry::new(1, top, 3); // {1, 4, 7, …}
        // lcm(2^31, 3) = 3·2^31 > u32::MAX: exactly one solution fits.
        let i = a.intersect(&b).expect("1 is in both series");
        assert_eq!((i.first(), i.last(), i.step()), (1, 1, 1));
        // The result is a genuine subset of both series.
        for t in i.iter() {
            assert!(a.contains(t) && b.contains(t));
        }
        // And through the set-level two-pointer walk as well.
        let sa = TsSet::from_entries(vec![a]);
        let sb = TsSet::from_entries(vec![b]);
        assert_eq!(sa.intersect(&sb).to_vec(), vec![1]);
        // Symmetric direction.
        assert_eq!(sb.intersect(&sa).to_vec(), vec![1]);
        // Disjoint residues with a huge lcm still yield the empty set:
        // {3, 2^31+3} has members ≡ 0 and ≡ 2 (mod 3), never ≡ 1.
        let c = SeriesEntry::new(3, 3 + half, half);
        assert!(c.intersect(&b).is_none());
        // When the one admissible member sits mid-window it is found:
        // 2^31+2 ≡ 1 (mod 3) and ≡ 2 (mod 2^31).
        let d = SeriesEntry::new(2, 2 + half, half);
        let j = d.intersect(&b).expect("2^31+2 is in both series");
        assert_eq!((j.first(), j.last(), j.step()), (2 + half, 2 + half, 1));
    }

    #[test]
    fn iter_near_domain_top_is_checked_not_wrapped() {
        // Regression: `first + (k as u32) * step` wrapped in release
        // builds for entries near u32::MAX. The expansion now runs in
        // u64 via `try_nth`, so it is exact across the whole domain —
        // including entries straddling i32::MAX, the wire-format
        // boundary.
        let max = i32::MAX as u32;
        let e = SeriesEntry::new(max - 4, max + 6, 5); // straddles i32::MAX
        assert_eq!(e.iter().collect::<Vec<_>>(), vec![max - 4, max + 1, max + 6]);
        assert_eq!(e.try_nth(0), Ok(max - 4));
        assert_eq!(e.try_nth(2), Ok(max + 6));
        assert!(e.try_nth(3).is_err(), "past-the-end is a typed error");
        // The very top of the u32 domain.
        let top = SeriesEntry::new(u32::MAX - 2, u32::MAX, 2);
        assert_eq!(top.iter().collect::<Vec<_>>(), vec![u32::MAX - 2, u32::MAX]);
        assert_eq!(top.try_nth(1), Ok(u32::MAX));
        assert!(top.try_nth(2).is_err());
        // Huge k values cannot wrap the checked multiply either.
        assert!(top.try_nth(u64::MAX).is_err());
    }

    #[test]
    fn min_ge_near_domain_top_is_exact() {
        // Regression: the first-series-element->= t computation could
        // overshoot `last` by up to step-1 and wrap in u32 release
        // arithmetic, returning a bogus small member.
        let half = 1u32 << 31;
        let s = TsSet::from_entries(vec![SeriesEntry::new(1, 1 + half, half)]);
        // t between the two members: the wrapped computation used to
        // yield 1 + 2*2^31 mod 2^32 = 1, a wrong answer <= last.
        assert_eq!(s.min_ge(2), Some(1 + half));
        // t past the last member: must be None, not a wrapped value.
        assert_eq!(s.min_ge(2 + half), None);
        assert_eq!(s.max_lt(1 + half), Some(1));
        assert_eq!(s.max_lt(u32::MAX), Some(1 + half));
    }

    #[test]
    fn from_wire_rejects_i32_min_magnitudes() {
        // Regression: `-i64::from(i32::MIN) as u32` = 2^31 decoded into a
        // set that `to_wire` could never re-encode (the sign encoding
        // caps values at i32::MAX), breaking encode/decode symmetry.
        assert_eq!(TsSet::from_wire(&[i32::MIN]), Err(TsSetError::BadEntry(0)));
        assert_eq!(TsSet::from_wire(&[1, i32::MIN]), Err(TsSetError::BadEntry(0)));
        assert_eq!(
            TsSet::from_wire(&[1, 3, i32::MIN]),
            Err(TsSetError::BadEntry(0))
        );
        // Every decodable set re-encodes: the maximal legal wire words.
        let s = TsSet::from_wire(&[-i32::MAX]).unwrap();
        assert_eq!(s.to_wire().unwrap(), vec![-i32::MAX]);
    }

    #[test]
    fn intersect_coprime_steps_pin_exact_output() {
        // Pinned output for the huge-lcm singleton fallback on a crafted
        // coprime-step pair: lcm(65537, 65539) = 65537 * 65539 > 2^32,
        // so the window admits exactly the shared anchor.
        let (p, q) = (65_537u32, 65_539u32);
        let anchor = 1_000u32;
        let a = SeriesEntry::new(anchor, anchor + 5 * p, p);
        let b = SeriesEntry::new(anchor, anchor + 7 * q, q);
        let i = a.intersect(&b).expect("the anchor is in both series");
        assert_eq!((i.first(), i.last(), i.step()), (anchor, anchor, 1));
        // Same through the set-level walk, both directions.
        let sa = TsSet::from_entries(vec![a]);
        let sb = TsSet::from_entries(vec![b]);
        assert_eq!(sa.intersect(&sb).to_vec(), vec![anchor]);
        assert_eq!(sb.intersect(&sa).to_vec(), vec![anchor]);
        // Shifted residues that never meet stay empty.
        let c = SeriesEntry::new(anchor + 1, anchor + 1 + 5 * p, p);
        assert!(c.intersect(&b).is_none());
    }

    #[test]
    fn compaction_factor_visible() {
        // 1000 loop iterations: 1000 timestamps -> 1 entry, 2 wire words.
        let s = TsSet::range(1, 1000);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.wire_word_count(), 2);
    }
}
