//! Bit-level codec primitives and the delta-of-delta timestamp encoder.
//!
//! The paper's `l:h:s` sign-delimited codec spends whole 32-bit words per
//! series entry. Compacted TWPP timestamp sets are *near*-arithmetic
//! series — long runs with a constant stride, broken by small
//! irregularities — which is exactly the regime where Gorilla-style
//! delta-of-delta bit packing (Pelkonen et al., VLDB'15) wins: a constant
//! stride costs **one bit** per timestamp, and small stride changes cost
//! 9–16 bits instead of a fresh 32/96-bit entry.
//!
//! This module supplies the append-only [`BitWriter`], the bounded
//! [`BitReader`] (every read is checked against the buffer, so truncated
//! or hostile input yields [`BitCodecError::Truncated`], never a panic),
//! and the [`encode_delta_delta`] / [`decode_delta_delta`] pair used by
//! the adaptive per-series codec in [`crate::timestamped`].
//!
//! # Wire format of a delta-delta stream
//!
//! The stream is a sequence of 32-bit words, filled MSB-first:
//!
//! ```text
//! count:32 | first:32 | token*   (zero-padded to a word boundary)
//! ```
//!
//! Each token encodes the *delta of deltas* between consecutive
//! timestamps (the first token's previous delta is defined as 0):
//!
//! ```text
//! '0'                      dod == 0 (stride unchanged)
//! '10'   + 7 bits          dod in [-63, 64]       (stored dod + 63)
//! '110'  + 9 bits          dod in [-255, 256]     (stored dod + 255)
//! '1110' + 12 bits         dod in [-2047, 2048]   (stored dod + 2047)
//! '1111' + 32 bits         escape: the *absolute* delta, stored delta-1
//! ```
//!
//! The escape resets the dod chain (the decoder's previous delta becomes
//! the escaped delta), so one wild jump does not poison later tokens.
//! Decoding is bounded: the declared count is checked against the
//! caller's cap before any allocation, every reconstructed timestamp must
//! stay strictly increasing and `<= cap`, and the final-word padding must
//! be zero — a stream either round-trips exactly or fails typed.

#![deny(clippy::unwrap_used)]

use std::error::Error;
use std::fmt;

/// Errors produced while decoding a bit-packed stream.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BitCodecError {
    /// The stream ended before the requested bits.
    Truncated,
    /// The declared element count exceeds the caller's cap.
    TooMany {
        /// The count the stream claimed.
        declared: u32,
        /// The cap it violated.
        cap: u32,
    },
    /// A reconstructed value was non-increasing, zero, or above the cap.
    BadValue {
        /// 0-based index of the offending element.
        at: u32,
    },
    /// Non-zero bits after the last element (the writer zero-pads).
    TrailingBits,
}

impl fmt::Display for BitCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitCodecError::Truncated => f.write_str("truncated bit stream"),
            BitCodecError::TooMany { declared, cap } => {
                write!(f, "declared count {declared} exceeds the cap {cap}")
            }
            BitCodecError::BadValue { at } => {
                write!(f, "bad delta-delta value at element {at}")
            }
            BitCodecError::TrailingBits => f.write_str("non-zero trailing bits"),
        }
    }
}

impl Error for BitCodecError {}

/// Append-only bit vector writing MSB-first into 32-bit words.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    words: Vec<u32>,
    bit_len: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Debug-asserts `n <= 64` and that `value` fits in `n` bits.
    pub fn push_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || value < (1u64 << n), "value does not fit in {n} bits");
        let mut left = n;
        while left > 0 {
            let word_idx = self.bit_len / 32;
            if word_idx == self.words.len() {
                self.words.push(0);
            }
            let used = (self.bit_len % 32) as u32;
            let free = 32 - used;
            let take = left.min(free);
            let chunk = ((value >> (left - take)) & ((1u64 << take) - 1)) as u32;
            self.words[word_idx] |= chunk << (free - take);
            self.bit_len += take as usize;
            left -= take;
        }
    }

    /// Finishes the stream, returning the words (final word zero-padded).
    pub fn finish(self) -> Vec<u32> {
        self.words
    }
}

/// Bounded MSB-first bit reader over a word slice. Every read is checked:
/// running past the end is a typed error, never a panic — the property
/// the truncation sweep in `codec_properties.rs` pins at every offset.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    words: &'a [u32],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `words` starting at bit 0.
    pub fn new(words: &'a [u32]) -> BitReader<'a> {
        BitReader { words, pos: 0 }
    }

    /// Bits left in the stream.
    pub fn remaining_bits(&self) -> usize {
        self.words.len() * 32 - self.pos
    }

    /// Reads `n` bits (MSB-first), advancing the cursor.
    ///
    /// # Errors
    ///
    /// [`BitCodecError::Truncated`] if fewer than `n` bits remain.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, BitCodecError> {
        debug_assert!(n <= 64);
        if self.remaining_bits() < n as usize {
            return Err(BitCodecError::Truncated);
        }
        let mut out = 0u64;
        let mut left = n;
        while left > 0 {
            let word = u64::from(self.words[self.pos / 32]);
            let used = (self.pos % 32) as u32;
            let free = 32 - used;
            let take = left.min(free);
            let chunk = (word >> (free - take)) & ((1u64 << take) - 1);
            out = (out << take) | chunk;
            self.pos += take as usize;
            left -= take;
        }
        Ok(out)
    }
}

/// Encodes a strictly increasing timestamp sequence as a delta-of-delta
/// bit stream (see the module docs for the token grammar). The result is
/// word-aligned with zero padding, ready to splice into a frame payload.
pub fn encode_delta_delta(values: &[u32]) -> Vec<u32> {
    let mut w = BitWriter::new();
    w.push_bits(values.len() as u64, 32);
    if let Some((&first, rest)) = values.split_first() {
        w.push_bits(u64::from(first), 32);
        let mut prev = first;
        let mut prev_delta: i64 = 0;
        for &v in rest {
            debug_assert!(v > prev, "input must be strictly increasing");
            let delta = i64::from(v) - i64::from(prev);
            let dod = delta - prev_delta;
            match dod {
                0 => w.push_bits(0b0, 1),
                -63..=64 => {
                    w.push_bits(0b10, 2);
                    w.push_bits((dod + 63) as u64, 7);
                }
                -255..=256 => {
                    w.push_bits(0b110, 3);
                    w.push_bits((dod + 255) as u64, 9);
                }
                -2047..=2048 => {
                    w.push_bits(0b1110, 4);
                    w.push_bits((dod + 2047) as u64, 12);
                }
                _ => {
                    // Escape: the absolute delta, resetting the dod chain.
                    w.push_bits(0b1111, 4);
                    w.push_bits((delta - 1) as u64, 32);
                }
            }
            prev = v;
            prev_delta = delta;
        }
    }
    w.finish()
}

/// Decodes a delta-of-delta stream produced by [`encode_delta_delta`],
/// rejecting any stream whose count or values exceed `cap` — the bounded
/// decoding entry point for untrusted frame bytes.
///
/// # Errors
///
/// Any [`BitCodecError`] for truncated, hostile, or non-canonical input.
pub fn decode_delta_delta(words: &[u32], cap: u32) -> Result<Vec<u32>, BitCodecError> {
    let mut r = BitReader::new(words);
    let count = r.read_bits(32)? as u32;
    if count > cap {
        return Err(BitCodecError::TooMany { declared: count, cap });
    }
    // The count is now trusted only up to `cap`; still clamp the
    // pre-allocation to what the stream could physically hold (>= 1 bit
    // per element after the first).
    let mut out = Vec::with_capacity((count as usize).min(words.len() * 32 + 1));
    if count > 0 {
        let first = r.read_bits(32)? as u32;
        if first == 0 || first > cap {
            return Err(BitCodecError::BadValue { at: 0 });
        }
        out.push(first);
        let mut prev = u64::from(first);
        let mut prev_delta: i64 = 0;
        for at in 1..count {
            let delta = if r.read_bits(1)? == 0 {
                prev_delta
            } else if r.read_bits(1)? == 0 {
                prev_delta + r.read_bits(7)? as i64 - 63
            } else if r.read_bits(1)? == 0 {
                prev_delta + r.read_bits(9)? as i64 - 255
            } else if r.read_bits(1)? == 0 {
                prev_delta + r.read_bits(12)? as i64 - 2047
            } else {
                r.read_bits(32)? as i64 + 1
            };
            if delta < 1 {
                return Err(BitCodecError::BadValue { at });
            }
            let v = prev + delta as u64;
            if v > u64::from(cap) {
                return Err(BitCodecError::BadValue { at });
            }
            out.push(v as u32);
            prev = v;
            prev_delta = delta;
        }
    }
    // The writer zero-pads the final word; a stream with spare whole
    // words or non-zero padding is not something we wrote.
    let rem = r.remaining_bits();
    if rem >= 32 {
        return Err(BitCodecError::TrailingBits);
    }
    if rem > 0 && r.read_bits(rem as u32)? != 0 {
        return Err(BitCodecError::TrailingBits);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xDEAD_BEEF, 32);
        w.push_bits(0, 1);
        w.push_bits(u64::from(u32::MAX), 32);
        w.push_bits(0b11, 2);
        assert_eq!(w.bit_len(), 70);
        let words = w.finish();
        assert_eq!(words.len(), 3);
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), u64::from(u32::MAX));
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        // Only zero padding remains.
        let rem = r.remaining_bits();
        assert!(rem < 32);
        assert_eq!(r.read_bits(rem as u32).unwrap(), 0);
        assert_eq!(r.read_bits(1), Err(BitCodecError::Truncated));
    }

    #[test]
    fn delta_delta_round_trips() {
        for vals in [
            vec![1u32],
            vec![7, 8, 9, 10],
            vec![2, 4, 6, 8, 10, 11, 12, 13, 40],
            vec![1, 100, 10_000, 1_000_000, 2_000_000_000],
            (1..=500).collect::<Vec<u32>>(),
            vec![i32::MAX as u32 - 2, i32::MAX as u32],
        ] {
            let cap = *vals.last().unwrap();
            let words = encode_delta_delta(&vals);
            assert_eq!(decode_delta_delta(&words, cap).unwrap(), vals);
        }
        // Empty stream: just the zero count.
        assert_eq!(decode_delta_delta(&encode_delta_delta(&[]), 10).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn constant_stride_costs_one_bit_per_element() {
        // 1000 elements, stride 3: 32 (count) + 32 (first) + ~9 (first
        // delta token) + 998 bits ≈ 34 words, versus 1000 raw words.
        let vals: Vec<u32> = (0..1000).map(|k| 1 + 3 * k).collect();
        let words = encode_delta_delta(&vals);
        assert!(words.len() < 40, "got {} words", words.len());
    }

    #[test]
    fn decode_rejects_count_bombs_and_bad_values() {
        let vals = vec![5u32, 6, 7];
        let words = encode_delta_delta(&vals);
        // Count above the cap is rejected before allocation.
        assert_eq!(
            decode_delta_delta(&words, 2),
            Err(BitCodecError::TooMany { declared: 3, cap: 2 })
        );
        // Values above the cap are rejected.
        assert!(decode_delta_delta(&words, 6).is_err());
        // Zero first value.
        let z = encode_delta_delta(&[0, 1]); // invalid input, decoder must reject
        assert_eq!(decode_delta_delta(&z, 10), Err(BitCodecError::BadValue { at: 0 }));
        // Non-zero trailing bits.
        let mut words = encode_delta_delta(&[1, 2, 3]);
        let last = words.len() - 1;
        words[last] |= 1;
        assert_eq!(decode_delta_delta(&words, 10), Err(BitCodecError::TrailingBits));
        // A spare whole word is also rejected.
        let mut words = encode_delta_delta(&[1, 2, 3]);
        words.push(0);
        assert_eq!(decode_delta_delta(&words, 10), Err(BitCodecError::TrailingBits));
    }

    #[test]
    fn truncation_never_panics() {
        let vals: Vec<u32> = vec![1, 5, 9, 13, 20, 21, 22, 1000, 2000, 3001];
        let words = encode_delta_delta(&vals);
        for cut in 0..words.len() {
            assert!(decode_delta_delta(&words[..cut], 3001).is_err());
        }
    }
}
