//! The dynamic call graph (DCG): the activation tree that links per-call
//! path traces back into a complete WPP.

#![deny(clippy::unwrap_used)]

use std::fmt;

use twpp_ir::FuncId;

/// Index of a node in a [`Dcg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DcgNodeId(u32);

impl DcgNodeId {
    /// Creates a node id from a dense index.
    pub fn from_index(index: usize) -> DcgNodeId {
        DcgNodeId(u32::try_from(index).expect("DCG node index exceeds u32"))
    }

    /// Returns the dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DcgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One activation in the dynamic call graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DcgNode {
    /// The activated function.
    pub func: FuncId,
    /// Index of this activation's path trace within the per-function trace
    /// list (after redundancy elimination, several nodes share an index).
    pub trace_idx: u32,
    /// Position of the call within the parent's *uncompacted* path trace:
    /// the number of parent block events emitted before this call. This is
    /// what lets the original interleaved WPP be reconstructed exactly.
    pub offset_in_parent: u32,
    /// Child activations, in call order.
    pub children: Vec<DcgNodeId>,
}

/// The dynamic call graph: a tree of activations rooted at the `main`
/// activation. Together with the per-function path traces it losslessly
/// represents the whole program path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dcg {
    nodes: Vec<DcgNode>,
}

impl Dcg {
    pub(crate) fn from_nodes(nodes: Vec<DcgNode>) -> Dcg {
        Dcg { nodes }
    }

    /// The empty DCG (no activations). Used by recovery when an archive's
    /// call-graph region is lost but function regions are salvageable.
    pub fn empty() -> Dcg {
        Dcg { nodes: Vec::new() }
    }

    /// The root activation (the run of `main`).
    ///
    /// # Panics
    ///
    /// Panics if the DCG is empty; partitioning a non-empty WPP always
    /// produces a root.
    pub fn root(&self) -> DcgNodeId {
        assert!(!self.nodes.is_empty(), "empty DCG has no root");
        DcgNodeId(0)
    }

    /// Number of activations.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Looks up a node.
    pub fn node(&self, id: DcgNodeId) -> &DcgNode {
        &self.nodes[id.index()]
    }

    pub(crate) fn node_mut(&mut self, id: DcgNodeId) -> &mut DcgNode {
        &mut self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in creation (pre-order) order.
    pub fn iter(&self) -> impl Iterator<Item = (DcgNodeId, &DcgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (DcgNodeId::from_index(i), n))
    }

    /// Number of activations of each function, as `(func, count)` pairs in
    /// first-activation order.
    pub fn call_counts(&self) -> Vec<(FuncId, u64)> {
        let mut order: Vec<FuncId> = Vec::new();
        let mut counts: std::collections::HashMap<FuncId, u64> = std::collections::HashMap::new();
        for n in &self.nodes {
            let e = counts.entry(n.func).or_insert(0);
            if *e == 0 {
                order.push(n.func);
            }
            *e += 1;
        }
        order.into_iter().map(|f| (f, counts[&f])).collect()
    }

    /// Serializes the tree as a flat `u32` stream in pre-order:
    /// `[func, trace_idx, offset_in_parent, child_count]` per node. This is
    /// the raw DCG form whose size Table 3 compresses with LZW.
    pub fn to_words(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(self.nodes.len() * 4);
        if self.nodes.is_empty() {
            return words;
        }
        self.serialize_node(DcgNodeId(0), &mut words);
        words
    }

    fn serialize_node(&self, id: DcgNodeId, words: &mut Vec<u32>) {
        // Iterative pre-order to survive deep recursion chains.
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            words.push(n.func.as_u32());
            words.push(n.trace_idx);
            words.push(n.offset_in_parent);
            words.push(u32::try_from(n.children.len()).expect("child count exceeds u32"));
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
    }

    /// Reconstructs a DCG from its [`Dcg::to_words`] stream.
    ///
    /// Returns `None` if the stream is malformed (truncated or with extra
    /// trailing words).
    pub fn from_words(words: &[u32]) -> Option<Dcg> {
        if words.is_empty() {
            return Some(Dcg { nodes: Vec::new() });
        }
        // Bounded decoding: a valid stream is exactly 4 words per node, so
        // reject misaligned input up front (the node vector below is then
        // inherently capped at `words.len() / 4` entries).
        if !words.len().is_multiple_of(4) {
            return None;
        }
        let mut nodes: Vec<DcgNode> = Vec::new();
        let mut pos = 0usize;
        // Stack of (node index, children still expected).
        let mut stack: Vec<(usize, u32)> = Vec::new();
        loop {
            if pos + 4 > words.len() {
                return None;
            }
            let func = FuncId::from_u32(words[pos]);
            let trace_idx = words[pos + 1];
            let offset_in_parent = words[pos + 2];
            let child_count = words[pos + 3];
            pos += 4;
            let idx = nodes.len();
            nodes.push(DcgNode {
                func,
                trace_idx,
                offset_in_parent,
                // child_count is untrusted: clamp the pre-allocation.
                children: Vec::with_capacity((child_count as usize).min(words.len())),
            });
            if let Some(&mut (parent, ref mut remaining)) = stack.last_mut() {
                nodes[parent].children.push(DcgNodeId::from_index(idx));
                *remaining -= 1;
            } else if idx != 0 {
                return None; // multiple roots
            }
            if child_count > 0 {
                stack.push((idx, child_count));
            }
            while matches!(stack.last(), Some(&(_, 0))) {
                stack.pop();
            }
            if stack.is_empty() {
                break;
            }
        }
        if pos != words.len() {
            return None;
        }
        Some(Dcg { nodes })
    }

    /// Size in bytes of the raw serialized DCG.
    pub fn byte_size(&self) -> usize {
        self.nodes.len() * 16
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> Dcg {
        // main calls f twice; the second f calls g.
        let f0 = FuncId::from_index(0);
        let f1 = FuncId::from_index(1);
        let f2 = FuncId::from_index(2);
        Dcg::from_nodes(vec![
            DcgNode {
                func: f0,
                trace_idx: 0,
                offset_in_parent: 0,
                children: vec![DcgNodeId(1), DcgNodeId(2)],
            },
            DcgNode {
                func: f1,
                trace_idx: 0,
                offset_in_parent: 2,
                children: vec![],
            },
            DcgNode {
                func: f1,
                trace_idx: 1,
                offset_in_parent: 4,
                children: vec![DcgNodeId(3)],
            },
            DcgNode {
                func: f2,
                trace_idx: 0,
                offset_in_parent: 1,
                children: vec![],
            },
        ])
    }

    #[test]
    fn serialization_round_trip() {
        let dcg = sample();
        let words = dcg.to_words();
        assert_eq!(words.len(), 16);
        assert_eq!(Dcg::from_words(&words), Some(dcg));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let dcg = sample();
        let mut words = dcg.to_words();
        words.pop();
        assert_eq!(Dcg::from_words(&words), None);
        let mut extra = dcg.to_words();
        extra.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(Dcg::from_words(&extra), None);
    }

    #[test]
    fn call_counts_in_first_seen_order() {
        let dcg = sample();
        let counts = dcg.call_counts();
        assert_eq!(counts[0], (FuncId::from_index(0), 1));
        assert_eq!(counts[1], (FuncId::from_index(1), 2));
        assert_eq!(counts[2], (FuncId::from_index(2), 1));
    }

    #[test]
    fn empty_dcg_round_trips() {
        assert_eq!(Dcg::from_words(&[]), Some(Dcg::from_nodes(Vec::new())));
    }

    #[test]
    fn byte_size_counts_four_words_per_node() {
        assert_eq!(sample().byte_size(), 64);
    }
}
