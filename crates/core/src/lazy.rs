//! Lazy archive opens: O(footer) instead of O(all frames).
//!
//! [`TwppArchive::from_bytes`] holds the whole archive in memory and
//! every decoded frame is paid for up front by whoever loads the file.
//! A [`LazyArchive`] instead keeps only the *metadata* resident — header,
//! compressed DCG, name table and commit footer, all of whose CRCs are
//! verified eagerly at open — and leaves function frames on disk. A frame
//! is read, CRC-checked and decoded the first time its function is
//! queried, then cached behind an [`Arc`], so a process holding a fleet
//! of archives open pays per *query*, not per archive.
//!
//! Trust boundary: everything validated at [`LazyArchive::open`] time
//! (header CRC, DCG CRC, name-table CRC, commit marker, footer CRC and
//! the footer/data-length cross-check) can be relied on afterwards;
//! per-frame magic, CRC and structural decoding are deferred to first
//! access, so a corrupt frame only surfaces when *that function* is
//! read — every other function keeps working.

#![deny(clippy::unwrap_used)]

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use twpp_ir::checksum::{crc32, Crc32};
use twpp_ir::FuncId;

use crate::archive::{
    check_func_count, decode_dcg, decode_region, footer_entry, parse_meta_v3, parse_names_v3,
    read_u32, verify_meta_crcs, ArchiveError, FunctionRecord, MetaV3, TableEntry, TwppArchive,
    COMMIT_MAGIC, FIXED_HEADER_LEN, FOOTER_ENTRY_BYTES, FOOTER_FIXED_LEN, FOOTER_MAGIC,
    FRAME_HEADER_LEN, FRAME_MAGIC, MAGIC, VERSION, VERSION_V2,
};
use crate::cache::{next_archive_uid, FrameCache, DEFAULT_FRAME_CACHE_BYTES};
use crate::dcg::Dcg;
use crate::gov::Budget;
use crate::obs::Obs;

/// A v3 archive opened lazily: metadata verified and resident, function
/// frames decoded on first access and cached.
///
/// Obtained from [`TwppArchive::open_lazy`] (or
/// [`LazyArchive::open_observed`] to record metrics). Shared-reference
/// methods take interior locks, so a `LazyArchive` can be queried from
/// multiple threads behind an `Arc`.
pub struct LazyArchive {
    file: Mutex<File>,
    /// Live (non-sentinel) footer entries in frame order.
    table: Vec<TableEntry>,
    index: HashMap<FuncId, usize>,
    names: HashMap<FuncId, String>,
    /// Degraded-function sentinels: `(func, call_count)`.
    failed: Vec<(FuncId, u32)>,
    /// The verified metadata prefix (`[0, data_start)` of the file).
    meta_bytes: Vec<u8>,
    meta: MetaV3,
    /// Decoded frames live in a byte-capped LRU — possibly shared with a
    /// whole fleet of archives — keyed by this archive's process-unique
    /// `uid`, so a huge archive can be scanned end to end without every
    /// decoded frame staying live.
    frames: Arc<FrameCache>,
    uid: u64,
    /// Functions decoded at least once (drives [`LazyArchive::decoded_count`]
    /// and the first-decode obs counter, independent of later evictions).
    decoded: Mutex<HashSet<FuncId>>,
    obs: Obs,
}

/// Recovers the guarded value even if another thread panicked while
/// holding the lock: the caches here are read-mostly maps whose worst
/// failure mode after a poisoning panic is a redundant decode.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl LazyArchive {
    /// Opens `path` lazily, validating every metadata CRC (header, DCG,
    /// name table, footer) and the commit marker eagerly — but decoding
    /// no function frame. Cost is O(metadata + footer) regardless of how
    /// many frames the archive holds.
    ///
    /// # Errors
    ///
    /// Anything [`TwppArchive::load`] would report about the metadata:
    /// [`ArchiveError::NotCommitted`] for interrupted writes,
    /// checksum mismatches, truncation, or [`ArchiveError::BadVersion`]
    /// for v2 archives (whose table lives in the header — load those
    /// eagerly).
    pub fn open(path: &Path) -> Result<LazyArchive, ArchiveError> {
        LazyArchive::open_observed(path, Obs::noop())
    }

    /// Like [`LazyArchive::open`], additionally recording the
    /// `twpp_core_frames_decoded_lazy` counter (one increment per frame
    /// decoded on first access; cache hits don't count) into `obs`.
    ///
    /// # Errors
    ///
    /// Same as [`LazyArchive::open`].
    pub fn open_observed(path: &Path, obs: Obs) -> Result<LazyArchive, ArchiveError> {
        let cache = Arc::new(FrameCache::new(DEFAULT_FRAME_CACHE_BYTES));
        LazyArchive::open_with_cache(path, cache, obs)
    }

    /// Like [`LazyArchive::open_observed`], decoding frames into (and out
    /// of) `cache` — a byte-capped LRU that may be shared across many
    /// archives (each open gets a process-unique uid keying its entries).
    /// This is how a fleet server bounds resident frame bytes across all
    /// tenants with one knob.
    ///
    /// # Errors
    ///
    /// Same as [`LazyArchive::open`].
    pub fn open_with_cache(
        path: &Path,
        cache: Arc<FrameCache>,
        obs: Obs,
    ) -> Result<LazyArchive, ArchiveError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        // Fixed header: magic, version, region lengths, header CRC.
        if file_len < FIXED_HEADER_LEN as u64 {
            return Err(ArchiveError::Truncated);
        }
        let mut fixed = [0u8; FIXED_HEADER_LEN];
        file.read_exact(&mut fixed)?;
        if fixed[0..4] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        match read_u32(&fixed[4..8]) {
            VERSION => {}
            v @ VERSION_V2 => return Err(ArchiveError::BadVersion(v)),
            v => return Err(ArchiveError::BadVersion(v)),
        }

        // Metadata prefix (header + compressed DCG + name table): read it
        // whole and verify its three CRCs with the shared eager-path
        // helpers.
        let dcg_comp_len = read_u32(&fixed[8..12]) as usize;
        let names_len = read_u32(&fixed[12..16]) as usize;
        let data_start_est = FIXED_HEADER_LEN
            .checked_add(dcg_comp_len.div_ceil(4).checked_mul(4).ok_or(ArchiveError::Truncated)?)
            .and_then(|x| x.checked_add(4))
            .and_then(|x| x.checked_add(names_len))
            .and_then(|x| x.checked_add(4))
            .ok_or(ArchiveError::Truncated)?;
        if (data_start_est as u64) > file_len {
            return Err(ArchiveError::Truncated);
        }
        let mut meta_bytes = vec![0u8; data_start_est];
        meta_bytes[..FIXED_HEADER_LEN].copy_from_slice(&fixed);
        file.read_exact(&mut meta_bytes[FIXED_HEADER_LEN..])?;
        let meta = parse_meta_v3(&meta_bytes)?;
        debug_assert_eq!(meta.data_start, data_start_est);
        verify_meta_crcs(&meta_bytes, &meta)?;
        let names = parse_names_v3(&meta_bytes[meta.names_start..meta.names_start + meta.names_len])?;

        // Commit footer: marker, count, CRC, and the data-length
        // cross-check against the header-derived data start.
        if file_len < (meta.data_start + FOOTER_FIXED_LEN) as u64 {
            return Err(ArchiveError::Truncated);
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))?;
        file.read_exact(&mut tail)?;
        if tail[12..16] != COMMIT_MAGIC {
            return Err(ArchiveError::NotCommitted);
        }
        let n_funcs = read_u32(&tail[0..4]) as usize;
        let data_len = read_u32(&tail[4..8]) as usize;
        check_func_count(n_funcs)?;
        let footer_len = 4 + n_funcs * FOOTER_ENTRY_BYTES + 16;
        if (footer_len as u64) > file_len - meta.data_start as u64 {
            return Err(ArchiveError::Truncated);
        }
        let footer_start = file_len - footer_len as u64;
        file.seek(SeekFrom::Start(footer_start))?;
        let mut footer = vec![0u8; footer_len];
        file.read_exact(&mut footer)?;
        if footer[0..4] != FOOTER_MAGIC {
            return Err(ArchiveError::Corrupt("footer magic"));
        }
        let stored = read_u32(&footer[footer_len - 8..footer_len - 4]);
        let actual = crc32(&footer[..footer_len - 8]);
        if stored != actual {
            return Err(ArchiveError::ChecksumMismatch {
                region: "footer",
                expected: stored,
                actual,
            });
        }
        if footer_start - meta.data_start as u64 != data_len as u64 {
            return Err(ArchiveError::Corrupt("footer data length"));
        }

        // Split sentinels from live entries and bounds-check every frame
        // against the data section, mirroring the eager parser.
        let mut table = Vec::with_capacity(n_funcs);
        let mut failed = Vec::new();
        for chunk in footer[4..4 + n_funcs * FOOTER_ENTRY_BYTES].chunks_exact(FOOTER_ENTRY_BYTES) {
            let e = footer_entry(chunk);
            if e.is_sentinel() {
                failed.push((e.func, e.call_count));
            } else {
                table.push(e);
            }
        }
        for e in &table {
            let end = (meta.data_start as u64)
                .checked_add(u64::from(e.offset))
                .and_then(|x| x.checked_add(FRAME_HEADER_LEN as u64))
                .and_then(|x| x.checked_add(u64::from(e.byte_len)))
                .ok_or(ArchiveError::Truncated)?;
            if end > footer_start {
                return Err(ArchiveError::Truncated);
            }
        }
        let index = table.iter().enumerate().map(|(i, e)| (e.func, i)).collect();

        Ok(LazyArchive {
            file: Mutex::new(file),
            table,
            index,
            names,
            failed,
            meta_bytes,
            meta,
            frames: cache,
            uid: next_archive_uid(),
            decoded: Mutex::new(HashSet::new()),
            obs,
        })
    }

    /// The process-unique uid keying this open's entries in its frame
    /// cache; [`FrameCache::invalidate_archive`] with this uid drops them.
    pub fn archive_uid(&self) -> u64 {
        self.uid
    }

    /// The frame cache this open decodes into.
    pub fn frame_cache(&self) -> &Arc<FrameCache> {
        &self.frames
    }

    /// Function ids present in the archive, most-called first (frame
    /// order), excluding degraded sentinels.
    pub fn function_ids(&self) -> Vec<FuncId> {
        self.table.iter().map(|e| e.func).collect()
    }

    /// Number of live (non-degraded) functions.
    pub fn function_count(&self) -> usize {
        self.table.len()
    }

    /// The recorded call count of `func`, if present.
    pub fn call_count(&self, func: FuncId) -> Option<u64> {
        self.index
            .get(&func)
            .map(|&i| u64::from(self.table[i].call_count))
    }

    /// The embedded name of `func`, if the archive carries one.
    pub fn function_name(&self, func: FuncId) -> Option<&str> {
        self.names.get(&func).map(String::as_str)
    }

    /// Looks up a function id by embedded name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(f, _)| *f)
    }

    /// Functions recorded as failed during a degraded compaction run.
    pub fn failed_functions(&self) -> &[(FuncId, u32)] {
        &self.failed
    }

    /// Whether the archive was produced by a degraded run.
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Number of distinct functions decoded at least once (later cache
    /// evictions don't lower this).
    pub fn decoded_count(&self) -> usize {
        lock_unpoisoned(&self.decoded).len()
    }

    /// Decompresses and decodes the dynamic call graph from the resident
    /// (already CRC-verified) metadata.
    ///
    /// # Errors
    ///
    /// Returns a decoding error for corrupt archives.
    pub fn read_dcg(&self) -> Result<Dcg, ArchiveError> {
        decode_dcg(&self.meta_bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + self.meta.dcg_comp_len])
    }

    /// Reads one function, decoding its frame from disk on first access
    /// and serving a cached [`Arc`] afterwards. Identical result to
    /// [`TwppArchive::read_function`] on the same file.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::UnknownFunction`] / [`ArchiveError::DegradedFunction`]
    /// for absent or degraded ids; checksum or decode errors if *this*
    /// function's frame is corrupt (detected at first access, not open).
    pub fn read_function(&self, func: FuncId) -> Result<Arc<FunctionRecord>, ArchiveError> {
        self.read_function_inner(func, None)
    }

    /// Like [`LazyArchive::read_function`], charging the frame's bytes to
    /// `budget` *before* reading it from disk. Cache hits charge nothing:
    /// the bytes were already paid for when the frame was first decoded.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Stopped`] when the budget runs out; otherwise the
    /// same as [`LazyArchive::read_function`].
    pub fn read_function_governed(
        &self,
        func: FuncId,
        budget: &Budget,
    ) -> Result<Arc<FunctionRecord>, ArchiveError> {
        self.read_function_inner(func, Some(budget))
    }

    fn read_function_inner(
        &self,
        func: FuncId,
        budget: Option<&Budget>,
    ) -> Result<Arc<FunctionRecord>, ArchiveError> {
        if let Some(rec) = self.frames.get(self.uid, func) {
            return Ok(rec);
        }
        let Some(&i) = self.index.get(&func) else {
            if self.failed.iter().any(|&(f, _)| f == func) {
                return Err(ArchiveError::DegradedFunction(func));
            }
            return Err(ArchiveError::UnknownFunction(func));
        };
        let e = self.table[i];
        let frame_start = self.meta.data_start as u64 + u64::from(e.offset);
        let frame_len = FRAME_HEADER_LEN + e.byte_len as usize;
        if let Some(budget) = budget {
            budget
                .charge_bytes(frame_len as u64)
                .map_err(ArchiveError::Stopped)?;
        }
        let mut frame = vec![0u8; frame_len];
        {
            let mut f = lock_unpoisoned(&self.file);
            f.seek(SeekFrom::Start(frame_start))?;
            f.read_exact(&mut frame)?;
        }
        if frame[0..4] != FRAME_MAGIC {
            return Err(ArchiveError::Corrupt("frame magic"));
        }
        let mut h = Crc32::new();
        h.update(&frame[4..24]);
        h.update(&frame[FRAME_HEADER_LEN..]);
        let actual = h.finalize();
        if actual != e.crc {
            return Err(ArchiveError::ChecksumMismatch {
                region: "function region",
                expected: e.crc,
                actual,
            });
        }
        let rec = Arc::new(decode_region(e, &frame[FRAME_HEADER_LEN..])?);
        let first_decode = lock_unpoisoned(&self.decoded).insert(func);
        if first_decode && self.obs.is_enabled() {
            self.obs
                .counter(
                    "twpp_core_frames_decoded_lazy",
                    "Archive frames decoded on first access through a lazy open",
                )
                .inc();
        }
        Ok(self
            .frames
            .insert_or_get(self.uid, func, rec, frame_len as u64))
    }
}

impl std::fmt::Debug for LazyArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyArchive")
            .field("functions", &self.table.len())
            .field("failed", &self.failed.len())
            .field("decoded", &self.decoded_count())
            .finish_non_exhaustive()
    }
}

impl TwppArchive {
    /// Opens `path` as a [`LazyArchive`]: metadata CRCs verified eagerly,
    /// function frames decoded on first access. See the
    /// [module docs](crate::lazy) for the exact trust boundary.
    ///
    /// # Errors
    ///
    /// Same as [`LazyArchive::open`].
    pub fn open_lazy(path: &Path) -> Result<LazyArchive, ArchiveError> {
        LazyArchive::open(path)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::gov::Limits;
    use crate::pipeline::compact;
    use crate::timestamped::Codec;
    use std::collections::HashMap as Map;
    use twpp_tracer::{RawWpp, WppEvent};

    fn sample_wpp() -> RawWpp {
        let f0 = FuncId::from_index(0);
        let f1 = FuncId::from_index(1);
        let b = twpp_ir::BlockId::new;
        let mut ev = vec![WppEvent::Enter(f0)];
        for i in 0..12u32 {
            ev.push(WppEvent::Block(b(i % 3 + 1)));
            if i % 4 == 0 {
                ev.push(WppEvent::Enter(f1));
                ev.push(WppEvent::Block(b(1)));
                ev.push(WppEvent::Block(b(i % 5 + 2)));
                ev.push(WppEvent::Exit);
            }
        }
        ev.push(WppEvent::Exit);
        RawWpp::from_events(&ev)
    }

    fn write_archive(dir: &std::path::Path, codec: Codec) -> std::path::PathBuf {
        let c = compact(&sample_wpp()).unwrap();
        let mut names = Map::new();
        names.insert(FuncId::from_index(0), "main".to_owned());
        let a = TwppArchive::from_compacted_codec(&c, &names, 1, &[], &Obs::noop(), codec);
        let path = dir.join(format!("{}.twpa", codec.as_str()));
        a.save(&path).unwrap();
        path
    }

    #[test]
    fn lazy_matches_eager_for_both_codecs() {
        let dir = tempdir();
        for codec in [Codec::Legacy, Codec::Adaptive] {
            let path = write_archive(&dir, codec);
            let eager = TwppArchive::load(&path).unwrap();
            let lazy = TwppArchive::open_lazy(&path).unwrap();
            assert_eq!(lazy.function_ids(), eager.function_ids());
            assert_eq!(lazy.decoded_count(), 0, "open must not decode frames");
            for func in eager.function_ids() {
                let e = eager.read_function(func).unwrap();
                let l = lazy.read_function(func).unwrap();
                assert_eq!(*l, e);
                assert_eq!(lazy.call_count(func), eager.call_count(func));
            }
            assert_eq!(lazy.decoded_count(), eager.function_ids().len());
            assert_eq!(
                lazy.read_dcg().unwrap().to_words(),
                eager.read_dcg().unwrap().to_words()
            );
            assert_eq!(lazy.function_name(FuncId::from_index(0)), Some("main"));
            assert_eq!(lazy.function_by_name("main"), Some(FuncId::from_index(0)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_hits_reuse_the_same_record() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        let lazy = TwppArchive::open_lazy(&path).unwrap();
        let func = lazy.function_ids()[0];
        let a = lazy.read_function(func).unwrap();
        let b = lazy.read_function(func).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(lazy.decoded_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_counter_counts_first_decodes_only() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        let obs = Obs::collecting();
        let lazy = LazyArchive::open_observed(&path, obs.clone()).unwrap();
        let funcs = lazy.function_ids();
        for f in &funcs {
            lazy.read_function(*f).unwrap();
            lazy.read_function(*f).unwrap();
        }
        let snap = obs.snapshot();
        let sample = snap.get("twpp_core_frames_decoded_lazy").unwrap();
        assert_eq!(
            sample.value,
            crate::obs::SampleValue::Counter(funcs.len() as u64)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governed_reads_charge_bytes_and_stop() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        let lazy = TwppArchive::open_lazy(&path).unwrap();
        let func = lazy.function_ids()[0];
        // A one-byte budget stops before any I/O happens…
        let tiny = Limits::new().max_bytes(1).start();
        assert!(matches!(
            lazy.read_function_governed(func, &tiny),
            Err(ArchiveError::Stopped(_))
        ));
        // …a roomy one charges the frame and succeeds; the cache hit
        // afterwards charges nothing.
        let roomy = Limits::new().max_bytes(1 << 20).start();
        lazy.read_function_governed(func, &roomy).unwrap();
        let used = roomy.bytes_used();
        assert!(used > 0);
        lazy.read_function_governed(func, &roomy).unwrap();
        assert_eq!(roomy.bytes_used(), used);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_frame_fails_only_on_access() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        // Flip one byte in the *last* frame's payload: open must still
        // succeed (metadata is intact), reads of other functions must
        // work, and only the damaged function errors.
        let eager = TwppArchive::load(&path).unwrap();
        let funcs = eager.function_ids();
        assert!(funcs.len() >= 2);
        let mut bytes = std::fs::read(&path).unwrap();
        // Find the last frame by scanning from the end of the data
        // section; corrupt its final payload byte.
        let victim = *funcs.last().unwrap();
        let good: Vec<FuncId> = funcs[..funcs.len() - 1].to_vec();
        // The victim's frame is written last (fewest calls), right before
        // the footer — walk byte flips backwards from the end until one
        // breaks the victim's CRC while leaving the metadata and every
        // other frame intact.
        let mut corrupted = None;
        for i in (0..bytes.len()).rev() {
            let mut trial = bytes.clone();
            trial[i] ^= 0xff;
            if let Ok(a) = TwppArchive::from_bytes(trial.clone()) {
                let victim_bad = a.read_function(victim).is_err();
                let others_ok = good.iter().all(|f| a.read_function(*f).is_ok());
                if victim_bad && others_ok {
                    corrupted = Some(trial);
                    break;
                }
            }
        }
        bytes = corrupted.expect("found a byte whose flip corrupts only the last frame");
        std::fs::write(&path, &bytes).unwrap();
        let lazy = TwppArchive::open_lazy(&path).unwrap();
        for f in &good {
            lazy.read_function(*f).unwrap();
        }
        assert!(matches!(
            lazy.read_function(victim),
            Err(ArchiveError::ChecksumMismatch { .. } | ArchiveError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_and_damaged_metadata_fail_at_open() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        let bytes = std::fs::read(&path).unwrap();
        // Truncate the commit marker: NotCommitted at open.
        let cut = dir.join("cut.twpa");
        std::fs::write(&cut, &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(
            TwppArchive::open_lazy(&cut),
            Err(ArchiveError::NotCommitted | ArchiveError::Truncated)
        ));
        // Corrupt the header CRC: checksum mismatch at open.
        let mut bad = bytes.clone();
        bad[9] ^= 0xff;
        let badp = dir.join("bad.twpa");
        std::fs::write(&badp, &bad).unwrap();
        assert!(TwppArchive::open_lazy(&badp).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_function_is_reported() {
        let dir = tempdir();
        let path = write_archive(&dir, Codec::Legacy);
        let lazy = TwppArchive::open_lazy(&path).unwrap();
        assert!(matches!(
            lazy.read_function(FuncId::from_index(999)),
            Err(ArchiveError::UnknownFunction(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twpp-lazy-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
